//! Cross-crate integration tests: tagword encodings flow through the compiler,
//! the simulator, the GC and the measurement framework consistently.

use tags_repro::lisp::{compile, run, CheckingMode, Options};
use tags_repro::mipsx::{CheckCat, HwConfig, Provenance, TagOpKind};
use tags_repro::tagstudy::{Config, Session};
use tags_repro::tagword::{TagScheme, ALL_SCHEMES};

const SRC_LIST_WALK: &str = r#"
    (defun build (n) (if (greaterp n 0) (cons n (build (sub1 n))) nil))
    (defun sum (l) (if (pairp l) (plus (car l) (sum (cdr l))) 0))
    (print (sum (build 100)))
"#;

#[test]
fn results_identical_across_every_scheme_and_mode() {
    let mut outputs = Vec::new();
    for scheme in ALL_SCHEMES {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            let c = compile(SRC_LIST_WALK, &Options::new(scheme, checking)).unwrap();
            let o = run(&c, 10_000_000).unwrap();
            outputs.push(o.output);
        }
    }
    assert!(outputs.iter().all(|o| o == "5050\n"), "{outputs:?}");
}

#[test]
fn hardware_variants_never_change_results_only_cycles() {
    let base = {
        let c = compile(
            SRC_LIST_WALK,
            &Options::new(TagScheme::HighTag5, CheckingMode::Full),
        )
        .unwrap();
        run(&c, 10_000_000).unwrap()
    };
    for hw in [
        HwConfig::with_tag_branch(),
        HwConfig::with_address_drop(5),
        HwConfig::with_generic_arith(),
        HwConfig::maximal(5),
        HwConfig::spur(5),
    ] {
        let opts = Options {
            hw,
            ..Options::new(TagScheme::HighTag5, CheckingMode::Full)
        };
        let c = compile(SRC_LIST_WALK, &opts).unwrap();
        let o = run(&c, 10_000_000).unwrap();
        assert_eq!(o.output, base.output);
        assert!(
            o.stats.cycles <= base.stats.cycles,
            "{hw:?} must not be slower than stock hardware"
        );
    }
}

#[test]
fn cycle_accounting_is_consistent() {
    // Total cycles must dominate the tag-attributed cycles, and checking-category
    // cycles must all carry the Checking provenance.
    let c = compile(
        SRC_LIST_WALK,
        &Options::new(TagScheme::HighTag5, CheckingMode::Full),
    )
    .unwrap();
    let o = run(&c, 10_000_000).unwrap();
    let s = &o.stats;
    assert!(s.total_tag_cycles() < s.cycles);
    let checking_total: u64 = [CheckCat::Arith, CheckCat::Vector, CheckCat::List]
        .iter()
        .map(|c| s.checking_cycles(*c))
        .sum();
    let by_prov: u64 = [
        TagOpKind::Insert,
        TagOpKind::Remove,
        TagOpKind::Extract,
        TagOpKind::Check,
        TagOpKind::Generic,
    ]
    .iter()
    .map(|op| s.tag_op_cycles_by(*op, Provenance::Checking))
    .sum();
    assert_eq!(
        checking_total, by_prov,
        "two views of checking-added cycles agree"
    );
}

#[test]
fn checking_delta_matches_attributed_checking_cycles() {
    // The cycle difference between modes should be approximately the cycles
    // attributed to checking-added operations (scheduling slack allowed).
    let none = {
        let c = compile(
            SRC_LIST_WALK,
            &Options::new(TagScheme::HighTag5, CheckingMode::None),
        )
        .unwrap();
        run(&c, 10_000_000).unwrap()
    };
    let full = {
        let c = compile(
            SRC_LIST_WALK,
            &Options::new(TagScheme::HighTag5, CheckingMode::Full),
        )
        .unwrap();
        run(&c, 10_000_000).unwrap()
    };
    let delta = full.stats.cycles - none.stats.cycles;
    let attributed: u64 = [CheckCat::Arith, CheckCat::Vector, CheckCat::List]
        .iter()
        .map(|c| full.stats.checking_cycles(*c))
        .sum();
    let slack = none.stats.cycles / 20 + 100; // 5%
    assert!(
        attributed.abs_diff(delta) <= slack,
        "attributed {attributed} vs actual delta {delta} (slack {slack})"
    );
}

#[test]
fn measurement_framework_round_trips() {
    let mut session = Session::new();
    let m = session
        .measure("rat", Config::baseline(CheckingMode::Full))
        .unwrap();
    assert_eq!(m.program, "rat");
    assert!(
        m.stats.checking_cycles(CheckCat::Arith) > 0,
        "rat does checked arithmetic"
    );
    assert!(m.compile.object_words > 1000);
    assert_eq!(session.stats().misses, 1);
}

#[test]
fn gc_stress_under_every_scheme() {
    // Heavy churn with a small heap, preserving a long-lived structure that has
    // to be copied repeatedly.
    let src = r#"
        (defvar keep nil)
        (defun fill (n) (if (greaterp n 0) (cons (list n 'x) (fill (sub1 n))) nil))
        (setq keep (fill 100))
        (defun churn (n)
          (while (greaterp n 0)
            (reverse (build-garbage 20))
            (setq n (sub1 n))))
        (defun build-garbage (n)
          (if (greaterp n 0) (cons (cons n n) (build-garbage (sub1 n))) nil))
        (churn 500)
        (print (length keep))
        (print (caar keep))
    "#;
    for scheme in ALL_SCHEMES {
        let opts = Options {
            heap_semi_bytes: 24 << 10,
            ..Options::new(scheme, CheckingMode::Full)
        };
        let c = compile(src, &opts).unwrap();
        let o = run(&c, 200_000_000).unwrap();
        assert_eq!(o.output, "100\n100\n", "{scheme}");
    }
}

#[test]
fn preshifted_tag_only_affects_insertion() {
    let opts = Options {
        preshifted_pair_tag: true,
        ..Options::new(TagScheme::HighTag5, CheckingMode::None)
    };
    let base = run(
        &compile(
            SRC_LIST_WALK,
            &Options::new(TagScheme::HighTag5, CheckingMode::None),
        )
        .unwrap(),
        10_000_000,
    )
    .unwrap();
    let pre = run(&compile(SRC_LIST_WALK, &opts).unwrap(), 10_000_000).unwrap();
    assert_eq!(base.output, pre.output);
    assert!(
        pre.stats.tag_op_cycles(TagOpKind::Insert) < base.stats.tag_op_cycles(TagOpKind::Insert)
    );
    // Everything else is untouched.
    assert_eq!(
        base.stats.tag_op_cycles(TagOpKind::Remove),
        pre.stats.tag_op_cycles(TagOpKind::Remove)
    );
}
