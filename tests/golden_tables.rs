//! Golden-snapshot test: the full experiment report against a checked-in
//! expected file.
//!
//! The report text is [`tagstudy::report::full_report`] — exactly what the
//! `all_experiments` binary prints to stdout — so this test pins every table
//! and figure of the study byte for byte. Any change to a measurement, a
//! render function, or the section layout fails here with the first differing
//! line.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_EXPECTED=1 cargo test --test golden_tables
//! ```

use std::fs;
use std::path::PathBuf;

fn expected_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/expected/all_experiments.txt")
}

#[test]
fn all_experiments_report_matches_golden() {
    let mut session = tagstudy::Session::new();
    let names = tagstudy::tables::default_programs();
    let got = tagstudy::report::full_report(&mut session, &names).expect("the report regenerates");

    let path = expected_path();
    if std::env::var_os("UPDATE_EXPECTED").is_some() {
        fs::write(&path, &got).expect("write the expected file");
        eprintln!("updated {}", path.display());
        return;
    }

    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nseed it with: UPDATE_EXPECTED=1 cargo test --test golden_tables",
            path.display()
        )
    });
    if got == want {
        return;
    }

    // Report the first differing line with context, then fail.
    let (got_lines, want_lines): (Vec<&str>, Vec<&str>) =
        (got.lines().collect(), want.lines().collect());
    let n = got_lines.len().max(want_lines.len());
    for i in 0..n {
        let g = got_lines.get(i).copied().unwrap_or("<missing line>");
        let w = want_lines.get(i).copied().unwrap_or("<missing line>");
        if g != w {
            panic!(
                "report drifted from {} at line {}:\n  expected: {w}\n  got:      {g}\n\
                 if the change is intentional, regenerate with UPDATE_EXPECTED=1",
                path.display(),
                i + 1
            );
        }
    }
    panic!(
        "report differs from {} only in trailing whitespace/newlines \
         (expected {} bytes, got {} bytes)",
        path.display(),
        want.len(),
        got.len()
    );
}
