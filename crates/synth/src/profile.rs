//! Op-mix profiles: target proportions of the operation categories the paper's
//! per-program overhead spread is built from.
//!
//! Table 1 of the paper attributes the 6–88% checking-overhead range to how
//! much of each benchmark is list access, vector access, and fixnum
//! arithmetic. A profile expresses that mix as nonnegative weights over five
//! categories; the generator draws operations in proportion. Profiles can be
//! interpolated ([`OpMix::lerp`]) to sweep an axis (list-heavy → arith-heavy)
//! and round-tripped through a `key=weight` string form for CLI use.

use std::fmt;

/// Nonnegative weights over the generator's operation categories.
///
/// The weights are relative, not normalized: `list=2,arith=1` draws twice as
/// many list operations as arithmetic ones regardless of scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// `car`/`cdr`/`cons`/`rplaca` structure operations.
    pub list: f64,
    /// `mkvect`/`getv`/`putv`/`upbv` vector operations.
    pub vector: f64,
    /// Fixnum arithmetic (`plus`/`difference`/`times`/`quotient`/`remainder`).
    pub arith: f64,
    /// Conditional branches (`if` on comparisons and `pairp` probes).
    pub branch: f64,
    /// Known calls and `funcall`s through symbols.
    pub call: f64,
}

impl OpMix {
    /// Equal weight on every category.
    pub fn balanced() -> OpMix {
        OpMix {
            list: 1.0,
            vector: 1.0,
            arith: 1.0,
            branch: 1.0,
            call: 1.0,
        }
    }

    /// Mostly list traversal and consing — the `boyer`/`browse` end of
    /// Table 1, where overhead is low because parallel checked loads can
    /// absorb the cost.
    pub fn list_heavy() -> OpMix {
        OpMix {
            list: 8.0,
            vector: 0.25,
            arith: 0.5,
            branch: 1.0,
            call: 0.5,
        }
    }

    /// Mostly vector reads and writes.
    pub fn vector_heavy() -> OpMix {
        OpMix {
            list: 0.25,
            vector: 8.0,
            arith: 0.5,
            branch: 1.0,
            call: 0.5,
        }
    }

    /// Mostly fixnum arithmetic — the `puzzle`/`traverse` end of Table 1,
    /// where every add carries an operand check and an overflow test.
    pub fn arith_heavy() -> OpMix {
        OpMix {
            list: 0.25,
            vector: 0.25,
            arith: 8.0,
            branch: 1.0,
            call: 0.5,
        }
    }

    /// Linear interpolation: `t = 0` gives `a`, `t = 1` gives `b`.
    pub fn lerp(a: &OpMix, b: &OpMix, t: f64) -> OpMix {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: f64, y: f64| x + (y - x) * t;
        OpMix {
            list: mix(a.list, b.list),
            vector: mix(a.vector, b.vector),
            arith: mix(a.arith, b.arith),
            branch: mix(a.branch, b.branch),
            call: mix(a.call, b.call),
        }
    }

    /// The weights scaled to sum to 1 (fractions). Returns `balanced()`
    /// normalized if every weight is zero.
    pub fn fractions(&self) -> OpMix {
        let total = self.list + self.vector + self.arith + self.branch + self.call;
        if total <= 0.0 {
            return OpMix::balanced().fractions();
        }
        OpMix {
            list: self.list / total,
            vector: self.vector / total,
            arith: self.arith / total,
            branch: self.branch / total,
            call: self.call / total,
        }
    }

    /// Parse the `Display` form: comma-separated `key=weight` pairs over
    /// `list`, `vector`, `arith`, `branch`, `call`, or a preset name
    /// (`balanced`, `list-heavy`, `vector-heavy`, `arith-heavy`). Unmentioned
    /// keys default to 0.
    pub fn parse(s: &str) -> Result<OpMix, String> {
        match s.trim() {
            "balanced" => return Ok(OpMix::balanced()),
            "list-heavy" => return Ok(OpMix::list_heavy()),
            "vector-heavy" => return Ok(OpMix::vector_heavy()),
            "arith-heavy" => return Ok(OpMix::arith_heavy()),
            _ => {}
        }
        let mut mix = OpMix {
            list: 0.0,
            vector: 0.0,
            arith: 0.0,
            branch: 0.0,
            call: 0.0,
        };
        for pair in s.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("op-mix term `{pair}` is not key=weight"))?;
            let w: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("op-mix weight `{value}` is not a number"))?;
            if !w.is_finite() || w < 0.0 {
                return Err(format!("op-mix weight `{value}` must be finite and >= 0"));
            }
            match key.trim() {
                "list" => mix.list = w,
                "vector" => mix.vector = w,
                "arith" => mix.arith = w,
                "branch" => mix.branch = w,
                "call" => mix.call = w,
                other => return Err(format!("unknown op-mix key `{other}`")),
            }
        }
        if mix.list + mix.vector + mix.arith + mix.branch + mix.call <= 0.0 {
            return Err(format!("op-mix `{s}` has no positive weight"));
        }
        Ok(mix)
    }
}

impl fmt::Display for OpMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "list={},vector={},arith={},branch={},call={}",
            self.list, self.vector, self.arith, self.branch, self.call
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        let mix = OpMix {
            list: 2.5,
            vector: 0.0,
            arith: 1.0,
            branch: 0.5,
            call: 0.25,
        };
        assert_eq!(OpMix::parse(&mix.to_string()).unwrap(), mix);
    }

    #[test]
    fn parse_accepts_presets_and_rejects_junk() {
        assert_eq!(OpMix::parse("balanced").unwrap(), OpMix::balanced());
        assert_eq!(OpMix::parse("arith-heavy").unwrap(), OpMix::arith_heavy());
        assert!(OpMix::parse("list=").is_err());
        assert!(OpMix::parse("warp=1").is_err());
        assert!(OpMix::parse("list=-1").is_err());
        assert!(OpMix::parse("list=0,arith=0").is_err());
    }

    #[test]
    fn lerp_hits_endpoints_and_midpoint() {
        let a = OpMix::list_heavy();
        let b = OpMix::arith_heavy();
        assert_eq!(OpMix::lerp(&a, &b, 0.0), a);
        assert_eq!(OpMix::lerp(&a, &b, 1.0), b);
        let mid = OpMix::lerp(&a, &b, 0.5);
        assert!((mid.list - (a.list + b.list) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let f = OpMix::arith_heavy().fractions();
        let sum = f.list + f.vector + f.arith + f.branch + f.call;
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
