//! `synth` — seeded workload generation and a cross-scheme differential
//! oracle.
//!
//! The paper's central empirical fact is that run-time checking overhead is a
//! function of each program's *operation mix*: list-heavy programs sit near
//! the 6% end of the spread, arithmetic-heavy ones near 88% (Table 1). The
//! ten fixed benchmarks in the `programs` crate sample that space at ten
//! points; this crate makes the space *dense* and, at the same time, gives
//! the whole reproduction a semantic ground truth:
//!
//! - [`profile::OpMix`] — an op-mix profile (list/vector/arith/branch/call
//!   weights) that can be preset, parsed, and interpolated along an axis;
//! - [`gen`] — a deterministic, seeded generator (its own PCG32, no `std`
//!   randomness) that turns a `(seed, mix)` pair into a terminating,
//!   trap-free Lisp program whose behaviour is identical under every tag
//!   scheme, checking mode, and hardware level;
//! - [`oracle`] — the differential oracle: the tree-walking reference
//!   evaluator ([`lisp::eval`]) fixes the expected result and an op census,
//!   then every scheme × checking × hardware configuration must reproduce
//!   the result exactly and attribute checking cycles consistently with the
//!   census;
//! - [`shrink`] — greedy minimization of any program the oracle rejects, so
//!   a failure report is a few forms, not a few hundred;
//! - [`fleet`] — the continuous campaign engine over that oracle: a coverage
//!   grid of op-mix cells × matrix columns, pluggable [`fleet::Runner`]s
//!   (in-process or a live daemon), shrunk witnesses archived through
//!   `store::fuzz`, and a persistent ledger that makes campaigns resumable.
//!
//! Reproduce any program from its report: `gen::render(&gen::generate(seed,
//! &mix))` is bit-identical across runs and machines.

#![deny(missing_docs)]

pub mod fleet;
pub mod gen;
pub mod oracle;
pub mod profile;
pub mod rng;
pub mod shrink;

pub use fleet::{
    run_campaign, CampaignReport, CampaignSpec, Column, LocalRunner, Runner,
};
pub use gen::{generate, render, Program};
pub use oracle::{check_program, check_rendered, oracle_configs, Mismatch, MismatchKind};
pub use profile::OpMix;
pub use rng::Pcg32;
pub use shrink::shrink;
