//! The seeded program generator.
//!
//! A generated program is held as a small IR ([`Program`]) and *rendered* to
//! Lisp source ([`render`]). All safety reasoning lives in the renderer: it
//! tracks a magnitude bound for every sub-expression (interval arithmetic)
//! and inserts a `remainder` reduction only where a value could otherwise
//! overflow the smallest tag scheme's fixnum range; storage boundaries
//! (globals, list and vector slots, call arguments, function returns) are
//! always reduced so the bound of a *load* is known. No divisor can be zero,
//! no vector index can leave its bounds, and no `car`/`cdr` can reach past a
//! list's spine. Because safety is re-derived at render time, any structural
//! edit to the IR (in particular the shrinker's) yields another well-typed,
//! trap-free program — programs behave identically under
//! `CheckingMode::None` and `CheckingMode::Full`, which is exactly what the
//! differential oracle needs.
//!
//! Termination is structural too: loops have literal iteration counts,
//! recursion burns an explicit fuel parameter re-seeded with a small literal
//! at every call site, and functions may only call lower-numbered functions.

use crate::profile::OpMix;
use crate::rng::Pcg32;
use std::fmt::Write;

/// Values the renderer keeps bounded at *storage boundaries* (globals, list
/// and vector slots, call arguments, function returns): every stored value
/// lies strictly within `(-SMALL_MOD, SMALL_MOD)`. `4998² = 24 980 004` is
/// below [`INT_LIMIT`], so two stored values can always be multiplied.
pub const SMALL_MOD: i32 = 4999;
/// Multiplication operands whose interval bound exceeds this are reduced
/// mod 5693: `5692² = 32 398 864` is below [`INT_LIMIT`], so `times` can
/// never overflow undetected.
pub const MUL_MOD: i32 = 5693;
/// Hard magnitude ceiling for any rendered intermediate: the largest fixnum
/// of the narrowest tag scheme (`2^25 − 1` under high-tag-6). The renderer
/// tracks an interval bound per sub-expression and inserts a `remainder`
/// reduction only when a value could otherwise cross this line — so most
/// arithmetic renders unwrapped, and the checking overhead of a generated
/// program reflects its op mix rather than its safety scaffolding.
pub const INT_LIMIT: u64 = 33_554_431;
/// Recursion fuel literals at call sites stay at or below this depth.
pub const MAX_FUEL: u32 = 4;
/// Loop counters available to `drive` (`v0`..`v3`), one per nesting level.
pub const LOOP_SLOTS: u8 = 4;

/// A binary fixnum operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `plus` (rendered `add1` when one operand is the literal 1).
    Add,
    /// `difference` (rendered `sub1` when the right operand is the literal 1).
    Sub,
    /// `times`, operands reduced mod [`MUL_MOD`].
    Mul,
    /// `quotient`, divisor rendered `(add1 (abs d))` so it is at least 1.
    Quo,
    /// `remainder`, same divisor treatment.
    Rem,
}

/// A comparison operator for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `lessp`
    Lt,
    /// `greaterp`
    Gt,
    /// `leq`
    Le,
    /// `geq`
    Ge,
    /// `eqn`
    EqN,
}

/// A boolean test used by `if` forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Compare two wrapped integer expressions.
    Cmp(CmpOp, Box<E>, Box<E>),
    /// `(pairp (cdr^k lstN))` — probe whether a list has a tail at depth `k`.
    HasTail(usize, usize),
}

/// An integer-valued expression.
#[derive(Debug, Clone, PartialEq)]
pub enum E {
    /// A literal (generated nonnegative; negatives render via `minus`).
    Lit(i32),
    /// The global accumulator.
    Acc,
    /// A local slot: a parameter inside a function, a loop counter in `drive`.
    Loc(u8),
    /// `(length scratch)` — how many conses the program has pushed.
    ScratchLen,
    /// `(car (cdr^k lstN))`.
    ListNth(usize, usize),
    /// `(getv vecN wrapped-index)`.
    VecRef(usize, Box<E>),
    /// Negation.
    Neg(Box<E>),
    /// A binary operation.
    Bin(BinOp, Box<E>, Box<E>),
    /// A conditional expression.
    IfE(Box<Cond>, Box<E>, Box<E>),
    /// A known call to function `j` (renderer fixes arity and fuel).
    Call(usize, Vec<E>),
    /// `(funcall (quote fj) ...)` — same, through the symbol.
    Funcall(usize, Vec<E>),
    /// The recursive self-call inside a function's recursive arm; the
    /// renderer passes `(sub1 fuel)` as the fuel argument.
    SelfCall(Vec<E>),
}

/// A statement in the `drive` routine.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `(setq acc wrapped-e)` — fold a value into the accumulator.
    AccSet(E),
    /// `(setq scratch (cons wrapped-e scratch))`.
    ConsPush(E),
    /// `(putv vecN wrapped-index wrapped-e)`.
    VecSet(usize, E, E),
    /// `(rplaca (cdr^k lstN) wrapped-e)` — overwrite a list element in place.
    ListSet(usize, usize, E),
    /// A two-armed conditional statement.
    IfS(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `(setq vS 0) (while (lessp vS count) body… (setq vS (add1 vS)))` — a
    /// counter-driven loop: its per-iteration scaffolding is checked
    /// arithmetic (`lessp`, `add1`), the expensive-check idiom.
    Repeat(u8, u32, Vec<Stmt>),
    /// `(setq wS spnN) (while (pairp wS) body… (setq wS (cdr wS)))` — a
    /// spine-driven loop walking immutable list `spnN`: its scaffolding is a
    /// tag test and one checked `cdr`, the cheap-check idiom.
    ForSpine(u8, usize, Vec<Stmt>),
}

/// One generated function. Functions are expression-bodied and pure; a
/// recursive function takes a leading `fuel` parameter and dispatches
/// `(if (greaterp fuel 0) rec body)`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenFn {
    /// Number of data parameters (`a0`…), at least as rendered; the renderer
    /// pads or truncates call-site arguments to match.
    pub params: u8,
    /// The recursive arm, containing at least one [`E::SelfCall`]. `Some`
    /// implies the function takes a `fuel` parameter.
    pub rec: Option<E>,
    /// The base arm (the whole body when `rec` is `None`).
    pub body: E,
}

/// A complete generated program: constants, functions, and a `drive` routine,
/// plus the seed and mix that produced it (for replay and reports).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The PRNG seed this program was generated from.
    pub seed: u64,
    /// The op-mix profile it was generated under.
    pub mix: OpMix,
    /// Immutable-spine lists (`lst0`…); elements may be overwritten.
    pub lists: Vec<Vec<i32>>,
    /// Spine lists (`spn0`…, lengths): loop drivers for [`Stmt::ForSpine`].
    /// Never read or written, only walked.
    pub spines: Vec<usize>,
    /// Vector lengths (`vec0`…); every slot is filled before `drive` runs.
    pub vecs: Vec<usize>,
    /// Generated functions (`f0`…); `fj` may only call `fi` with `i < j`.
    pub fns: Vec<GenFn>,
    /// The statements of the `drive` routine.
    pub drive: Vec<Stmt>,
}

impl Program {
    /// IR node count — the "form count" the shrinker minimizes. Counts
    /// expressions, conditions, statements, functions, lists and vectors;
    /// the fixed harness (defvars, setup, result printing) is not counted.
    pub fn size(&self) -> usize {
        fn ce(e: &E) -> usize {
            1 + match e {
                E::Lit(_) | E::Acc | E::Loc(_) | E::ScratchLen | E::ListNth(..) => 0,
                E::VecRef(_, i) => ce(i),
                E::Neg(a) => ce(a),
                E::Bin(_, a, b) => ce(a) + ce(b),
                E::IfE(c, a, b) => cc(c) + ce(a) + ce(b),
                E::Call(_, args) | E::Funcall(_, args) | E::SelfCall(args) => {
                    args.iter().map(ce).sum()
                }
            }
        }
        fn cc(c: &Cond) -> usize {
            1 + match c {
                Cond::Cmp(_, a, b) => ce(a) + ce(b),
                Cond::HasTail(..) => 0,
            }
        }
        fn cs(s: &Stmt) -> usize {
            1 + match s {
                Stmt::AccSet(e) | Stmt::ConsPush(e) | Stmt::ListSet(_, _, e) => ce(e),
                Stmt::VecSet(_, i, e) => ce(i) + ce(e),
                Stmt::IfS(c, t, f) => {
                    cc(c) + t.iter().map(cs).sum::<usize>() + f.iter().map(cs).sum::<usize>()
                }
                Stmt::Repeat(_, _, body) | Stmt::ForSpine(_, _, body) => body.iter().map(cs).sum(),
            }
        }
        let fns: usize = self
            .fns
            .iter()
            .map(|f| 1 + ce(&f.body) + f.rec.as_ref().map_or(0, ce))
            .sum();
        let drive: usize = self.drive.iter().map(cs).sum();
        fns + drive + self.lists.len() + self.vecs.len() + self.spines.len()
    }

    /// Render to Lisp source. Shorthand for [`render`].
    pub fn source(&self) -> String {
        render(self)
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Ctx {
    /// Inside function `idx`; `in_rec` marks the recursive arm, where calls
    /// to other functions are forbidden (keeps the dynamic call tree linear
    /// in the fuel bound).
    Fn {
        idx: usize,
        in_rec: bool,
    },
    Drive,
}

struct Gen<'a> {
    rng: Pcg32,
    mix: &'a OpMix,
    n_lists: usize,
    list_lens: Vec<usize>,
    n_vecs: usize,
    n_fns: usize,
}

/// Generate the program for `seed` under `mix`. Deterministic: the same
/// `(seed, mix)` always yields the identical program and source text.
pub fn generate(seed: u64, mix: &OpMix) -> Program {
    let mut g = Gen {
        rng: Pcg32::new(seed, 0x5eed),
        mix,
        n_lists: 0,
        list_lens: Vec::new(),
        n_vecs: 0,
        n_fns: 0,
    };

    let n_lists = 1 + g.rng.below(2) as usize;
    let lists: Vec<Vec<i32>> = (0..n_lists)
        .map(|_| {
            let len = 2 + g.rng.below(4) as usize;
            (0..len).map(|_| g.rng.range_i32(0, 999)).collect()
        })
        .collect();
    g.n_lists = lists.len();
    g.list_lens = lists.iter().map(Vec::len).collect();

    let n_vecs = 1 + g.rng.below(2) as usize;
    let vecs: Vec<usize> = (0..n_vecs).map(|_| 2 + g.rng.below(5) as usize).collect();
    g.n_vecs = vecs.len();

    let n_fns = 1 + g.rng.below(3) as usize;
    let mut fns = Vec::with_capacity(n_fns);
    for idx in 0..n_fns {
        g.n_fns = idx; // only lower-numbered functions are callable from here
        let params = 1 + g.rng.below(2) as u8;
        let recursive = g.rng.chance(0.4);
        let body = g.expr(3, Ctx::Fn { idx, in_rec: false });
        let rec = if recursive {
            // Guarantee the self-call and keep the arm small.
            let args: Vec<E> = (0..params)
                .map(|_| g.expr(1, Ctx::Fn { idx, in_rec: true }))
                .collect();
            let rest = g.expr(2, Ctx::Fn { idx, in_rec: true });
            Some(E::Bin(
                BinOp::Add,
                Box::new(E::SelfCall(args)),
                Box::new(rest),
            ))
        } else {
            None
        };
        fns.push(GenFn { params, rec, body });
    }
    g.n_fns = n_fns;

    let spines: Vec<usize> = (0..2).map(|_| 14 + g.rng.below(27) as usize).collect();

    // Drive is dominated by mandatory top-level loops, so the measured cycle
    // count reflects the mix rather than the fixed setup/printing harness.
    // The loop *driver* is itself mix-weighted: list-leaning mixes walk a
    // spine (tag test + one cdr per iteration), arith-leaning mixes count
    // (lessp + add1 per iteration) — the two idioms the paper's spread of
    // checking overheads comes from. Loop bodies never nest another loop
    // (`LOOP_SLOTS` as the depth), which caps cons volume and keeps the
    // scratch list's length below SMALL_MOD.
    let n_loops = 4 + g.rng.below(3) as usize;
    let mut drive: Vec<Stmt> = (0..n_loops)
        .map(|_| {
            let n = 2 + g.rng.below(4) as usize;
            let body: Vec<Stmt> = (0..n).map(|_| g.stmt(1, LOOP_SLOTS)).collect();
            let spine_w = 1.5 * mix.list;
            let counter_w = mix.arith + 0.25 * (mix.vector + mix.call) + 0.05;
            if g.rng.weighted(&[spine_w, counter_w]) == 0 {
                let s = g.rng.below(spines.len() as u32) as usize;
                Stmt::ForSpine(g.rng.below(LOOP_SLOTS as u32) as u8, s, body)
            } else {
                let count = 8 + g.rng.below(23);
                Stmt::Repeat(g.rng.below(LOOP_SLOTS as u32) as u8, count, body)
            }
        })
        .collect();
    let n_straight = 2 + g.rng.below(3) as usize;
    drive.extend((0..n_straight).map(|_| g.stmt(2, 0)));

    Program {
        seed,
        mix: *mix,
        lists,
        spines,
        vecs,
        fns,
        drive,
    }
}

impl Gen<'_> {
    fn leaf(&mut self, _ctx: Ctx) -> E {
        let m = self.mix;
        let mut w = [
            m.arith + m.branch + m.call + 0.25, // plain scalar leaves
            m.list,
            m.vector,
        ];
        if self.n_lists == 0 {
            w[1] = 0.0;
        }
        if self.n_vecs == 0 {
            w[2] = 0.0;
        }
        match self.rng.weighted(&w) {
            // `E::ScratchLen` stays renderable (the shrinker may preserve
            // one) but is no longer generated: `(length scratch)` walks a
            // checked cdr+add1 per cell ever pushed, a cost that tracks cons
            // volume rather than the mix — it blurred both sweep ends.
            0 => self.scalar_leaf(),
            1 => self.list_nth(),
            _ => {
                let v = self.rng.below(self.n_vecs as u32) as usize;
                // Small literal indices usually land in range, letting the
                // renderer skip the `(remainder (abs …))` clamp.
                E::VecRef(v, Box::new(E::Lit(self.rng.range_i32(0, 6))))
            }
        }
    }

    /// A scalar-only leaf: no list or vector read, so no checkable memory op.
    fn scalar_leaf(&mut self) -> E {
        match self.rng.below(3) {
            0 => E::Lit(self.rng.range_i32(0, 999)),
            1 => E::Acc,
            _ => E::Loc(self.rng.below(LOOP_SLOTS as u32) as u8),
        }
    }

    fn list_nth(&mut self) -> E {
        if self.n_lists == 0 {
            return E::Lit(self.rng.range_i32(0, 999));
        }
        let l = self.rng.below(self.n_lists as u32) as usize;
        // Shallow reads (car, cadr) — the real-code idiom. Deep cdr chains
        // are all checked ops, which would swamp a list-heavy mix's cheap
        // allocation work with expensive checking.
        let k = self.rng.below((self.list_lens[l] as u32).min(2)) as usize;
        E::ListNth(l, k)
    }

    fn expr(&mut self, depth: u32, ctx: Ctx) -> E {
        if depth == 0 {
            return self.leaf(ctx);
        }
        let m = self.mix;
        let callable = match ctx {
            Ctx::Fn { in_rec: true, .. } => false,
            Ctx::Fn { idx, .. } => idx > 0,
            Ctx::Drive => self.n_fns > 0,
        };
        let mut w = [m.list, m.vector, m.arith + 0.25, m.branch, m.call];
        if self.n_lists == 0 {
            w[0] = 0.0;
        }
        if self.n_vecs == 0 {
            w[1] = 0.0;
        }
        if !callable {
            w[4] = 0.0;
        }
        match self.rng.weighted(&w) {
            0 => self.list_nth(),
            1 => {
                let v = self.rng.below(self.n_vecs as u32) as usize;
                E::VecRef(v, Box::new(self.expr(depth - 1, ctx)))
            }
            2 => {
                if self.rng.chance(0.1) {
                    return E::Neg(Box::new(self.expr(depth - 1, ctx)));
                }
                // Add/sub scale with the arith weight: they are the paper's
                // cheap-op/costly-check case, so an arith-heavy mix should be
                // add1/plus-dense rather than div-dense (division's own
                // multi-cycle latency would mask the check).
                let m_arith = self.mix.arith;
                let op =
                    match self
                        .rng
                        .weighted(&[2.0 * m_arith + 1.0, m_arith + 0.6, 0.8, 0.25, 0.25])
                    {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        2 => BinOp::Mul,
                        3 => BinOp::Quo,
                        _ => BinOp::Rem,
                    };
                let a = self.expr(depth - 1, ctx);
                // A literal-1 operand renders as add1/sub1, so those show up too.
                let b = if self.rng.chance(0.15) {
                    E::Lit(1)
                } else {
                    self.expr(depth - 1, ctx)
                };
                E::Bin(op, Box::new(a), Box::new(b))
            }
            3 => E::IfE(
                Box::new(self.cond(depth - 1, ctx)),
                Box::new(self.expr(depth - 1, ctx)),
                Box::new(self.expr(depth - 1, ctx)),
            ),
            _ => {
                let hi = match ctx {
                    Ctx::Fn { idx, .. } => idx,
                    Ctx::Drive => self.n_fns,
                };
                let j = self.rng.below(hi as u32) as usize;
                let nargs = 1 + self.rng.below(2) as usize;
                let args: Vec<E> = (0..nargs).map(|_| self.expr(1, ctx)).collect();
                if self.rng.chance(0.35) {
                    E::Funcall(j, args)
                } else {
                    E::Call(j, args)
                }
            }
        }
    }

    fn cond(&mut self, depth: u32, ctx: Ctx) -> Cond {
        // Comparisons are checked arithmetic; pairp probes are tag tests.
        // Steer hard so list-leaning mixes branch on structure, not numbers.
        let list_frac = self.mix.fractions().list;
        if self.n_lists > 0 && self.rng.chance(0.15 + 0.85 * list_frac) {
            let l = self.rng.below(self.n_lists as u32) as usize;
            let k = self.rng.below((self.list_lens[l] as u32 + 1).min(3)) as usize;
            return Cond::HasTail(l, k);
        }
        let op = match self.rng.below(5) {
            0 => CmpOp::Lt,
            1 => CmpOp::Gt,
            2 => CmpOp::Le,
            3 => CmpOp::Ge,
            _ => CmpOp::EqN,
        };
        Cond::Cmp(
            op,
            Box::new(self.expr(depth, ctx)),
            Box::new(self.expr(depth, ctx)),
        )
    }

    fn stmt(&mut self, nest: u32, loop_depth: u8) -> Stmt {
        let m = self.mix;
        let mut w = [
            m.arith + m.call + 0.5, // AccSet
            m.list * 1.25,          // ConsPush — unchecked allocation
            m.list * 0.12,          // ListSet — rplaca is check-dense
            m.vector,               // VecSet
            if nest > 0 { m.branch } else { 0.0 },
            // Nested counter loops scale with the arith weight: their
            // lessp+add1 scaffold is exactly the cheap-op/costly-check case,
            // and letting them appear mix-blind pulls the list end upward.
            if nest > 0 && loop_depth < LOOP_SLOTS {
                0.15 + m.arith * 0.35
            } else {
                0.0
            },
        ];
        if self.n_lists == 0 {
            w[1] = 0.0; // cons still fine, but keep list weight meaning
            w[2] = 0.0;
        }
        if self.n_vecs == 0 {
            w[3] = 0.0;
        }
        match self.rng.weighted(&w) {
            0 => Stmt::AccSet(self.expr(2, Ctx::Drive)),
            1 => {
                // Payloads keep a cons what it is in real list-heavy code:
                // an allocation of a value in hand (a scalar) or of a field
                // just read (a shallow car/cadr). Deeper expressions — calls,
                // arithmetic chains — would smuggle the *other* end's profile
                // into every iteration of a spine walk. The more list-leaning
                // the mix, the more the payloads are pure allocation.
                let scalar_frac = 0.55 + 0.35 * self.mix.fractions().list;
                let payload = if self.rng.chance(scalar_frac) {
                    self.scalar_leaf()
                } else {
                    self.leaf(Ctx::Drive)
                };
                Stmt::ConsPush(payload)
            }
            2 => {
                let l = self.rng.below(self.n_lists as u32) as usize;
                let k = self.rng.below(self.list_lens[l] as u32) as usize;
                Stmt::ListSet(l, k, self.expr(2, Ctx::Drive))
            }
            3 => {
                let v = self.rng.below(self.n_vecs as u32) as usize;
                Stmt::VecSet(v, self.expr(1, Ctx::Drive), self.expr(2, Ctx::Drive))
            }
            4 => {
                let c = self.cond(1, Ctx::Drive);
                let nt = 1 + self.rng.below(2);
                let nf = self.rng.below(2);
                let t = (0..nt).map(|_| self.stmt(nest - 1, loop_depth)).collect();
                let f = (0..nf).map(|_| self.stmt(nest - 1, loop_depth)).collect();
                Stmt::IfS(c, t, f)
            }
            _ => {
                let count = 3 + self.rng.below(8);
                let n = 1 + self.rng.below(3);
                let body = (0..n)
                    .map(|_| self.stmt(nest - 1, loop_depth + 1))
                    .collect();
                Stmt::Repeat(loop_depth, count, body)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum RCtx {
    Fn { params: u8, fuel: bool, idx: usize },
    Drive,
}

struct Render<'a> {
    p: &'a Program,
}

/// Render `p` to Lisp source text.
///
/// The output always defines `acc`, `scratch`, the surviving `lstN`/`vecN`
/// globals, the generated functions, `setup` (fills every vector slot so no
/// read ever sees a non-integer), and `drive`; it ends by printing `acc`, the
/// scratch length, every list, and every vector element, so the observable
/// output covers all mutable state.
pub fn render(p: &Program) -> String {
    let r = Render { p };
    let mut out = String::new();

    let _ = writeln!(out, ";; synth seed={} mix={}", p.seed, p.mix);
    out.push_str("(defvar acc 1)\n(defvar scratch nil)\n");
    for (i, elems) in p.lists.iter().enumerate() {
        let body: Vec<String> = elems.iter().map(|e| e.to_string()).collect();
        let _ = writeln!(out, "(defvar lst{i} (quote ({})))", body.join(" "));
    }
    for (i, len) in p.spines.iter().enumerate() {
        let cells = vec!["0"; (*len).max(1)];
        let _ = writeln!(out, "(defvar spn{i} (quote ({})))", cells.join(" "));
    }
    for (i, len) in p.vecs.iter().enumerate() {
        let _ = writeln!(out, "(defvar vec{i} (mkvect {}))", (*len).max(1));
    }

    for (idx, f) in p.fns.iter().enumerate() {
        let ctx = RCtx::Fn {
            params: f.params.max(1),
            fuel: f.rec.is_some(),
            idx,
        };
        let mut sig = String::new();
        if f.rec.is_some() {
            sig.push_str("fuel");
        }
        for a in 0..f.params.max(1) {
            if !sig.is_empty() {
                sig.push(' ');
            }
            let _ = write!(sig, "a{a}");
        }
        match &f.rec {
            Some(rec) => {
                let _ = writeln!(
                    out,
                    "(defun f{idx} ({sig})\n  (if (greaterp fuel 0)\n      {}\n      {}))",
                    r.clamp_small(rec, ctx),
                    r.clamp_small(&f.body, ctx)
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "(defun f{idx} ({sig}) {})",
                    r.clamp_small(&f.body, ctx)
                );
            }
        }
    }

    out.push_str("(defun setup ()\n");
    for (i, len) in p.vecs.iter().enumerate() {
        for j in 0..(*len).max(1) {
            let fill = (i as i32 * 37 + j as i32 * 7 + 1) % 1000;
            let _ = writeln!(out, "  (putv vec{i} {j} {fill})");
        }
    }
    out.push_str("  nil)\n");

    out.push_str(
        "(defun drive ()\n  (let ((v0 0) (v1 0) (v2 0) (v3 0) (w0 nil) (w1 nil) (w2 nil) (w3 nil))\n",
    );
    for s in &p.drive {
        r.stmt(s, 4, &mut out);
    }
    out.push_str("    acc))\n");

    if !p.vecs.is_empty() {
        out.push_str(
            "(defun dumpv (v)\n  (let ((i 0))\n    (while (lessp i (upbv v))\n      \
             (print (getv v i))\n      (setq i (add1 i)))))\n",
        );
    }
    // Observe scratch through its head (the most recent cons), not through
    // `length`: a full walk would cost add1+cdr checking per cell ever
    // pushed, drowning the drive's own op mix in harness cycles.
    out.push_str(
        "(setup)\n(drive)\n(print acc)\n(if (pairp scratch) (print (car scratch)) (print 0))\n",
    );
    for i in 0..p.lists.len() {
        let _ = writeln!(out, "(print lst{i})");
    }
    for i in 0..p.vecs.len() {
        let _ = writeln!(out, "(dumpv vec{i})");
    }
    out
}

/// Bound of any value loaded from a storage boundary (global, list element,
/// vector slot, parameter, function return): stores are clamped, so loads are
/// strictly below [`SMALL_MOD`].
const SMALL_BOUND: u64 = (SMALL_MOD - 1) as u64;

impl Render<'_> {
    /// Render `e` clamped into `(-SMALL_MOD, SMALL_MOD)`. Used at every
    /// storage boundary; elided when the tracked bound proves the value is
    /// already small, so a plain `(setq acc (plus a0 v1))` stays unwrapped.
    fn clamp_small(&self, e: &E, ctx: RCtx) -> String {
        let (s, b) = self.rexpr(e, ctx);
        if b < SMALL_MOD as u64 {
            s
        } else {
            format!("(remainder {s} {SMALL_MOD})")
        }
    }

    /// Render a `times` operand: reduced mod [`MUL_MOD`] only when its bound
    /// does not already guarantee an overflow-free product. Stored values are
    /// below [`SMALL_MOD`] < [`MUL_MOD`], so most operands render bare.
    fn mul_operand(&self, e: &E, ctx: RCtx) -> (String, u64) {
        let (s, b) = self.rexpr(e, ctx);
        if b < MUL_MOD as u64 {
            (s, b)
        } else {
            (format!("(remainder {s} {MUL_MOD})"), (MUL_MOD - 1) as u64)
        }
    }

    fn chain(&self, l: usize, k: usize) -> String {
        format!("{}lst{l}{}", "(cdr ".repeat(k), ")".repeat(k))
    }

    /// Render a vector index clamped into `[0, len)`. A nonnegative literal
    /// already in range renders bare — no `(remainder (abs …))` detour.
    fn index(&self, i: &E, len: usize, ctx: RCtx) -> String {
        if let E::Lit(v) = i {
            if (0..len as i32).contains(v) {
                return v.to_string();
            }
        }
        let (si, _) = self.rexpr(i, ctx);
        format!("(remainder (abs {si}) {len})")
    }

    /// Render `e`, returning the source text and a magnitude bound for its
    /// value. Invariant: the bound never exceeds [`INT_LIMIT`], so every
    /// intermediate fits the narrowest scheme's fixnum range and the program
    /// behaves identically whether or not overflow checking is on.
    fn rexpr(&self, e: &E, ctx: RCtx) -> (String, u64) {
        match e {
            E::Lit(v) if *v < 0 => (format!("(minus {})", -(*v as i64)), v.unsigned_abs() as u64),
            E::Lit(v) => (v.to_string(), *v as u64),
            E::Acc => ("acc".into(), SMALL_BOUND),
            E::Loc(s) => {
                let name = match ctx {
                    RCtx::Fn { params, .. } => format!("a{}", s % params.max(1)),
                    RCtx::Drive => format!("v{}", s % LOOP_SLOTS),
                };
                (name, SMALL_BOUND)
            }
            // At most one cons per rendered IR statement per loop iteration,
            // and loop nests are depth-2 with literal counts <= 10, so the
            // scratch list stays well below SMALL_BOUND cells.
            E::ScratchLen => ("(length scratch)".into(), SMALL_BOUND),
            E::ListNth(l, k) => {
                if self.p.lists.is_empty() {
                    return ("0".into(), 0);
                }
                let l = l % self.p.lists.len();
                let len = self.p.lists[l].len().max(1);
                (format!("(car {})", self.chain(l, k % len)), SMALL_BOUND)
            }
            E::VecRef(v, i) => {
                if self.p.vecs.is_empty() {
                    // No vector to read: fall back to the index value itself.
                    return self.rexpr(i, ctx);
                }
                let v = v % self.p.vecs.len();
                let len = self.p.vecs[v].max(1);
                (
                    format!("(getv vec{v} {})", self.index(i, len, ctx)),
                    SMALL_BOUND,
                )
            }
            E::Neg(a) => {
                let (s, b) = self.rexpr(a, ctx);
                (format!("(minus {s})"), b)
            }
            E::Bin(op, a, b) => self.bin(*op, a, b, ctx),
            E::IfE(c, a, b) => {
                let (sa, ba) = self.rexpr(a, ctx);
                let (sb, bb) = self.rexpr(b, ctx);
                (format!("(if {} {sa} {sb})", self.cond(c, ctx)), ba.max(bb))
            }
            E::Call(j, args) => self.call(*j, args, ctx, false),
            E::Funcall(j, args) => self.call(*j, args, ctx, true),
            E::SelfCall(args) => match ctx {
                RCtx::Fn {
                    params,
                    fuel: true,
                    idx,
                } => {
                    let mut s = format!("(f{idx} (sub1 fuel)");
                    for a in 0..params {
                        let arg = args.get(a as usize).cloned().unwrap_or(E::Lit(0));
                        let _ = write!(s, " {}", self.clamp_small(&arg, ctx));
                    }
                    s.push(')');
                    (s, SMALL_BOUND)
                }
                _ => ("0".into(), 0),
            },
        }
    }

    fn bin(&self, op: BinOp, a: &E, b: &E, ctx: RCtx) -> (String, u64) {
        match op {
            BinOp::Add | BinOp::Sub => {
                let (mut sa, mut ba) = self.rexpr(a, ctx);
                let (mut sb, mut bb) = self.rexpr(b, ctx);
                // Reduce operands only when the sum could leave the fixnum
                // range — rare, since it takes a chain of products to get
                // anywhere near INT_LIMIT.
                if ba + bb > INT_LIMIT {
                    if ba >= SMALL_MOD as u64 {
                        sa = format!("(remainder {sa} {SMALL_MOD})");
                        ba = SMALL_BOUND;
                    }
                    if ba + bb > INT_LIMIT {
                        sb = format!("(remainder {sb} {SMALL_MOD})");
                        bb = SMALL_BOUND;
                    }
                }
                let s = if op == BinOp::Add && matches!(*b, E::Lit(1)) {
                    format!("(add1 {sa})")
                } else if op == BinOp::Add && matches!(*a, E::Lit(1)) {
                    format!("(add1 {sb})")
                } else if op == BinOp::Sub && matches!(*b, E::Lit(1)) {
                    format!("(sub1 {sa})")
                } else if op == BinOp::Add {
                    format!("(plus {sa} {sb})")
                } else {
                    format!("(difference {sa} {sb})")
                };
                (s, ba + bb)
            }
            BinOp::Mul => {
                let (sa, ba) = self.mul_operand(a, ctx);
                let (sb, bb) = self.mul_operand(b, ctx);
                (format!("(times {sa} {sb})"), ba * bb)
            }
            BinOp::Quo | BinOp::Rem => {
                let (sa, ba) = self.rexpr(a, ctx);
                let (mut sb, mut bb) = self.rexpr(b, ctx);
                // `(add1 (abs d))` must itself stay in range.
                if bb >= INT_LIMIT {
                    sb = format!("(remainder {sb} {SMALL_MOD})");
                    bb = SMALL_BOUND;
                }
                let name = if op == BinOp::Quo {
                    "quotient"
                } else {
                    "remainder"
                };
                let bound = if op == BinOp::Quo { ba } else { ba.min(bb) };
                (format!("({name} {sa} (add1 (abs {sb})))"), bound)
            }
        }
    }

    fn call(&self, j: usize, args: &[E], ctx: RCtx, via_symbol: bool) -> (String, u64) {
        // A function may only call lower-numbered functions; the shrinker can
        // renumber, so clamp the target at render time too.
        let hi = match ctx {
            RCtx::Fn { idx, .. } => idx,
            RCtx::Drive => self.p.fns.len(),
        };
        if hi == 0 || self.p.fns.is_empty() {
            return match args.first() {
                Some(a) => (self.clamp_small(a, ctx), SMALL_BOUND),
                None => ("0".into(), 0),
            };
        }
        let j = j % hi;
        let target = &self.p.fns[j];
        let mut s = if via_symbol {
            format!("(funcall (quote f{j})")
        } else {
            format!("(f{j}")
        };
        if target.rec.is_some() {
            let _ = write!(s, " {}", 1 + (j as u32 % MAX_FUEL));
        }
        for a in 0..target.params.max(1) {
            let arg = args.get(a as usize).cloned().unwrap_or(E::Lit(0));
            let _ = write!(s, " {}", self.clamp_small(&arg, ctx));
        }
        s.push(')');
        // Function bodies are clamped at the top, so returns are small.
        (s, SMALL_BOUND)
    }

    fn cond(&self, c: &Cond, ctx: RCtx) -> String {
        match c {
            Cond::Cmp(op, a, b) => {
                let name = match op {
                    CmpOp::Lt => "lessp",
                    CmpOp::Gt => "greaterp",
                    CmpOp::Le => "leq",
                    CmpOp::Ge => "geq",
                    CmpOp::EqN => "eqn",
                };
                let (sa, _) = self.rexpr(a, ctx);
                let (sb, _) = self.rexpr(b, ctx);
                format!("({name} {sa} {sb})")
            }
            Cond::HasTail(l, k) => {
                if self.p.lists.is_empty() {
                    return "nil".into();
                }
                let l = l % self.p.lists.len();
                // `cdr^k` is pair-safe for k <= len (the last cdr yields nil).
                let k = k % (self.p.lists[l].len() + 1);
                format!("(pairp {})", self.chain(l, k))
            }
        }
    }

    /// Emit `e` as drive statements, leaving a value in `(-SMALL_MOD,
    /// SMALL_MOD)` and returning the expression text that names it. When the
    /// tracked bound already proves the value small this emits nothing and
    /// returns the bare rendering. Otherwise the raw value lands in `acc` and
    /// is renormalized by two compare-and-reset conditionals: unlike a
    /// `(remainder … SMALL_MOD)` wrap, whose ~25 unchecked division cycles
    /// per store dilute exactly the op mix the sweep steers, the conditional
    /// reset costs a few compare/branch cycles with an ordinary checked-arith
    /// profile. The reset constants vary per site (derived from the rendered
    /// text) so folded values stay program-specific.
    fn store_value(&self, e: &E, pad: &str, out: &mut String) -> String {
        let (s, b) = self.rexpr(e, RCtx::Drive);
        if b < SMALL_MOD as u64 {
            return s;
        }
        let salt: u64 = s.bytes().map(u64::from).sum();
        let k1 = 100 + salt % 3900;
        let k2 = 100 + (salt * 7 + 13) % 3900;
        let _ = writeln!(out, "{pad}(setq acc {s})");
        let _ = writeln!(
            out,
            "{pad}(if (greaterp acc {}) (setq acc {k1}) nil)",
            SMALL_MOD - 1
        );
        let _ = writeln!(
            out,
            "{pad}(if (lessp acc (minus {})) (setq acc {k2}) nil)",
            SMALL_MOD - 1
        );
        "acc".into()
    }

    fn stmt(&self, s: &Stmt, indent: usize, out: &mut String) {
        let pad = " ".repeat(indent);
        let ctx = RCtx::Drive;
        match s {
            Stmt::AccSet(e) => {
                let value = self.store_value(e, &pad, out);
                if value != "acc" {
                    let _ = writeln!(out, "{pad}(setq acc {value})");
                }
            }
            Stmt::ConsPush(e) => {
                let value = self.store_value(e, &pad, out);
                let _ = writeln!(out, "{pad}(setq scratch (cons {value} scratch))");
            }
            Stmt::VecSet(v, i, e) => {
                if self.p.vecs.is_empty() {
                    let value = self.store_value(e, &pad, out);
                    if value != "acc" {
                        let _ = writeln!(out, "{pad}(setq acc {value})");
                    }
                    return;
                }
                let v = v % self.p.vecs.len();
                let len = self.p.vecs[v].max(1);
                let value = self.store_value(e, &pad, out);
                let _ = writeln!(
                    out,
                    "{pad}(putv vec{v} {} {value})",
                    self.index(i, len, ctx)
                );
            }
            Stmt::ListSet(l, k, e) => {
                if self.p.lists.is_empty() {
                    let value = self.store_value(e, &pad, out);
                    if value != "acc" {
                        let _ = writeln!(out, "{pad}(setq acc {value})");
                    }
                    return;
                }
                let l = l % self.p.lists.len();
                let len = self.p.lists[l].len().max(1);
                let value = self.store_value(e, &pad, out);
                let _ = writeln!(out, "{pad}(rplaca {} {value})", self.chain(l, k % len));
            }
            Stmt::IfS(c, t, f) => {
                let _ = writeln!(out, "{pad}(if {}", self.cond(c, ctx));
                for (arm, label) in [(t, "then"), (f, "else")] {
                    let _ = writeln!(out, "{pad}    (progn ; {label}");
                    if arm.is_empty() {
                        let _ = writeln!(out, "{pad}      nil");
                    }
                    for s in arm {
                        self.stmt(s, indent + 6, out);
                    }
                    let _ = writeln!(out, "{pad}    )");
                }
                let _ = writeln!(out, "{pad})");
            }
            Stmt::Repeat(slot, count, body) => {
                let v = slot % LOOP_SLOTS;
                let _ = writeln!(out, "{pad}(setq v{v} 0)");
                let _ = writeln!(out, "{pad}(while (lessp v{v} {count})");
                for s in body {
                    self.stmt(s, indent + 2, out);
                }
                let _ = writeln!(out, "{pad}  (setq v{v} (add1 v{v})))");
            }
            Stmt::ForSpine(slot, spine, body) => {
                if self.p.spines.is_empty() {
                    // No spine to walk (the shrinker dropped them all): run
                    // the body once.
                    for s in body {
                        self.stmt(s, indent, out);
                    }
                    return;
                }
                let w = slot % LOOP_SLOTS;
                let spine = spine % self.p.spines.len();
                let _ = writeln!(out, "{pad}(setq w{w} spn{spine})");
                let _ = writeln!(out, "{pad}(while (pairp w{w})");
                for s in body {
                    self.stmt(s, indent + 2, out);
                }
                let _ = writeln!(out, "{pad}  (setq w{w} (cdr w{w})))");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mix = OpMix::balanced();
        let a = generate(7, &mix);
        let b = generate(7, &mix);
        assert_eq!(a, b);
        assert_eq!(render(&a), render(&b));
        let c = generate(8, &mix);
        assert_ne!(render(&a), render(&c));
    }

    #[test]
    fn rendered_programs_compile_and_run_clean() {
        // A spread of seeds compiles and halts OK under the default config —
        // the full scheme x checking x hw sweep lives in the oracle tests.
        for seed in 0..12u64 {
            let p = generate(seed, &OpMix::balanced());
            let src = render(&p);
            let compiled = lisp::compile(&src, &lisp::Options::default())
                .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{src}"));
            let out = lisp::run(&compiled, 50_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: sim failed: {e:?}"));
            assert_eq!(out.halt_code, 0, "seed {seed} trapped:\n{src}");
        }
    }

    #[test]
    fn mix_weights_steer_the_census() {
        // Arith-heavy seeds should do more arithmetic than list work, and
        // vice versa, as measured by the reference evaluator's census.
        // The renderer's safety wraps (`remainder`, index clamps, loop
        // counters) put a floor under every program's arithmetic count, so
        // compare profiles against each other in aggregate rather than
        // within one program.
        let opts = lisp::eval::EvalOptions::default();
        let (mut arith_a, mut arith_l) = (0u64, 0u64);
        let (mut list_a, mut list_l) = (0u64, 0u64);
        for seed in 0..8u64 {
            let a = lisp::eval::eval_source(&render(&generate(seed, &OpMix::arith_heavy())), &opts)
                .unwrap();
            let l = lisp::eval::eval_source(&render(&generate(seed, &OpMix::list_heavy())), &opts)
                .unwrap();
            arith_a += a.census.arith_all;
            list_a += a.census.list_all;
            arith_l += l.census.arith_all;
            list_l += l.census.list_all;
        }
        assert!(
            arith_a >= 2 * arith_l,
            "arith-heavy should out-arith list-heavy: {arith_a} vs {arith_l}"
        );
        assert!(
            list_l >= 2 * list_a,
            "list-heavy should out-list arith-heavy: {list_l} vs {list_a}"
        );
    }

    #[test]
    fn gutted_programs_still_render_valid_source() {
        // The shrinker may empty out any part of the IR; rendering must stay
        // well-formed and trap-free.
        let mut p = generate(3, &OpMix::balanced());
        p.lists.clear();
        p.spines.clear();
        p.vecs.clear();
        p.fns.clear();
        p.drive.truncate(2);
        let src = render(&p);
        let compiled = lisp::compile(&src, &lisp::Options::default())
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let out = lisp::run(&compiled, 10_000_000).unwrap();
        assert_eq!(out.halt_code, 0, "{src}");
    }

    #[test]
    fn size_counts_ir_nodes() {
        let p = Program {
            seed: 0,
            mix: OpMix::balanced(),
            lists: vec![vec![1, 2]],
            spines: vec![],
            vecs: vec![],
            fns: vec![],
            drive: vec![Stmt::AccSet(E::Bin(
                BinOp::Add,
                Box::new(E::Lit(1)),
                Box::new(E::Acc),
            ))],
        };
        // 1 list + 1 stmt + 3 expr nodes.
        assert_eq!(p.size(), 5);
    }
}
