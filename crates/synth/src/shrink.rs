//! Greedy counterexample minimization.
//!
//! The shrinker walks a failing [`Program`]'s IR proposing strictly smaller
//! variants — dropping statements, flattening conditionals and loops,
//! replacing expressions with literals or their own children, discarding
//! functions, lists and vectors — and greedily commits the first variant on
//! which the caller's predicate still reports failure, restarting until a
//! fixpoint. Because the renderer re-derives every safety wrap from the IR
//! (see [`crate::gen`]), every variant is again a valid, trap-free program,
//! so the predicate only ever sees runnable candidates.

use crate::gen::{Cond, GenFn, Program, Stmt, E};

/// Shrink `p` while `still_failing` holds. `still_failing(&p)` must be true
/// on entry (the original must actually fail); the result is a program that
/// still fails but admits no single smaller step that does.
pub fn shrink(p: &Program, still_failing: &mut dyn FnMut(&Program) -> bool) -> Program {
    let mut cur = p.clone();
    debug_assert!(still_failing(&cur), "shrink called on a passing program");
    loop {
        let before = cur.size();
        let mut advanced = false;
        for cand in candidates(&cur) {
            if cand.size() < before && still_failing(&cand) {
                cur = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return cur;
        }
    }
}

/// All single-step reductions of `p`, cheapest-to-test and biggest-win first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();

    // Drop a whole drive statement (largest wins first).
    for i in (0..p.drive.len()).rev() {
        let mut q = p.clone();
        q.drive.remove(i);
        out.push(q);
    }
    // Flatten structured statements: a conditional becomes one of its arms,
    // a loop becomes a single unrolled body.
    for i in 0..p.drive.len() {
        for repl in flatten_stmt(&p.drive[i]) {
            let mut q = p.clone();
            q.drive.splice(i..=i, repl);
            out.push(q);
        }
    }
    // Drop a function / list / vector, or trim a list to one element.
    for i in (0..p.fns.len()).rev() {
        let mut q = p.clone();
        q.fns.remove(i);
        out.push(q);
    }
    // Make a recursive function plain (drop its recursive arm).
    for i in 0..p.fns.len() {
        if p.fns[i].rec.is_some() {
            let mut q = p.clone();
            q.fns[i] = GenFn {
                rec: None,
                ..p.fns[i].clone()
            };
            out.push(q);
        }
    }
    for i in (0..p.lists.len()).rev() {
        let mut q = p.clone();
        q.lists.remove(i);
        out.push(q);
        if p.lists[i].len() > 1 {
            let mut q = p.clone();
            q.lists[i].truncate(1);
            out.push(q);
        }
    }
    for i in (0..p.vecs.len()).rev() {
        let mut q = p.clone();
        q.vecs.remove(i);
        out.push(q);
        if p.vecs[i] > 1 {
            let mut q = p.clone();
            q.vecs[i] = 1;
            out.push(q);
        }
    }
    for i in (0..p.spines.len()).rev() {
        let mut q = p.clone();
        q.spines.remove(i);
        out.push(q);
        if p.spines[i] > 1 {
            let mut q = p.clone();
            q.spines[i] = 1;
            out.push(q);
        }
    }
    // Simplify one expression somewhere in the program.
    rewrite_programs(p, &mut out);
    out
}

/// Structured-statement flattenings: each returned Vec replaces the statement.
fn flatten_stmt(s: &Stmt) -> Vec<Vec<Stmt>> {
    match s {
        Stmt::IfS(_, t, f) => vec![t.clone(), f.clone()],
        Stmt::Repeat(_, _, body) | Stmt::ForSpine(_, _, body) => vec![body.clone()],
        _ => Vec::new(),
    }
}

/// Push one program per single-expression rewrite (any expression position in
/// any statement, function body, or recursive arm).
fn rewrite_programs(p: &Program, out: &mut Vec<Program>) {
    for fi in 0..p.fns.len() {
        for body in variants_e(&p.fns[fi].body) {
            let mut q = p.clone();
            q.fns[fi].body = body;
            out.push(q);
        }
        if let Some(rec) = &p.fns[fi].rec {
            for r in variants_e(rec) {
                let mut q = p.clone();
                q.fns[fi].rec = Some(r);
                out.push(q);
            }
        }
    }
    for si in 0..p.drive.len() {
        for s in variants_s(&p.drive[si]) {
            let mut q = p.clone();
            q.drive[si] = s;
            out.push(q);
        }
    }
}

/// Strictly smaller rewrites of an expression: the literal 1, each direct
/// child, and each single-position rewrite of a child.
fn variants_e(e: &E) -> Vec<E> {
    let mut out = Vec::new();
    if !matches!(e, E::Lit(_) | E::Acc | E::Loc(_)) {
        out.push(E::Lit(1));
    }
    // Hoist children.
    match e {
        E::VecRef(_, i) => out.push((**i).clone()),
        E::Neg(a) => out.push((**a).clone()),
        E::Bin(_, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        E::IfE(_, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        E::Call(_, args) | E::Funcall(_, args) | E::SelfCall(args) => {
            out.extend(args.iter().cloned());
        }
        _ => {}
    }
    // Recurse one level: rebuild with each child variant.
    match e {
        E::VecRef(v, i) => {
            for iv in variants_e(i) {
                out.push(E::VecRef(*v, Box::new(iv)));
            }
        }
        E::Neg(a) => {
            for av in variants_e(a) {
                out.push(E::Neg(Box::new(av)));
            }
        }
        E::Bin(op, a, b) => {
            for av in variants_e(a) {
                out.push(E::Bin(*op, Box::new(av), b.clone()));
            }
            for bv in variants_e(b) {
                out.push(E::Bin(*op, a.clone(), Box::new(bv)));
            }
        }
        E::IfE(c, a, b) => {
            for cv in variants_c(c) {
                out.push(E::IfE(Box::new(cv), a.clone(), b.clone()));
            }
            for av in variants_e(a) {
                out.push(E::IfE(c.clone(), Box::new(av), b.clone()));
            }
            for bv in variants_e(b) {
                out.push(E::IfE(c.clone(), a.clone(), Box::new(bv)));
            }
        }
        E::Call(j, args) => rebuild_args(args, |a| E::Call(*j, a), &mut out),
        E::Funcall(j, args) => rebuild_args(args, |a| E::Funcall(*j, a), &mut out),
        E::SelfCall(args) => rebuild_args(args, E::SelfCall, &mut out),
        _ => {}
    }
    out
}

fn rebuild_args(args: &[E], build: impl Fn(Vec<E>) -> E, out: &mut Vec<E>) {
    for (i, a) in args.iter().enumerate() {
        for av in variants_e(a) {
            let mut next = args.to_vec();
            next[i] = av;
            out.push(build(next));
        }
    }
}

fn variants_c(c: &Cond) -> Vec<Cond> {
    match c {
        Cond::Cmp(op, a, b) => {
            let mut out = Vec::new();
            for av in variants_e(a) {
                out.push(Cond::Cmp(*op, Box::new(av), b.clone()));
            }
            for bv in variants_e(b) {
                out.push(Cond::Cmp(*op, a.clone(), Box::new(bv)));
            }
            out
        }
        Cond::HasTail(..) => Vec::new(),
    }
}

fn variants_s(s: &Stmt) -> Vec<Stmt> {
    match s {
        Stmt::AccSet(e) => variants_e(e).into_iter().map(Stmt::AccSet).collect(),
        Stmt::ConsPush(e) => variants_e(e).into_iter().map(Stmt::ConsPush).collect(),
        Stmt::VecSet(v, i, e) => {
            let mut out: Vec<Stmt> = variants_e(i)
                .into_iter()
                .map(|iv| Stmt::VecSet(*v, iv, e.clone()))
                .collect();
            out.extend(
                variants_e(e)
                    .into_iter()
                    .map(|ev| Stmt::VecSet(*v, i.clone(), ev)),
            );
            out
        }
        Stmt::ListSet(l, k, e) => variants_e(e)
            .into_iter()
            .map(|ev| Stmt::ListSet(*l, *k, ev))
            .collect(),
        Stmt::IfS(c, t, f) => {
            let mut out: Vec<Stmt> = variants_c(c)
                .into_iter()
                .map(|cv| Stmt::IfS(cv, t.clone(), f.clone()))
                .collect();
            for i in 0..t.len() {
                for sv in variants_s(&t[i]) {
                    let mut tv = t.clone();
                    tv[i] = sv;
                    out.push(Stmt::IfS(c.clone(), tv, f.clone()));
                }
                let mut tv = t.clone();
                tv.remove(i);
                out.push(Stmt::IfS(c.clone(), tv, f.clone()));
            }
            for i in 0..f.len() {
                let mut fv = f.clone();
                fv.remove(i);
                out.push(Stmt::IfS(c.clone(), t.clone(), fv));
            }
            out
        }
        Stmt::Repeat(slot, count, body) => {
            let mut out = Vec::new();
            if *count > 1 {
                out.push(Stmt::Repeat(*slot, 1, body.clone()));
            }
            for i in 0..body.len() {
                for sv in variants_s(&body[i]) {
                    let mut bv = body.clone();
                    bv[i] = sv;
                    out.push(Stmt::Repeat(*slot, *count, bv));
                }
                let mut bv = body.clone();
                bv.remove(i);
                out.push(Stmt::Repeat(*slot, *count, bv));
            }
            out
        }
        Stmt::ForSpine(slot, spine, body) => {
            let mut out = Vec::new();
            for i in 0..body.len() {
                for sv in variants_s(&body[i]) {
                    let mut bv = body.clone();
                    bv[i] = sv;
                    out.push(Stmt::ForSpine(*slot, *spine, bv));
                }
                let mut bv = body.clone();
                bv.remove(i);
                out.push(Stmt::ForSpine(*slot, *spine, bv));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, BinOp};
    use crate::profile::OpMix;

    /// A cheap structural predicate: "program still contains a multiply".
    fn has_mul(p: &Program) -> bool {
        fn in_e(e: &E) -> bool {
            match e {
                E::Bin(BinOp::Mul, ..) => true,
                E::Bin(_, a, b) => in_e(a) || in_e(b),
                E::VecRef(_, i) => in_e(i),
                E::Neg(a) => in_e(a),
                E::IfE(c, a, b) => in_c(c) || in_e(a) || in_e(b),
                E::Call(_, args) | E::Funcall(_, args) | E::SelfCall(args) => args.iter().any(in_e),
                _ => false,
            }
        }
        fn in_c(c: &Cond) -> bool {
            match c {
                Cond::Cmp(_, a, b) => in_e(a) || in_e(b),
                Cond::HasTail(..) => false,
            }
        }
        fn in_s(s: &Stmt) -> bool {
            match s {
                Stmt::AccSet(e) | Stmt::ConsPush(e) | Stmt::ListSet(_, _, e) => in_e(e),
                Stmt::VecSet(_, i, e) => in_e(i) || in_e(e),
                Stmt::IfS(c, t, f) => in_c(c) || t.iter().any(in_s) || f.iter().any(in_s),
                Stmt::Repeat(_, _, body) | Stmt::ForSpine(_, _, body) => body.iter().any(in_s),
            }
        }
        p.fns
            .iter()
            .any(|f| in_e(&f.body) || f.rec.as_ref().is_some_and(in_e))
            || p.drive.iter().any(in_s)
    }

    #[test]
    fn shrinks_to_a_tiny_witness() {
        // Find a seed whose program contains a multiply, then shrink under
        // the predicate "still contains a multiply": the fixpoint should be
        // nearly nothing but that multiply.
        let seed = (0..50u64)
            .find(|&s| has_mul(&generate(s, &OpMix::arith_heavy())))
            .expect("some arith-heavy seed multiplies");
        let p = generate(seed, &OpMix::arith_heavy());
        let small = shrink(&p, &mut has_mul);
        assert!(has_mul(&small));
        assert!(
            small.size() < p.size(),
            "no progress: {} -> {}",
            p.size(),
            small.size()
        );
        assert!(small.size() <= 6, "not minimal: size {}", small.size());
    }

    #[test]
    fn every_candidate_is_strictly_smaller_or_filtered() {
        let p = generate(5, &OpMix::balanced());
        // candidates() may propose equal-size rewrites (e.g. replacing a Lit
        // child with Lit(1)); shrink() filters those. Here we just confirm
        // the generator produces a healthy pool and nothing larger by much.
        for cand in candidates(&p) {
            assert!(cand.size() <= p.size());
        }
    }
}
