//! The cross-scheme differential oracle.
//!
//! For one program the oracle establishes a single source of truth — the
//! tree-walking reference evaluator, which never touches codegen, tag layout,
//! or the simulator — then compiles and simulates the program under every
//! scheme × checking × hardware configuration and demands:
//!
//! 1. **Result equality**: halt code and printed output match the evaluator.
//! 2. **Census reconciliation**: the simulator's checking-cycle attribution
//!    ([`mipsx::Stats::checking_cycles`]) is consistent with the evaluator's
//!    dynamic op census, category by category — a lower bound from the ops
//!    whose checks are emitted on every hardware level, an upper bound of
//!    [`CYCLES_PER_OP`] cycles per countable op, and an exact-zero rule when
//!    a category has no ops at all (or when checking is off entirely).
//!
//! A fault injected into the reference executor ([`mipsx::Fault`]) models a
//! codegen/simulator bug; [`caught_by_oracle`] reruns the comparison over the
//! faulted execution so tests can prove the oracle actually detects it.

use crate::gen;
use lisp::eval::{eval_source, EvalOptions, EvalOutcome, OpCensus};
use lisp::{CheckingMode, CompiledProgram};
use mipsx::{CheckCat, Executor, Fault, HwConfig, ParallelCheck, RefCpu, Stats};
use tagstudy::Config;
use tagword::{TagScheme, ALL_SCHEMES};

/// Simulator cycle budget per configuration — generated programs finish in
/// well under a million cycles, so this only guards against harness bugs.
pub const SIM_FUEL: u64 = 50_000_000;

/// Upper bound on checking cycles a single censused operation may cost
/// (slowest case: a plain-hardware funcall's symbol + function-cell checks
/// plus `prin-name`'s per-character loop).
pub const CYCLES_PER_OP: u64 = 64;

/// Why a configuration disagreed with the reference evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MismatchKind {
    /// The program failed to compile under this configuration.
    Compile,
    /// The simulator reported a harness-level error (bad program, fuel).
    Sim,
    /// Halt codes differ.
    Halt,
    /// Printed output differs.
    Output,
    /// Checking-cycle attribution is inconsistent with the op census.
    Census,
}

/// A single configuration's disagreement with the reference evaluator.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// What went wrong.
    pub kind: MismatchKind,
    /// The configuration that disagreed, e.g. `high5/Full/hw`.
    pub config: String,
    /// Human-readable specifics (expected vs got).
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {:?}: {}", self.config, self.kind, self.detail)
    }
}

/// The full scheme × checking × hardware matrix the oracle sweeps: every tag
/// scheme under no/full checking on plain hardware, tag-branch hardware, and
/// the maximal (parallel-checked, generic-arithmetic) configuration.
pub fn oracle_configs() -> Vec<Config> {
    let mut out = Vec::new();
    for scheme in ALL_SCHEMES {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            for hw in [
                HwConfig::plain(),
                HwConfig::with_tag_branch(),
                HwConfig::maximal(scheme.tag_bits()),
            ] {
                out.push(Config::new(scheme, checking).with_hw(hw));
            }
        }
    }
    out
}

fn config_label(c: &Config) -> String {
    let hw = if c.hw == HwConfig::plain() {
        "plain"
    } else if c.hw == HwConfig::with_tag_branch() {
        "tagbr"
    } else {
        "maximal"
    };
    format!("{}/{:?}/{hw}", c.scheme, c.checking)
}

/// Evaluate `source` with the reference evaluator under the *narrowest*
/// fixnum range in the sweep (HighTag6's 26 bits), so an overflow that any
/// scheme could hit is flagged rather than silently scheme-dependent.
pub fn reference(source: &str) -> Result<EvalOutcome, lisp::eval::EvalError> {
    eval_source(source, &EvalOptions::for_scheme(TagScheme::HighTag6))
}

/// Check `source` against `expected` under one configuration: result
/// equality always, census reconciliation too. Returns the mismatch if any.
pub fn check_config(source: &str, expected: &EvalOutcome, config: &Config) -> Result<(), Mismatch> {
    let label = config_label(config);
    let compiled = lisp::compile(source, &config.to_options()).map_err(|e| Mismatch {
        kind: MismatchKind::Compile,
        config: label.clone(),
        detail: e.to_string(),
    })?;
    let out = lisp::run(&compiled, SIM_FUEL).map_err(|e| Mismatch {
        kind: MismatchKind::Sim,
        config: label.clone(),
        detail: format!("{e:?}"),
    })?;
    compare(expected, out.halt_code, &out.output, &label)?;
    reconcile(&expected.census, &out.stats, config).map_err(|detail| Mismatch {
        kind: MismatchKind::Census,
        config: label,
        detail,
    })
}

fn compare(
    expected: &EvalOutcome,
    halt_code: i32,
    output: &str,
    label: &str,
) -> Result<(), Mismatch> {
    if halt_code != expected.halt_code {
        return Err(Mismatch {
            kind: MismatchKind::Halt,
            config: label.to_string(),
            detail: format!(
                "evaluator halt {}, simulated {halt_code}",
                expected.halt_code
            ),
        });
    }
    if output != expected.output {
        return Err(Mismatch {
            kind: MismatchKind::Output,
            config: label.to_string(),
            detail: format!(
                "evaluator printed {:?}, simulator {output:?}",
                expected.output
            ),
        });
    }
    Ok(())
}

/// Reconcile the simulator's checking-cycle attribution with the evaluator's
/// dynamic op census for one configuration. Returns a description of the
/// first violated bound.
pub fn reconcile(census: &OpCensus, stats: &Stats, config: &Config) -> Result<(), String> {
    let hw = config.hw;
    let cats = [CheckCat::List, CheckCat::Vector, CheckCat::Arith];

    if config.checking == CheckingMode::None {
        // No checking compiled in: the only checking-attributed cycles can
        // come from float ops (their FPU work is charged as generic
        // arithmetic regardless of mode).
        if census.float_ops == 0 {
            for cat in cats {
                let c = stats.checking_cycles(cat);
                if c != 0 {
                    return Err(format!(
                        "checking off, no float ops, but {c} {cat:?} checking cycles"
                    ));
                }
            }
        }
        return Ok(());
    }

    let parallel_lists = matches!(hw.parallel_check, ParallelCheck::Lists | ParallelCheck::All);
    let parallel_all = matches!(hw.parallel_check, ParallelCheck::All);

    // (category, certain lower-bound ops, all countable ops)
    let rows = [
        (
            CheckCat::List,
            census.list_certain
                + if parallel_lists {
                    0
                } else {
                    census.list_all - census.list_certain
                },
            census.list_all,
        ),
        (
            CheckCat::Vector,
            census.vector_certain
                + if parallel_all {
                    0
                } else {
                    census.vector_all - census.vector_certain
                },
            census.vector_all,
        ),
        (
            CheckCat::Arith,
            census.arith_certain
                + if hw.generic_arith {
                    0
                } else {
                    census.arith_addsub
                },
            census.arith_all + census.float_ops,
        ),
    ];
    for (cat, lo, all) in rows {
        let cycles = stats.checking_cycles(cat);
        if all == 0 && cycles != 0 {
            return Err(format!(
                "census has no {cat:?} ops but {cycles} checking cycles"
            ));
        }
        if cycles < lo {
            return Err(format!(
                "{cat:?}: {cycles} checking cycles below certain-op floor {lo}"
            ));
        }
        let hi = CYCLES_PER_OP * all;
        if cycles > hi {
            return Err(format!(
                "{cat:?}: {cycles} checking cycles exceed {CYCLES_PER_OP}x{all} op ceiling"
            ));
        }
    }
    Ok(())
}

/// Run the whole oracle for one generated program: evaluate the reference
/// once, then sweep every configuration from [`oracle_configs`].
pub fn check_program(p: &gen::Program) -> Result<EvalOutcome, Mismatch> {
    check_rendered(&gen::render(p))
}

/// [`check_program`] for already-rendered (or hand-written) source.
pub fn check_rendered(source: &str) -> Result<EvalOutcome, Mismatch> {
    let expected = reference(source).map_err(|e| Mismatch {
        kind: MismatchKind::Compile,
        config: "reference".into(),
        detail: format!("{e:?}"),
    })?;
    for config in oracle_configs() {
        check_config(source, &expected, &config)?;
    }
    Ok(expected)
}

/// Simulate `compiled` on the reference executor with `fault` injected, to
/// completion, returning `(halt_code, output)`.
pub fn run_faulted(compiled: &CompiledProgram, fault: Fault) -> Result<(i32, String), String> {
    let mut cpu = RefCpu::new(&compiled.program, compiled.hw, compiled.mem_bytes);
    cpu.inject_fault(fault);
    let out = cpu
        .run(SIM_FUEL)
        .map_err(|e| format!("faulted run: {e:?}"))?;
    Ok((out.halt_code, out.output))
}

/// Does the oracle catch `fault` when it corrupts this program's execution
/// under `config`? True when the faulted result disagrees with the reference
/// evaluator (i.e. the differential check would have flagged it).
pub fn caught_by_oracle(p: &gen::Program, config: &Config, fault: Fault) -> bool {
    let source = gen::render(p);
    let Ok(expected) = reference(&source) else {
        return false;
    };
    let Ok(compiled) = lisp::compile(&source, &config.to_options()) else {
        return false;
    };
    match run_faulted(&compiled, fault) {
        Ok((halt, output)) => halt != expected.halt_code || output != expected.output,
        // A fault that wedges or crashes the machine is also "caught".
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OpMix;

    #[test]
    fn config_matrix_is_the_full_sweep() {
        let configs = oracle_configs();
        assert_eq!(configs.len(), 4 * 2 * 3);
        // Labels are unique (so failure reports identify the cell).
        let mut labels: Vec<String> = configs.iter().map(config_label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 24);
    }

    #[test]
    fn a_seeded_program_passes_every_config() {
        let p = gen::generate(11, &OpMix::balanced());
        if let Err(m) = check_program(&p) {
            panic!("seed 11 failed the oracle: {m}\n{}", gen::render(&p));
        }
    }

    #[test]
    fn census_zero_rule_flags_phantom_cycles() {
        // A census with no vector ops must force zero vector checking cycles;
        // fabricate stats via a real run of a vector-free program and check
        // the reconciliation rejects a doctored census.
        let source = "(defun main () (print (plus 1 2))) (main)";
        let expected = reference(source).unwrap();
        assert_eq!(expected.census.vector_all, 0);
        let config = Config::new(TagScheme::HighTag5, CheckingMode::Full);
        let compiled = lisp::compile(source, &config.to_options()).unwrap();
        let out = lisp::run(&compiled, SIM_FUEL).unwrap();
        // Sanity: the honest census reconciles.
        reconcile(&expected.census, &out.stats, &config).unwrap();
        // Claim there were arith ops when there were cycles... the reverse:
        // deny the arith ops that really happened and the floor/zero rules fire.
        let mut doctored = expected.census;
        doctored.arith_all = 0;
        doctored.arith_certain = 0;
        doctored.arith_addsub = 0;
        assert!(reconcile(&doctored, &out.stats, &config).is_err());
    }

    #[test]
    fn faulted_execution_is_caught() {
        // Inverting the first conditional branch derails any program that
        // branches at all; the differential check must notice.
        let p = gen::generate(2, &OpMix::arith_heavy());
        let config = Config::new(TagScheme::HighTag5, CheckingMode::Full);
        assert!(caught_by_oracle(
            &p,
            &config,
            Fault::BranchInvert { nth: 1 }
        ));
    }
}
