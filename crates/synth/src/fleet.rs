//! The continuous differential-fuzzing fleet.
//!
//! [`run_campaign`] streams seeded generated programs ([`crate::gen`]) across
//! the full scheme × checking × hardware × backend matrix and diffs every
//! column against the tree-walking reference evaluator ([`crate::oracle`]).
//! Execution is abstracted behind [`Runner`], so the same engine drives both
//! an in-process sweep ([`LocalRunner`]) and a live `tagstudyd` daemon (the
//! `serve` crate's `DaemonRunner`).
//!
//! Two persistent artifacts (both in [`store::fuzz`]) make campaigns
//! *cumulative*:
//!
//! - every divergence is shrunk ([`crate::shrink`]) and archived as a
//!   content-addressed [`Witness`] that replays deterministically
//!   ([`replay_witness`]);
//! - a [`CoverageLedger`] counts completed runs per `(op-mix cell | column)`
//!   coverage cell and is persisted after *every* program, so a killed
//!   campaign resumes exactly where it stopped: already-covered columns are
//!   skipped (and counted, so tests can prove the skipping happened) and
//!   seeds are steered at the least-covered cells first.
//!
//! Injecting a [`Fault`] into the reference executor turns the fleet into its
//! own acceptance test: the campaign must catch the planted bug and archive a
//! small witness for it.

use crate::gen::{self, Program};
use crate::oracle::{self, MismatchKind, SIM_FUEL};
use crate::profile::OpMix;
use crate::shrink;
use lisp::eval::EvalOutcome;
use lisp::CheckingMode;
use mipsx::{Backend, Executor as _, Fault, HwConfig, RefCpu, Stats};
use store::fuzz::{CoverageLedger, FuzzStore, Witness};
use tagstudy::trace::{SpanId, SpanRecord, TraceContext, Tracer};
use tagstudy::Config;

/// Seed offset between adjacent coverage cells, so each cell draws from its
/// own effectively-disjoint seed range (a cell never consumes more than
/// `per_cell` seeds).
const SEED_STRIDE: u64 = 1_000_003;

/// Cap on archived divergence details, so one pathological output diff can't
/// bloat a witness record.
const MAX_DETAIL: usize = 2000;

// ---------------------------------------------------------------------------
// The matrix
// ---------------------------------------------------------------------------

/// One column of the differential matrix: a full oracle configuration with an
/// execution backend applied, plus its human-readable coordinates.
#[derive(Debug, Clone)]
pub struct Column {
    /// The configuration (backend applied via [`Config::with_backend`]).
    pub config: Config,
    /// Tag scheme name, e.g. `high5`.
    pub scheme: String,
    /// Checking mode: `none` or `full`.
    pub checking: String,
    /// Hardware level: `plain`, `tagbr`, or `maximal`.
    pub hw: String,
    /// Simulator backend: `classic`, `fast`, or `ref`.
    pub backend: String,
}

impl Column {
    /// Build a column from an oracle configuration and a backend.
    pub fn from_config(config: Config, backend: Backend) -> Column {
        let hw = if config.hw == HwConfig::plain() {
            "plain"
        } else if config.hw == HwConfig::with_tag_branch() {
            "tagbr"
        } else {
            "maximal"
        };
        Column {
            config: config.with_backend(backend),
            scheme: config.scheme.to_string(),
            checking: match config.checking {
                CheckingMode::None => "none".to_string(),
                CheckingMode::Full => "full".to_string(),
            },
            hw: hw.to_string(),
            backend: backend.name().to_string(),
        }
    }

    /// The column's coordinate label, e.g. `high5:full:maximal:classic`.
    pub fn label(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.scheme, self.checking, self.hw, self.backend
        )
    }
}

/// The full differential matrix: every oracle configuration
/// ([`oracle::oracle_configs`], 24 of them) crossed with `backends`.
pub fn matrix_columns(backends: &[Backend]) -> Vec<Column> {
    let mut out = Vec::new();
    for config in oracle::oracle_configs() {
        for backend in backends {
            out.push(Column::from_config(config, *backend));
        }
    }
    out
}

/// One op-mix coverage cell: a named point on an axis sweep from a heavy
/// preset toward the balanced mix.
#[derive(Debug, Clone)]
pub struct MixCell {
    /// Cell name, e.g. `list@2` (profile `list`, axis step 2).
    pub name: String,
    /// The interpolated op-mix programs in this cell are drawn from.
    pub mix: OpMix,
}

/// The op-mix axis sweep: three heavy profiles (`list`, `vector`, `arith`),
/// each interpolated toward [`OpMix::balanced`] over `axis_points` steps
/// (step 0 is the pure profile; the balanced endpoint itself is excluded —
/// every profile converges there, so it would triple-count one cell).
pub fn mix_cells(axis_points: u32) -> Vec<MixCell> {
    let axis_points = axis_points.max(1);
    let profiles = [
        ("list", OpMix::list_heavy()),
        ("vector", OpMix::vector_heavy()),
        ("arith", OpMix::arith_heavy()),
    ];
    let mut out = Vec::new();
    for (name, profile) in profiles {
        for step in 0..axis_points {
            let t = f64::from(step) / f64::from(axis_points);
            out.push(MixCell {
                name: format!("{name}@{step}"),
                mix: OpMix::lerp(&profile, &OpMix::balanced(), t),
            });
        }
    }
    out
}

/// The coverage-ledger key of one `(cell, column)` coverage cell.
pub fn ledger_key(cell: &str, column_label: &str) -> String {
    format!("{cell}|{column_label}")
}

// ---------------------------------------------------------------------------
// Fault spelling (CLI + witness records)
// ---------------------------------------------------------------------------

/// Render a fault in its CLI/witness spelling, e.g. `branch-invert:1`.
pub fn fault_to_string(fault: &Fault) -> String {
    match fault {
        Fault::AddOffByOne { nth } => format!("add-off-by-one:{nth}"),
        Fault::BranchInvert { nth } => format!("branch-invert:{nth}"),
    }
}

/// Parse the CLI/witness fault spelling produced by [`fault_to_string`].
///
/// # Errors
///
/// An unknown fault name or a malformed occurrence count.
pub fn fault_from_string(text: &str) -> Result<Fault, String> {
    let (name, nth) = text
        .split_once(':')
        .ok_or_else(|| format!("fault {text:?}: want name:N, e.g. branch-invert:1"))?;
    let nth: u64 = nth
        .parse()
        .map_err(|_| format!("fault {text:?}: bad occurrence count {nth:?}"))?;
    match name {
        "add-off-by-one" => Ok(Fault::AddOffByOne { nth }),
        "branch-invert" => Ok(Fault::BranchInvert { nth }),
        other => Err(format!(
            "unknown fault {other:?} (known: add-off-by-one, branch-invert)"
        )),
    }
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

/// What one column's execution produced — the facts the oracle diffs.
#[derive(Debug, Clone)]
pub struct ColumnOutcome {
    /// Simulated halt code.
    pub halt_code: i32,
    /// Everything the simulated run printed.
    pub output: String,
    /// Execution statistics (checking-cycle attribution feeds the census
    /// reconciliation).
    pub stats: Stats,
}

/// Why a column failed to produce an outcome at all.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The program did not compile under the column's configuration.
    Compile(String),
    /// The simulator (or the daemon standing in for it) failed.
    Sim(String),
}

/// Executes one program across a set of matrix columns. The returned vector
/// must have one entry per requested column, in order.
pub trait Runner {
    /// Run `source` under every column in `columns`.
    fn run(&mut self, source: &str, columns: &[Column]) -> Vec<Result<ColumnOutcome, RunError>>;
}

/// The in-process runner: compiles and simulates every column directly,
/// optionally with a fault injected into the reference executor (the fleet's
/// self-test mode).
#[derive(Debug, Default)]
pub struct LocalRunner {
    /// Fault injected into every execution, if any.
    pub fault: Option<Fault>,
    /// When set, every executed column records a `fleet.column` span under
    /// this context — the in-process mirror of the daemon's fuzz spans.
    pub trace: Option<(Tracer, TraceContext)>,
}

impl Runner for LocalRunner {
    fn run(&mut self, source: &str, columns: &[Column]) -> Vec<Result<ColumnOutcome, RunError>> {
        columns
            .iter()
            .map(|column| {
                let started = std::time::Instant::now();
                let outcome = run_local_column(source, column, self.fault);
                if let Some((tracer, ctx)) = &self.trace {
                    tracer.record(SpanRecord {
                        trace: ctx.trace,
                        id: SpanId::generate(),
                        parent: Some(ctx.parent),
                        name: "fleet.column".to_string(),
                        component: "fleet".to_string(),
                        start_us: tracer.at_us(started),
                        dur_us: started.elapsed().as_micros() as u64,
                        labels: vec![
                            ("column".to_string(), column.label()),
                            ("ok".to_string(), outcome.is_ok().to_string()),
                        ],
                    });
                }
                outcome
            })
            .collect()
    }
}

/// Compile and execute `source` under one column, locally. With a fault the
/// run goes through [`RefCpu`] (the only executor with fault injection);
/// otherwise through the column's own backend.
fn run_local_column(
    source: &str,
    column: &Column,
    fault: Option<Fault>,
) -> Result<ColumnOutcome, RunError> {
    let compiled = lisp::compile(source, &column.config.to_options())
        .map_err(|e| RunError::Compile(e.to_string()))?;
    let out = match fault {
        Some(fault) => {
            let mut cpu = RefCpu::new(&compiled.program, compiled.hw, compiled.mem_bytes);
            cpu.inject_fault(fault);
            cpu.run(SIM_FUEL)
                .map_err(|e| RunError::Sim(format!("faulted run: {e:?}")))?
        }
        None => lisp::run_with(&compiled, column.config.backend, SIM_FUEL)
            .map_err(|e| RunError::Sim(format!("{e:?}")))?,
    };
    Ok(ColumnOutcome {
        halt_code: out.halt_code,
        output: out.output,
        stats: out.stats,
    })
}

/// Diff one column outcome against the reference evaluator: halt code,
/// printed output, then census reconciliation.
pub fn diff_outcome(
    expected: &EvalOutcome,
    got: &ColumnOutcome,
    config: &Config,
) -> Option<(MismatchKind, String)> {
    if got.halt_code != expected.halt_code {
        return Some((
            MismatchKind::Halt,
            format!(
                "evaluator halt {}, simulated {}",
                expected.halt_code, got.halt_code
            ),
        ));
    }
    if got.output != expected.output {
        return Some((
            MismatchKind::Output,
            format!(
                "evaluator printed {:?}, simulator {:?}",
                expected.output, got.output
            ),
        ));
    }
    if let Err(detail) = oracle::reconcile(&expected.census, &got.stats, config) {
        return Some((MismatchKind::Census, detail));
    }
    None
}

/// Does `source` diverge from the reference evaluator under `column` (with
/// `fault` injected, executed locally)? The shrinker's predicate, and the
/// witness replayer's core.
pub fn column_diverges(
    source: &str,
    column: &Column,
    fault: Option<Fault>,
) -> Option<(MismatchKind, String)> {
    let expected = match oracle::reference(source) {
        Ok(e) => e,
        Err(e) => return Some((MismatchKind::Compile, format!("reference: {e:?}"))),
    };
    let got = match run_local_column(source, column, fault) {
        Ok(got) => got,
        Err(RunError::Compile(d)) => return Some((MismatchKind::Compile, d)),
        Err(RunError::Sim(d)) => return Some((MismatchKind::Sim, d)),
    };
    diff_outcome(&expected, &got, &column.config)
}

/// Re-execute an archived witness locally and report whether it still
/// diverges (the corpus's regression check: a fixed bug flips its witnesses
/// to `false`).
///
/// # Errors
///
/// A witness carrying an unknown backend or fault spelling (i.e. written by
/// a future format).
pub fn replay_witness(witness: &Witness) -> Result<bool, String> {
    let config = witness.config_with_backend()?;
    let column = Column::from_config(config, config.backend);
    let fault = witness
        .fault
        .as_deref()
        .map(fault_from_string)
        .transpose()?;
    Ok(column_diverges(&witness.source, &column, fault).is_some())
}

// ---------------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------------

/// Parameters of one fuzzing campaign. Everything that shapes the coverage
/// space is part of the campaign identity ([`CampaignSpec::campaign_id`]), so
/// a resumed campaign can detect a ledger written under different rules.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Base of the deterministic seed schedule.
    pub seed_base: u64,
    /// Axis-sweep steps per op-mix profile (see [`mix_cells`]).
    pub axis_points: u32,
    /// Programs required to saturate each coverage cell.
    pub per_cell: u64,
    /// Backends crossed with the 24 oracle configurations.
    pub backends: Vec<Backend>,
    /// Stop after this many programs even if coverage is incomplete (the
    /// kill-mid-campaign half of the resume test).
    pub max_programs: Option<u64>,
    /// Fault injected into every execution — the fleet's self-test mode.
    /// Fault campaigns never persist the ledger (their counts describe a
    /// deliberately broken machine).
    pub fault: Option<Fault>,
    /// Stop as soon as the first witness is archived.
    pub stop_on_witness: bool,
}

impl CampaignSpec {
    /// The full acceptance campaign: 12 op-mix cells × 45 programs = 540
    /// programs, each through 24 configurations × the classic and fast
    /// backends.
    pub fn full() -> CampaignSpec {
        CampaignSpec {
            seed_base: 0x5EED_F1EE,
            axis_points: 4,
            per_cell: 45,
            backends: vec![Backend::Classic, Backend::Fast],
            max_programs: None,
            fault: None,
            stop_on_witness: false,
        }
    }

    /// The CI smoke campaign: 3 cells × 2 programs, same matrix.
    pub fn smoke() -> CampaignSpec {
        CampaignSpec {
            axis_points: 1,
            per_cell: 2,
            ..CampaignSpec::full()
        }
    }

    /// The identity string persisted in the coverage ledger.
    pub fn campaign_id(&self) -> String {
        let backends: Vec<&str> = self.backends.iter().map(|b| b.name()).collect();
        format!(
            "fuzz/v1 seed={} axis={} per-cell={} backends={}",
            self.seed_base,
            self.axis_points,
            self.per_cell,
            backends.join("+")
        )
    }
}

/// A running campaign's counters, handed to the progress callback after every
/// program (the daemon driver forwards them to `/metrics`).
#[derive(Debug, Clone)]
pub struct Progress<'a> {
    /// The coverage cell the program was steered at.
    pub cell: &'a str,
    /// Programs completed so far (this run, not counting resumed coverage).
    pub programs: u64,
    /// Columns executed so far.
    pub columns_run: u64,
    /// Columns skipped because a previous (resumed) run already covered them.
    pub columns_skipped: u64,
    /// Divergences found so far.
    pub divergences: u64,
    /// Witnesses archived so far.
    pub witnesses: u64,
    /// Ledger saturation, in percent.
    pub coverage_percent: f64,
}

/// The campaign's final accounting.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign identity ([`CampaignSpec::campaign_id`]).
    pub campaign: String,
    /// Programs generated and executed by this run.
    pub programs: u64,
    /// Columns executed by this run.
    pub columns_run: u64,
    /// Columns skipped because the resumed ledger already covered them.
    pub columns_skipped: u64,
    /// Sum of ledger counts inherited from a previous run (zero when fresh).
    pub resumed_from: u64,
    /// Divergences found by this run.
    pub divergences: u64,
    /// Keys of the witnesses archived by this run.
    pub witnesses: Vec<String>,
    /// Final ledger saturation, in percent.
    pub coverage_percent: f64,
    /// Whether every coverage cell reached the per-cell target.
    pub complete: bool,
}

/// Run (or resume) a campaign: steer seeds at the least-covered coverage
/// cell, fan each program across the matrix via `runner`, diff every column
/// against the reference evaluator, shrink and archive divergences, and
/// persist the ledger after every program.
///
/// # Errors
///
/// Harness-level failures only (a reference-evaluator rejection — a generator
/// bug — a ledger belonging to a different campaign, a runner arity bug, or
/// store I/O). Divergences are *results*, reported in the
/// [`CampaignReport`], not errors.
pub fn run_campaign(
    spec: &CampaignSpec,
    store: &FuzzStore,
    runner: &mut dyn Runner,
    resume: bool,
    progress: &mut dyn FnMut(&Progress<'_>),
) -> Result<CampaignReport, String> {
    if spec.backends.is_empty() {
        return Err("campaign has no backends".to_string());
    }
    let columns = matrix_columns(&spec.backends);
    let cells = mix_cells(spec.axis_points);
    let campaign = spec.campaign_id();
    let persist = spec.fault.is_none();

    let mut ledger = if !persist {
        CoverageLedger::new(&campaign, spec.per_cell)
    } else if resume {
        match store.load_ledger() {
            Some(l) if l.campaign() == campaign => l,
            Some(l) => {
                return Err(format!(
                    "ledger belongs to campaign {:?}, not {campaign:?}; \
                     rerun without --resume to start fresh",
                    l.campaign()
                ))
            }
            None => CoverageLedger::new(&campaign, spec.per_cell),
        }
    } else {
        store.reset_ledger();
        CoverageLedger::new(&campaign, spec.per_cell)
    };
    for cell in &cells {
        for column in &columns {
            ledger.register(&ledger_key(&cell.name, &column.label()));
        }
    }
    if persist {
        // The full (all-zeros) cell space hits the disk before any work does,
        // so even a campaign killed inside its first program leaves books.
        store
            .store_ledger(&ledger)
            .map_err(|e| format!("persisting ledger: {e}"))?;
    }

    let mut report = CampaignReport {
        campaign,
        programs: 0,
        columns_run: 0,
        columns_skipped: 0,
        resumed_from: ledger.cells().map(|(_, count)| count).sum(),
        divergences: 0,
        witnesses: Vec::new(),
        coverage_percent: ledger.coverage_percent(),
        complete: false,
    };

    loop {
        // Steer at the globally least-covered cell: the one whose minimum
        // column count is smallest (and below the target).
        let mut pick: Option<(usize, u64)> = None;
        for (ci, cell) in cells.iter().enumerate() {
            let min = columns
                .iter()
                .map(|column| ledger.count(&ledger_key(&cell.name, &column.label())))
                .min()
                .unwrap_or(u64::MAX);
            if min < spec.per_cell && pick.is_none_or(|(_, best)| min < best) {
                pick = Some((ci, min));
            }
        }
        let Some((ci, k)) = pick else {
            break; // every cell saturated
        };
        if spec.max_programs.is_some_and(|max| report.programs >= max) {
            break;
        }

        let cell = &cells[ci];
        // Deterministic seed schedule: the k-th program of a cell is the same
        // in every run, resumed or not.
        let seed = spec.seed_base + ci as u64 * SEED_STRIDE + k;
        let program = gen::generate(seed, &cell.mix);
        let source = gen::render(&program);
        let expected = oracle::reference(&source)
            .map_err(|e| format!("seed {seed}: reference evaluation failed (generator bug): {e:?}"))?;

        // Columns a previous run already carried past k are skipped — the
        // observable proof that resuming does not repeat covered work.
        let todo: Vec<Column> = columns
            .iter()
            .filter(|column| ledger.count(&ledger_key(&cell.name, &column.label())) == k)
            .cloned()
            .collect();
        report.columns_skipped += (columns.len() - todo.len()) as u64;

        let results = runner.run(&source, &todo);
        if results.len() != todo.len() {
            return Err(format!(
                "runner returned {} results for {} columns",
                results.len(),
                todo.len()
            ));
        }

        for (column, result) in todo.iter().zip(results) {
            // One witness is the proof a stop-on-witness campaign exists to
            // produce (a planted fault derails *every* column — archiving 48
            // near-identical witnesses would bury it); stop mid-program.
            if spec.stop_on_witness && !report.witnesses.is_empty() {
                break;
            }
            let divergence = match result {
                Err(RunError::Compile(d)) => Some((MismatchKind::Compile, d)),
                Err(RunError::Sim(d)) => Some((MismatchKind::Sim, d)),
                Ok(got) => diff_outcome(&expected, &got, &column.config),
            };
            if let Some((kind, detail)) = divergence {
                report.divergences += 1;
                let key = archive_divergence(
                    spec, store, cell, column, seed, &program, kind, detail,
                )?;
                report.witnesses.push(key);
            }
            ledger.bump(&ledger_key(&cell.name, &column.label()));
            report.columns_run += 1;
            if persist {
                // Persist per column, not per program: a campaign killed
                // mid-program resumes with exactly the unfinished columns,
                // and the resume test can count the skipped ones.
                store
                    .store_ledger(&ledger)
                    .map_err(|e| format!("persisting ledger: {e}"))?;
            }
        }

        report.programs += 1;
        report.coverage_percent = ledger.coverage_percent();
        progress(&Progress {
            cell: &cell.name,
            programs: report.programs,
            columns_run: report.columns_run,
            columns_skipped: report.columns_skipped,
            divergences: report.divergences,
            witnesses: report.witnesses.len() as u64,
            coverage_percent: report.coverage_percent,
        });
        if spec.stop_on_witness && !report.witnesses.is_empty() {
            break;
        }
    }

    report.complete = ledger.complete();
    Ok(report)
}

/// Shrink one diverging program (re-checking the divergence locally) and
/// archive the result as a witness. Returns the witness key.
#[allow(clippy::too_many_arguments)]
fn archive_divergence(
    spec: &CampaignSpec,
    store: &FuzzStore,
    cell: &MixCell,
    column: &Column,
    seed: u64,
    program: &Program,
    kind: MismatchKind,
    detail: String,
) -> Result<String, String> {
    let mut still_failing =
        |q: &Program| column_diverges(&gen::render(q), column, spec.fault).is_some();
    // A divergence the local re-run can't reproduce (e.g. a daemon-side
    // fault) is archived unshrunk — a witness with caveats beats none.
    let small = if still_failing(program) {
        shrink::shrink(program, &mut still_failing)
    } else {
        program.clone()
    };
    let source = gen::render(&small);
    let (kind, mut detail) =
        column_diverges(&source, column, spec.fault).unwrap_or((kind, detail));

    // In fault mode the conformance harness can pin the divergence to the
    // exact retired instruction — record that alongside the oracle's view.
    if let Some(fault) = spec.fault {
        if let Ok(compiled) = lisp::compile(&source, &column.config.to_options()) {
            if let Err(e) = conformance::check_compiled(
                column.config.backend,
                &compiled,
                SIM_FUEL,
                Some(fault),
            ) {
                detail.push_str("; lockstep: ");
                detail.push_str(&e.to_string());
            }
        }
    }
    if detail.len() > MAX_DETAIL {
        let mut end = MAX_DETAIL;
        while !detail.is_char_boundary(end) {
            end -= 1;
        }
        detail.truncate(end);
        detail.push('…');
    }

    let witness = Witness {
        seed,
        mix: cell.mix.to_string(),
        cell: cell.name.clone(),
        column: column.label(),
        config: column.config,
        backend: column.backend.clone(),
        fault: spec.fault.map(|f| fault_to_string(&f)),
        kind: format!("{kind:?}"),
        detail,
        source,
        forms: small.size() as u64,
    };
    let key = store
        .put_witness(&witness)
        .map_err(|e| format!("archiving witness: {e}"))?;
    Ok(key.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_configs_times_backends() {
        let columns = matrix_columns(&[Backend::Classic, Backend::Fast]);
        assert_eq!(columns.len(), 24 * 2);
        let mut labels: Vec<String> = columns.iter().map(Column::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 48, "labels identify columns uniquely");
        assert!(labels.iter().any(|l| l == "high5:full:maximal:classic"));
    }

    #[test]
    fn mix_cells_sweep_the_axes() {
        let cells = mix_cells(4);
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].name, "list@0");
        // Step 0 is the pure preset.
        assert_eq!(cells[0].mix, OpMix::list_heavy());
        // Later steps move toward balanced but never reach it.
        assert_ne!(cells[3].mix, OpMix::balanced());
        // Degenerate axis still yields the three pure profiles.
        assert_eq!(mix_cells(0).len(), 3);
    }

    #[test]
    fn fault_spelling_round_trips() {
        for fault in [
            Fault::AddOffByOne { nth: 3 },
            Fault::BranchInvert { nth: 1 },
        ] {
            let spelled = fault_to_string(&fault);
            assert_eq!(fault_from_string(&spelled), Ok(fault));
        }
        assert!(fault_from_string("branch-invert").is_err());
        assert!(fault_from_string("rowhammer:1").is_err());
        assert!(fault_from_string("branch-invert:x").is_err());
    }
}
