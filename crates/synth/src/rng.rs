//! A self-contained PCG32 generator.
//!
//! Workload generation must be reproducible from a single `u64` seed across
//! machines and Rust versions, so the generator carries its own PRNG instead
//! of anything from `std` (whose `RandomState` is deliberately unseedable) or
//! an external crate. PCG32 (O'Neill 2014, `PCG-XSH-RR 64/32`) is small,
//! fast, and statistically solid far beyond what program generation needs.

/// A PCG-XSH-RR 64/32 stream.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const MULTIPLIER: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seed a stream. Different `stream` values give statistically
    /// independent sequences for the same `seed`.
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// The next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u32) -> u32 {
        // Lemire's widening-multiply rejection method: unbiased without
        // division in the common case.
        debug_assert!(n > 0);
        let mut x = self.next_u32();
        let mut m = (x as u64) * (n as u64);
        let mut lo = m as u32;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u32();
                m = (x as u64) * (n as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform in `[lo, hi]` (inclusive). `lo <= hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        debug_assert!(lo <= hi);
        let span = (hi as i64 - lo as i64 + 1) as u32;
        lo.wrapping_add(self.below(span) as i32)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u32() as f64) < p * (u32::MAX as f64 + 1.0)
    }

    /// Pick an index by nonnegative weights. At least one weight must be
    /// positive.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut point = (self.next_u32() as f64 / (u32::MAX as f64 + 1.0)) * total;
        for (i, w) in weights.iter().enumerate() {
            point -= w;
            if point < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_stream() {
        let a: Vec<u32> = {
            let mut r = Pcg32::new(42, 1);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg32::new(42, 1);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = Pcg32::new(42, 2);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c, "streams differ");
        let d: Vec<u32> = {
            let mut r = Pcg32::new(43, 1);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, d, "seeds differ");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg32::new(7, 0);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn range_endpoints_inclusive() {
        let mut r = Pcg32::new(1, 0);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range_i32(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Pcg32::new(9, 0);
        for _ in 0..200 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }
}
