//! The differential-oracle acceptance suite.
//!
//! Two hundred fixed-seed generated programs — fifty per op-mix preset — must
//! agree with the reference evaluator under every scheme × checking × hardware
//! configuration, with checking-cycle attribution reconciling against the
//! evaluator's op census. A deliberately injected executor fault must be
//! caught by the same comparison and then shrink to a few-form witness.

use std::sync::atomic::{AtomicUsize, Ordering};

use lisp::CheckingMode;
use mipsx::{Backend, Fault};
use synth::{generate, render, shrink, OpMix};
use tagstudy::Config;
use tagword::TagScheme;

/// Seeds per mix preset; 4 presets × 50 = 200 programs through the full
/// 24-configuration matrix.
const SEEDS_PER_MIX: u64 = 50;

fn mixes() -> [(&'static str, OpMix); 4] {
    [
        ("list", OpMix::list_heavy()),
        ("vector", OpMix::vector_heavy()),
        ("arith", OpMix::arith_heavy()),
        ("balanced", OpMix::balanced()),
    ]
}

#[test]
fn two_hundred_seeded_programs_pass_the_full_matrix() {
    // Work items: (mix name, mix, seed).
    let work: Vec<(&'static str, OpMix, u64)> = mixes()
        .into_iter()
        .flat_map(|(name, mix)| (0..SEEDS_PER_MIX).map(move |seed| (name, mix, seed)))
        .collect();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let next = AtomicUsize::new(0);
    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((name, mix, seed)) = work.get(i) else {
                            break;
                        };
                        let p = generate(*seed, mix);
                        if let Err(m) = synth::check_program(&p) {
                            local.push(format!("{name} seed {seed}: {m}"));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert!(
        failures.is_empty(),
        "{} of {} programs failed the oracle:\n{}",
        failures.len(),
        work.len(),
        failures.join("\n")
    );
}

#[test]
fn injected_fault_is_caught_and_shrinks_to_a_small_witness() {
    // Inverting the first conditional branch models a codegen/simulator bug
    // that derails control flow. The oracle must notice, and the shrinker
    // must cut the witness down to a handful of forms while the fault stays
    // caught.
    let config = Config::new(TagScheme::HighTag5, CheckingMode::Full);
    let fault = Fault::BranchInvert { nth: 1 };
    let p = generate(3, &OpMix::balanced());
    let mut caught = |q: &synth::Program| synth::oracle::caught_by_oracle(q, &config, fault);
    assert!(caught(&p), "fault was not caught on the original program");

    let small = shrink(&p, &mut caught);
    assert!(caught(&small), "shrinking lost the failure");
    assert!(
        small.size() <= 20,
        "counterexample did not shrink below 20 forms: size {}\n{}",
        small.size(),
        render(&small)
    );
    // The witness is still a complete, renderable program.
    let source = render(&small);
    assert!(source.contains("(defun drive"));
}

#[test]
fn generated_programs_feed_the_conformance_harness() {
    // The retired-instruction trace layer accepts generated programs like any
    // other compiled workload: clean runs conform, and the same injected
    // fault the oracle catches also shows up as a lockstep divergence.
    let config = Config::new(TagScheme::HighTag5, CheckingMode::Full);
    let source = render(&generate(17, &OpMix::balanced()));
    let compiled = lisp::compile(&source, &config.to_options()).expect("compile");
    let report =
        conformance::check_compiled(Backend::Classic, &compiled, synth::oracle::SIM_FUEL, None)
            .expect("clean run must conform");
    assert!(report.retired > 0);

    let fault = Some(Fault::BranchInvert { nth: 1 });
    match conformance::check_compiled(Backend::Fast, &compiled, synth::oracle::SIM_FUEL, fault) {
        Err(conformance::CheckError::Diverged(_)) => {}
        other => panic!("faulted reference must diverge, got {other:?}"),
    }
}

#[test]
fn rendering_is_stable_across_presets() {
    // The acceptance suite pins (seed, mix) → source; a silent generator
    // change would quietly re-tune the whole matrix. Hash the first program
    // of each preset so such a change is a visible, deliberate diff.
    for (name, mix) in mixes() {
        let source = render(&generate(0, &mix));
        assert!(
            source.contains("(defun drive"),
            "{name}: drive missing\n{source}"
        );
        // Every program ends by observing acc and the scratch head.
        assert!(source.contains("(print acc)"), "{name}: no acc print");
    }
}
