//! Fleet campaign integration: a clean local campaign saturates its coverage
//! ledger with zero divergences, a killed campaign resumes without repeating
//! covered columns, and a fault-injected campaign archives a small witness
//! that replays from the store.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mipsx::{Backend, Fault};
use store::fuzz::FuzzStore;
use synth::fleet::{
    ledger_key, matrix_columns, mix_cells, replay_witness, run_campaign, CampaignSpec, LocalRunner,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tagstudy-fleet-test-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A single-backend, one-program-per-cell campaign — small enough for debug
/// builds, still the full 24-configuration oracle matrix.
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        axis_points: 1,
        per_cell: 1,
        backends: vec![Backend::Fast],
        ..CampaignSpec::smoke()
    }
}

#[test]
fn clean_campaign_saturates_with_zero_divergences() {
    let scratch = Scratch::new("clean");
    let store = FuzzStore::open(&scratch.0).unwrap();
    let spec = tiny_spec();
    let mut progress_calls = 0u64;

    let report = run_campaign(
        &spec,
        &store,
        &mut LocalRunner::default(),
        false,
        &mut |p| {
            progress_calls += 1;
            assert!(p.coverage_percent <= 100.0);
        },
    )
    .expect("campaign runs");

    // 3 pure-profile cells × 24 configs × 1 backend, one program each.
    assert_eq!(report.programs, 3);
    assert_eq!(report.columns_run, 72);
    assert_eq!(report.columns_skipped, 0);
    assert_eq!(report.resumed_from, 0);
    assert_eq!(report.divergences, 0, "witnesses: {:?}", report.witnesses);
    assert!(report.witnesses.is_empty());
    assert_eq!(report.coverage_percent, 100.0);
    assert!(report.complete);
    assert_eq!(progress_calls, report.programs);
    assert_eq!(store.witness_count(), 0);

    // The persisted ledger agrees with the report.
    let ledger = store.load_ledger().expect("ledger persisted");
    assert_eq!(ledger.campaign(), report.campaign);
    assert!(ledger.complete());
}

#[test]
fn resumed_campaign_skips_covered_columns() {
    let scratch = Scratch::new("resume");
    let store = FuzzStore::open(&scratch.0).unwrap();
    let spec = tiny_spec();

    // Part 1: stop after one program — one cell fully covered, two untouched.
    let part1 = run_campaign(
        &CampaignSpec {
            max_programs: Some(1),
            ..spec.clone()
        },
        &store,
        &mut LocalRunner::default(),
        false,
        &mut |_| {},
    )
    .unwrap();
    assert_eq!(part1.programs, 1);
    assert_eq!(part1.columns_run, 24);
    assert!(!part1.complete);

    // Simulate a kill *mid-program*: hand-advance five columns of the next
    // cell, as the per-column ledger persistence would have left them.
    let columns = matrix_columns(&spec.backends);
    let next_cell = &mix_cells(spec.axis_points)[1].name;
    let mut ledger = store.load_ledger().unwrap();
    for column in &columns[..5] {
        ledger.bump(&ledger_key(next_cell, &column.label()));
    }
    store.store_ledger(&ledger).unwrap();

    // Part 2: resume finishes the books without repeating covered work.
    let part2 = run_campaign(&spec, &store, &mut LocalRunner::default(), true, &mut |_| {})
        .unwrap();
    assert_eq!(part2.resumed_from, 24 + 5, "inherited coverage is visible");
    assert_eq!(part2.columns_skipped, 5, "covered columns are not re-run");
    assert_eq!(part2.columns_run, 72 - 24 - 5);
    assert_eq!(part2.programs, 2, "only the two uncovered cells run");
    assert_eq!(part2.divergences, 0);
    assert_eq!(part2.coverage_percent, 100.0);
    assert!(part2.complete);

    // Grand total: every column of every cell exactly once.
    assert_eq!(part1.columns_run + part2.columns_skipped + part2.columns_run, 72);

    // A ledger from a different campaign is refused, not silently mixed.
    let other = CampaignSpec {
        seed_base: spec.seed_base + 1,
        ..spec.clone()
    };
    let err = run_campaign(&other, &store, &mut LocalRunner::default(), true, &mut |_| {})
        .unwrap_err();
    assert!(err.contains("belongs to campaign"), "{err}");
}

#[test]
fn fault_campaign_archives_a_small_replayable_witness() {
    let scratch = Scratch::new("fault");
    let store = FuzzStore::open(&scratch.0).unwrap();
    let fault = Fault::BranchInvert { nth: 1 };
    let spec = CampaignSpec {
        fault: Some(fault),
        stop_on_witness: true,
        ..tiny_spec()
    };

    let report = run_campaign(
        &spec,
        &store,
        &mut LocalRunner {
            fault: Some(fault),
            trace: None,
        },
        false,
        &mut |_| {},
    )
    .expect("fault campaign runs");

    assert!(report.divergences > 0, "planted fault must be caught");
    assert!(!report.witnesses.is_empty());
    // Fault campaigns never write books: their counts describe a broken machine.
    assert!(store.load_ledger().is_none());

    // The archived witness is small, self-describing, and replays.
    let witnesses = store.load_witnesses();
    assert!(!witnesses.is_empty());
    let (key, w) = &witnesses[0];
    assert!(report.witnesses.contains(&key.to_string()));
    assert!(w.forms <= 20, "witness did not shrink: {} forms\n{}", w.forms, w.source);
    assert_eq!(w.fault.as_deref(), Some("branch-invert:1"));
    assert!(w.source.contains("(defun drive"));
    assert!(
        replay_witness(w).expect("witness replays"),
        "replayed witness no longer diverges:\n{}",
        w.source
    );
}
