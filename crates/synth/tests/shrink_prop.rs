//! Shrinker properties, checked over seeded programs with injected executor
//! faults: shrinking preserves the failure, never grows the program, and is
//! idempotent (a shrunk program is a fixpoint).

use std::sync::atomic::{AtomicUsize, Ordering};

use lisp::CheckingMode;
use mipsx::Fault;
use synth::oracle::caught_by_oracle;
use synth::{generate, shrink, OpMix, Program};
use tagstudy::Config;
use tagword::TagScheme;

/// (seed, mix, fault) work items. Inverting the first conditional branch
/// derails essentially any program; an off-by-one `add` only matters once
/// execution is deep in user arithmetic (the early adds are all
/// runtime/allocation bookkeeping), so those pairs pin occurrence counts
/// found by scanning the two seeds. An item whose fault the oracle doesn't
/// catch on the *original* program is skipped (the property is about
/// shrinking a failure, not finding one) — but at least one item per fault
/// kind must be caught, or the suite is vacuous.
fn work_items() -> Vec<(u64, OpMix, Fault)> {
    vec![
        (3, OpMix::balanced(), Fault::BranchInvert { nth: 1 }),
        (11, OpMix::balanced(), Fault::BranchInvert { nth: 1 }),
        (3, OpMix::arith_heavy(), Fault::AddOffByOne { nth: 1744 }),
    ]
}

#[test]
fn shrinking_preserves_failure_never_grows_and_is_idempotent() {
    let config = Config::new(TagScheme::HighTag5, CheckingMode::Full);
    let work = work_items();
    let next = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(work.len());

    // (fault spelling, failure) per checked item; None when skipped.
    let results: Vec<Option<(String, Option<String>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((seed, mix, fault)) = work.get(i).copied() else {
                            break;
                        };
                        let p = generate(seed, &mix);
                        let mut caught = |q: &Program| caught_by_oracle(q, &config, fault);
                        if !caught(&p) {
                            local.push(None);
                            continue;
                        }
                        let tag = format!("{fault:?} seed {seed}");
                        local.push(Some((tag.clone(), check_properties(&p, &mut caught, &tag))));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    let failures: Vec<&String> = results
        .iter()
        .flatten()
        .filter_map(|(_, failure)| failure.as_ref())
        .collect();
    assert!(failures.is_empty(), "{failures:?}");

    // The suite must not be vacuous: every fault kind caught at least once.
    for fault_name in ["BranchInvert", "AddOffByOne"] {
        assert!(
            results
                .iter()
                .flatten()
                .any(|(tag, _)| tag.contains(fault_name)),
            "no seed had its {fault_name} fault caught — all items skipped"
        );
    }
}

/// The three shrinker properties for one caught failure. Returns a
/// description of the first violated property.
fn check_properties(
    p: &Program,
    caught: &mut dyn FnMut(&Program) -> bool,
    tag: &str,
) -> Option<String> {
    let s = shrink(p, caught);
    if !caught(&s) {
        return Some(format!("{tag}: shrinking lost the failure"));
    }
    if s.size() > p.size() {
        return Some(format!(
            "{tag}: shrunk program grew: {} -> {} forms",
            p.size(),
            s.size()
        ));
    }
    let s2 = shrink(&s, caught);
    if s2 != s {
        return Some(format!(
            "{tag}: shrink is not idempotent: {} forms -> {} forms",
            s.size(),
            s2.size()
        ));
    }
    None
}
