//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`] — just enough for
//! the daemon's wire protocol, with zero dependencies.
//!
//! One request per connection (`Connection: close` on every response): the
//! daemon's unit of work is a whole experiment batch, so connection reuse
//! buys nothing and dropping it keeps the server loop trivially correct.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body — batches are small JSON documents.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request: method, path, headers, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (as sent; not validated against a method list).
    pub method: String,
    /// The request target, e.g. `/v1/experiments`. Query strings are kept
    /// as-is (the router splits them off).
    pub path: String,
    /// Headers in arrival order, names lowercased and values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response to serialize: status, content type, body, and an optional
/// `Retry-After` value (seconds) for load-shed responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// `Retry-After` seconds, set on 503 load-shed responses.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A JSON error envelope: `{"error":"..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, format!("{{\"error\":{}}}\n", json_string(message)))
    }
}

/// Encode a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The standard reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Read and parse one request from `stream`.
///
/// # Errors
///
/// A malformed request line, an oversized head or body, or socket I/O
/// failures (including read timeouts) — all of which the caller answers with
/// a 400 and a closed connection.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    // Read until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(format!("request head exceeds {MAX_HEAD} bytes"));
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed before end of request head".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(format!("malformed request line {request_line:?}"));
    };
    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // Strict by design: duplicates are a smuggling vector, and
                // `parse::<usize>()` alone would accept "+5".
                if content_length.is_some() {
                    return Err("duplicate Content-Length header".to_string());
                }
                let text = value.trim();
                if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(format!("bad Content-Length {value:?}"));
                }
                content_length =
                    Some(text.parse().map_err(|_| format!("bad Content-Length {value:?}"))?);
            }
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(format!("request body exceeds {MAX_BODY} bytes"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialize `response` onto `stream`. Errors are swallowed — the peer may
/// have gone away, and there is nobody left to tell.
pub fn write_response(stream: &mut TcpStream, response: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&response.body))
        .and_then(|()| stream.flush());
}

/// A one-shot client request (used by `tagctl` and the tests): connect, send,
/// read the full response, return `(status, body)`.
///
/// # Errors
///
/// Connection or I/O failures, or an unparsable response head.
pub fn fetch(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: std::time::Duration,
) -> Result<(u16, Vec<u8>), String> {
    fetch_headers(addr, method, path, body, timeout, &[])
}

/// [`fetch`] with extra request headers (name, value) — how `tagctl` sends
/// its `traceparent`. Header values must not contain CR/LF.
///
/// # Errors
///
/// As [`fetch`].
pub fn fetch_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: std::time::Duration,
    extra_headers: &[(&str, &str)],
) -> Result<(u16, Vec<u8>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Content-Type: application/json\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        debug_assert!(
            !name.contains(['\r', '\n']) && !value.contains(['\r', '\n']),
            "header injection"
        );
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {addr}: {e}"))?;
    let head_end = find_head_end(&raw).ok_or("response head never ended")?;
    let head_text = std::str::from_utf8(&raw[..head_end]).map_err(|_| "head is not UTF-8")?;
    let status_line = head_text.split("\r\n").next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    /// Round-trip a request and response over a real socket pair.
    #[test]
    fn request_response_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/experiments");
            assert_eq!(req.body, b"{\"experiments\":[\"frl\"]}");
            // Header names are lowercased, values trimmed; lookup is by
            // lowercase name no matter how the client spelled it.
            assert_eq!(req.header("traceparent"), Some("00-abc-def-01"));
            assert!(req.header("host").is_some());
            assert_eq!(req.header("nope"), None);
            write_response(&mut stream, &Response::json(200, "{\"ok\":true}"));
        });
        let (status, body) = fetch_headers(
            &addr,
            "POST",
            "/v1/experiments",
            b"{\"experiments\":[\"frl\"]}",
            std::time::Duration::from_secs(5),
            &[("TraceParent", "00-abc-def-01")],
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
    }
}
