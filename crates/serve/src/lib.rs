//! `tagstudyd`: the experiment-serving daemon, plus the `tagctl` client's
//! plumbing.
//!
//! The daemon puts a [`tagstudy::Session`] behind a hand-rolled HTTP/1.1
//! server ([`crate::http`]) and wires it to a persistent
//! [`store::ResultStore`]: every fresh measurement is written through to disk,
//! and on startup every still-valid record is seeded back into the session, so
//! a restarted daemon answers previously-computed batches with **zero**
//! simulations — provable from `/metrics` (`session_cache_misses_total` stays
//! 0, `session_seeded_total` counts the preload).
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/experiments` | Measure a batch (see [`crate::proto`]); deduplicated and fanned through the session worker pool |
//! | `GET /v1/results/{key}` | The raw validated store record for a content address |
//! | `GET /metrics` | Prometheus text: session + daemon + store series |
//! | `GET /healthz` | Liveness: `ok` |
//! | `GET /v1/debug/trace` | Flight-recorder snapshot (JSON; `?format=chrome` for `chrome://tracing`) |
//! | `GET /v1/debug/trace/{id}` | One completed trace by trace id |
//! | `POST /v1/shutdown` | Graceful shutdown: stop accepting, drain, flush |
//!
//! ## Tracing
//!
//! Every request is traced end-to-end (see [`tagstudy::trace`]): the root
//! span is the request itself (named by normalized endpoint), with a
//! `queue_wait` child for time spent in the accept queue and, for
//! `/v1/experiments`, a `session.batch` child under which the session's
//! `cache.read`/`store.read`/`measure`/`compile`/`simulate` spans and the
//! store's `store.write` I/O spans attach. A client-supplied `traceparent`
//! header joins the request to the client's trace — a malformed header is
//! *never* an error, it just starts a fresh trace. Completed traces land in
//! a bounded in-memory flight recorder served by the debug endpoints;
//! per-endpoint latency histograms and p50/p90/p99 quantile gauges ride
//! `/metrics`.
//!
//! ## Overload behavior
//!
//! Accepted connections go through a bounded queue. When the queue is full
//! the acceptor *sheds* the connection immediately — `503` with a
//! `Retry-After` header — instead of letting latency grow without bound; a
//! connection that waited in the queue longer than its deadline is shed the
//! moment a worker picks it up, because by then the client has likely given
//! up and simulating for a dead socket helps nobody.

#![deny(missing_docs)]

pub mod cli;
pub mod fleet;
pub mod http;
pub mod proto;

use std::collections::VecDeque;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bench::spec::ExperimentSpec;
use store::{ResultStore, StoreKey};
use tagstudy::metrics::{labeled, REQUEST_BUCKETS};
use tagstudy::trace::{chrome_trace_json, SpanId, SpanRecord, TraceContext, TraceId, Tracer};
use tagstudy::{MetricsRegistry, Session};

use http::{Request, Response};

/// Metric names the daemon publishes (alongside the session's and store's).
pub mod daemon_metrics {
    /// Counter: HTTP requests parsed and routed.
    pub const REQUESTS: &str = "daemon_http_requests_total";
    /// Counter: 2xx responses sent.
    pub const RESPONSES_2XX: &str = "daemon_http_responses_2xx_total";
    /// Counter: 4xx responses sent.
    pub const RESPONSES_4XX: &str = "daemon_http_responses_4xx_total";
    /// Counter: 5xx responses sent (including sheds).
    pub const RESPONSES_5XX: &str = "daemon_http_responses_5xx_total";
    /// Counter: connections shed at accept because the queue was full.
    pub const QUEUE_SHED: &str = "daemon_queue_shed_total";
    /// Counter: connections shed at dequeue because they overstayed the
    /// queue deadline.
    pub const DEADLINE_SHED: &str = "daemon_deadline_shed_total";
    /// Counter: experiment batches served.
    pub const BATCHES: &str = "daemon_batches_total";
    /// Counter: experiments across all served batches.
    pub const EXPERIMENTS: &str = "daemon_experiments_total";
    /// Gauge: connections waiting in the accept queue right now.
    pub const QUEUE_DEPTH: &str = "daemon_queue_depth";
    /// Gauge: highest queue depth observed.
    pub const QUEUE_PEAK: &str = "daemon_queue_peak_depth";
    /// Counter: uncached differential-fuzz batches served (`/v1/fuzz/run`).
    pub const FUZZ_RUNS: &str = "daemon_fuzz_runs_total";
    /// Counter: matrix columns executed across all fuzz batches.
    pub const FUZZ_COLUMNS: &str = "daemon_fuzz_columns_total";
    /// Counter: programs a fuzz campaign reported completing.
    pub const FUZZ_PROGRAMS: &str = "daemon_fuzz_programs_total";
    /// Counter: columns a fuzz campaign reported skipping (resume coverage).
    pub const FUZZ_SKIPPED: &str = "daemon_fuzz_columns_skipped_total";
    /// Counter: divergences a fuzz campaign reported.
    pub const FUZZ_DIVERGENCES: &str = "daemon_fuzz_divergences_total";
    /// Counter: witnesses a fuzz campaign reported archiving.
    pub const FUZZ_WITNESSES: &str = "daemon_fuzz_witnesses_total";
    /// Gauge: the reporting campaign's coverage-ledger saturation (percent).
    pub const FUZZ_COVERAGE: &str = "daemon_fuzz_coverage_percent";
    /// Gauge: the reporting campaign's recent throughput (columns/second).
    pub const FUZZ_RATE: &str = "daemon_fuzz_columns_per_second";
    /// Histogram (per-endpoint, labeled): end-to-end request latency in
    /// seconds, from enqueue to response written. Buckets:
    /// [`tagstudy::metrics::REQUEST_BUCKETS`].
    pub const REQUEST_DURATION: &str = "daemon_request_duration_seconds";
    /// Histogram: time a served connection spent waiting in the accept queue
    /// (also observed for deadline sheds — that *is* the tuning signal).
    pub const QUEUE_WAIT: &str = "daemon_queue_wait_seconds";
    /// Gauge: requests being served right now (dequeued, response not yet
    /// written).
    pub const IN_FLIGHT: &str = "daemon_requests_in_flight";
    /// Gauge (per-endpoint + quantile, labeled): p50/p90/p99 latency
    /// estimated from [`REQUEST_DURATION`] at scrape time.
    pub const LATENCY_QUANTILE: &str = "daemon_request_latency_quantile_seconds";
    /// Counter: request traces sealed into the flight recorder.
    pub const TRACES_RECORDED: &str = "daemon_traces_recorded_total";
    /// Counter: completed traces evicted from the recorder ring.
    pub const TRACES_EVICTED: &str = "daemon_traces_evicted_total";
    /// Counter: completed traces that overstayed the slow threshold.
    pub const TRACES_SLOW: &str = "daemon_traces_slow_total";
    /// Counter: spans dropped by the recorder's bounds.
    pub const SPANS_DROPPED: &str = "daemon_trace_spans_dropped_total";
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// HTTP worker threads (each serves one connection at a time). The
    /// *measurement* parallelism is the session's own worker pool, so a small
    /// number here is plenty.
    pub http_workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this the
    /// acceptor sheds with `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// How long a connection may wait in the queue before a worker sheds it
    /// instead of serving it.
    pub queue_deadline: Duration,
    /// Socket read/write timeout per connection — a stalled peer cannot pin
    /// a worker forever.
    pub io_timeout: Duration,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u32,
    /// Completed request traces the flight recorder keeps (ring buffer).
    pub trace_capacity: usize,
    /// Requests whose total duration reaches this threshold also land in the
    /// recorder's slow-request log.
    pub slow_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            http_workers: 4,
            queue_capacity: 64,
            queue_deadline: Duration::from_secs(60),
            io_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            trace_capacity: 256,
            slow_threshold: Duration::from_secs(1),
        }
    }
}

/// What warmed up at startup — reported by [`Server::start`] callers.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmStart {
    /// Records seeded into the session from the store.
    pub seeded: usize,
    /// Records on disk that no longer match any current source (skipped).
    pub skipped: usize,
}

/// The shared daemon state: the session, the store, the bounded accept
/// queue, and the daemon-side metrics.
struct Daemon {
    session: Mutex<Session>,
    /// Prometheus text of the session's metrics as of the last time the
    /// session lock was available — served when a scrape races a batch, so
    /// `/metrics` never blocks behind a long simulation.
    session_prom: Mutex<String>,
    store: Option<Arc<ResultStore>>,
    metrics: Mutex<MetricsRegistry>,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_ready: Condvar,
    shutting_down: AtomicBool,
    config: ServerConfig,
    /// Where to self-connect to unblock the acceptor on shutdown.
    wake_addr: SocketAddr,
    /// The flight recorder every layer's spans land in (also attached to the
    /// session and the store).
    tracer: Tracer,
    /// Requests currently being served (dequeued, response not written).
    in_flight: AtomicUsize,
}

/// A handle for poking a running server from outside the HTTP surface
/// (used by the binary for logging and by tests for assertions).
#[derive(Clone)]
pub struct DaemonHandle(Arc<Daemon>);

impl DaemonHandle {
    /// Begin graceful shutdown: stop accepting, let workers drain the queue
    /// and in-flight work. Idempotent. Returns immediately;
    /// [`Server::join`] observes completion.
    pub fn shutdown(&self) {
        self.0.shutdown();
    }

    /// The full Prometheus exposition the `/metrics` endpoint serves.
    pub fn metrics_prometheus(&self) -> String {
        self.0.metrics_prometheus()
    }
}

/// A running daemon: the listener thread, the worker pool, and the shared
/// state. Dropping a `Server` without [`Server::join`] detaches the threads.
pub struct Server {
    daemon: Arc<Daemon>,
    addr: SocketAddr,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7099"`, or port 0 for an ephemeral
    /// port) and start serving. When `store` is given, the session writes
    /// every fresh measurement through to it, and everything still valid on
    /// disk is seeded back into the session before the first request.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        store: Option<Arc<ResultStore>>,
        config: ServerConfig,
    ) -> std::io::Result<(Server, WarmStart)> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let wake_addr = if addr.ip().is_unspecified() {
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), addr.port())
        } else {
            addr
        };

        let tracer = Tracer::new(config.trace_capacity, config.slow_threshold);
        let mut session = Session::new().with_tracer(tracer.clone());
        if let Some(store) = &store {
            store.set_tracer(tracer.clone());
        }
        if let Some(store) = &store {
            let sink = Arc::clone(store);
            session = session.with_writeback(move |m, t| {
                // Inline sources live outside the benchmark registry the
                // store keys by name; their measurements are returned to the
                // caller but not persisted.
                if programs::by_name(&m.program).is_none() {
                    return;
                }
                if let Err(e) = sink.put(m, t) {
                    eprintln!("[tagstudyd] writeback failed (continuing): {e}");
                }
            });
        }
        let mut warm = WarmStart::default();
        if let Some(store) = &store {
            let on_disk = store.record_count();
            for (m, t) in store.load_current() {
                if session.seed(m, t) {
                    warm.seeded += 1;
                }
            }
            warm.skipped = on_disk.saturating_sub(warm.seeded);
        }

        let session_prom = session.metrics_prometheus();
        let daemon = Arc::new(Daemon {
            session: Mutex::new(session),
            session_prom: Mutex::new(session_prom),
            store,
            metrics: Mutex::new(MetricsRegistry::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            config: config.clone(),
            wake_addr,
            tracer,
            in_flight: AtomicUsize::new(0),
        });

        let acceptor = {
            let daemon = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name("tagstudyd-accept".to_string())
                .spawn(move || daemon.accept_loop(listener))?
        };
        let workers = (0..config.http_workers.max(1))
            .map(|i| {
                let daemon = Arc::clone(&daemon);
                std::thread::Builder::new()
                    .name(format!("tagstudyd-worker-{i}"))
                    .spawn(move || daemon.worker_loop())
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok((
            Server {
                daemon,
                addr,
                acceptor,
                workers,
            },
            warm,
        ))
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle to the shared daemon state.
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle(Arc::clone(&self.daemon))
    }

    /// Block until the daemon has shut down (via `POST /v1/shutdown` or
    /// [`DaemonHandle::shutdown`]): joins the acceptor and every worker —
    /// which drain all queued and in-flight requests first — then flushes
    /// the store.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(store) = &self.daemon.store {
            if let Err(e) = store.flush() {
                eprintln!("[tagstudyd] store flush failed: {e}");
            }
        }
    }
}

impl Daemon {
    fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a throwaway
        // self-connection, and every idle worker waiting on the queue.
        let _ = TcpStream::connect_timeout(&self.wake_addr, Duration::from_secs(1));
        self.queue_ready.notify_all();
    }

    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Queue an accepted connection, or hand it back when the queue is full.
    fn try_enqueue(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.config.queue_capacity {
            Err(stream)
        } else {
            q.push_back((stream, Instant::now()));
            self.queue_ready.notify_one();
            Ok(q.len())
        }
    }

    fn accept_loop(&self, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            match self.try_enqueue(stream) {
                Ok(depth) => {
                    self.lock_metrics()
                        .gauge_max(daemon_metrics::QUEUE_PEAK, depth as f64);
                }
                Err(mut stream) => {
                    // Shed at the door: tell the client when to come back
                    // rather than queueing unbounded work.
                    {
                        let mut m = self.lock_metrics();
                        m.inc(daemon_metrics::QUEUE_SHED);
                        m.inc(daemon_metrics::RESPONSES_5XX);
                    }
                    let _ = stream.set_write_timeout(Some(self.config.io_timeout));
                    let mut shed = Response::error(503, "overloaded: accept queue is full");
                    shed.retry_after = Some(self.config.retry_after_secs);
                    http::write_response(&mut stream, &shed);
                    // Half-close and drain the unread request (bounded by the
                    // short timeout): closing with unread data would RST the
                    // connection and could discard the 503 we just sent.
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut scratch = [0u8; 4096];
                    while matches!(std::io::Read::read(&mut stream, &mut scratch), Ok(n) if n > 0) {
                    }
                }
            }
        }
        // Wake the workers so they can observe the flag and drain out.
        self.queue_ready.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let next = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(item) = q.pop_front() {
                        break Some(item);
                    }
                    if self.shutting_down.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = self.queue_ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some((mut stream, enqueued)) = next else {
                return;
            };
            let waited = enqueued.elapsed();
            self.lock_metrics().observe(
                daemon_metrics::QUEUE_WAIT,
                REQUEST_BUCKETS,
                waited.as_secs_f64(),
            );
            if waited > self.config.queue_deadline {
                {
                    let mut m = self.lock_metrics();
                    m.inc(daemon_metrics::DEADLINE_SHED);
                    m.inc(daemon_metrics::RESPONSES_5XX);
                }
                let mut shed =
                    Response::error(503, "overloaded: request overstayed its queue deadline");
                shed.retry_after = Some(self.config.retry_after_secs);
                http::write_response(&mut stream, &shed);
                continue;
            }
            self.serve_connection(stream, enqueued);
        }
    }

    fn serve_connection(&self, mut stream: TcpStream, enqueued: Instant) {
        let dequeued = Instant::now();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(self.config.io_timeout));
        let _ = stream.set_write_timeout(Some(self.config.io_timeout));
        let parsed = http::read_request(&mut stream);

        // Join the client's trace when a well-formed traceparent came along;
        // anything else — missing header, malformed header, unparsable
        // request — starts a fresh trace. Never an error.
        let client_ctx = parsed
            .as_ref()
            .ok()
            .and_then(|r| r.header(tagstudy::trace::TRACEPARENT_HEADER))
            .and_then(TraceContext::from_traceparent);
        let trace = client_ctx.map_or_else(TraceId::generate, |c| c.trace);
        let root = SpanId::generate();
        let endpoint = match &parsed {
            Ok(r) => endpoint_of(&r.method, &r.path),
            Err(_) => "unparsed".to_string(),
        };

        // queue_wait is a real child span: the request's lifetime includes
        // the time it sat in the accept queue before any byte was read.
        self.tracer.record(SpanRecord {
            trace,
            id: SpanId::generate(),
            parent: Some(root),
            name: "queue_wait".to_string(),
            component: "daemon".to_string(),
            start_us: self.tracer.at_us(enqueued),
            dur_us: (dequeued - enqueued).as_micros() as u64,
            labels: Vec::new(),
        });

        let response = match &parsed {
            Ok(request) => self.route(request, TraceContext::new(trace, root)),
            Err(why) => Response::error(400, why),
        };
        {
            let mut m = self.lock_metrics();
            m.inc(daemon_metrics::REQUESTS);
            m.inc(match response.status {
                200..=299 => daemon_metrics::RESPONSES_2XX,
                400..=499 => daemon_metrics::RESPONSES_4XX,
                _ => daemon_metrics::RESPONSES_5XX,
            });
        }
        http::write_response(&mut stream, &response);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);

        // Seal the trace: root span covers enqueue → response written, and
        // the per-endpoint latency histogram observes the same interval.
        let total = enqueued.elapsed();
        self.lock_metrics().observe(
            &labeled(daemon_metrics::REQUEST_DURATION, &[("endpoint", &endpoint)]),
            REQUEST_BUCKETS,
            total.as_secs_f64(),
        );
        self.tracer.record(SpanRecord {
            trace,
            id: root,
            parent: client_ctx.map(|c| c.parent),
            name: endpoint,
            component: "daemon".to_string(),
            start_us: self.tracer.at_us(enqueued),
            dur_us: total.as_micros() as u64,
            labels: vec![("status".to_string(), response.status.to_string())],
        });
        self.tracer.finish(trace, root);
    }

    fn route(&self, request: &Request, ctx: TraceContext) -> Response {
        let path = request.path.split('?').next().unwrap_or(&request.path);
        let query = request.path.strip_prefix(path).unwrap_or("");
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/metrics") => Response::text(200, self.metrics_prometheus()),
            ("POST", "/v1/experiments") => self.handle_batch(&request.body, ctx),
            ("POST", "/v1/fuzz/run") => self.handle_fuzz_run(&request.body, ctx),
            ("POST", "/v1/fuzz/report") => self.handle_fuzz_report(&request.body),
            ("GET", "/v1/debug/trace") => self.handle_debug_trace(query),
            ("GET", p) if p.starts_with("/v1/debug/trace/") => {
                self.handle_debug_trace_one(&p["/v1/debug/trace/".len()..])
            }
            ("GET", p) if p.starts_with("/v1/results/") => {
                self.handle_result(&p["/v1/results/".len()..], ctx)
            }
            ("POST", "/v1/shutdown") => {
                self.shutdown();
                Response::json(200, "{\"status\":\"shutting down\"}\n")
            }
            (
                _,
                "/healthz" | "/metrics" | "/v1/experiments" | "/v1/fuzz/run" | "/v1/fuzz/report"
                | "/v1/shutdown" | "/v1/debug/trace",
            ) => Response::error(405, &format!("wrong method for {path}")),
            _ => Response::error(404, &format!("no route for {path}")),
        }
    }

    fn handle_batch(&self, body: &[u8], ctx: TraceContext) -> Response {
        let specs = match proto::parse_batch(body) {
            Ok(specs) => specs,
            Err(why) => return Response::error(400, &why),
        };
        let requests: Vec<(&str, tagstudy::Config)> = specs
            .iter()
            .map(|s| (s.program.as_str(), s.config))
            .collect();
        // The whole dedup + fan-out + writeback sits under one session.batch
        // span; session spans (cache/store reads, measure/compile/simulate)
        // and store writeback spans parent under it. The store scope is
        // thread-keyed and writeback runs on this worker thread.
        let batch_span = SpanId::generate();
        let batch_start = Instant::now();
        let child_ctx = TraceContext::new(ctx.trace, batch_span);
        let _scope = self.store.as_ref().map(|s| s.trace_scope(child_ctx));
        let mut session = self.session.lock().unwrap_or_else(|e| e.into_inner());
        session.begin_trace(child_ctx);
        // Inline specs carry their own source: register each under its
        // content-derived name before measuring, so the batch rides the same
        // memoizing engine as named benchmarks. Re-registering identical
        // content is a no-op, so repeated batches stay cache hits.
        for spec in &specs {
            if let Some(source) = &spec.source {
                let mut program = tagstudy::InlineProgram::new(source.clone());
                if let Some(heap) = spec.heap_semi_bytes {
                    program = program.with_heap(heap);
                }
                session.register_source(&spec.program, program);
            }
        }
        let result = session.measure_many(&requests);
        session.end_trace();
        // Refresh the lock-free metrics snapshot while we hold the session.
        *self.session_prom.lock().unwrap_or_else(|e| e.into_inner()) = session.metrics_prometheus();
        drop(session);
        self.tracer.record(SpanRecord {
            trace: ctx.trace,
            id: batch_span,
            parent: Some(ctx.parent),
            name: "session.batch".to_string(),
            component: "session".to_string(),
            start_us: self.tracer.at_us(batch_start),
            dur_us: batch_start.elapsed().as_micros() as u64,
            labels: vec![("experiments".to_string(), specs.len().to_string())],
        });
        match result {
            Ok(measurements) => {
                {
                    let mut m = self.lock_metrics();
                    m.inc(daemon_metrics::BATCHES);
                    m.add(daemon_metrics::EXPERIMENTS, specs.len() as u64);
                }
                let entries: Vec<(ExperimentSpec, StoreKey, tagstudy::Measurement)> = specs
                    .into_iter()
                    .zip(measurements)
                    .map(|(spec, m)| {
                        let source = match &spec.source {
                            Some(text) => text.as_str(),
                            None => {
                                programs::by_name(&spec.program)
                                    .expect("named spec validated against the registry")
                                    .source
                            }
                        };
                        let key = StoreKey::compute(source, &spec.config);
                        (spec, key, m)
                    })
                    .collect();
                Response::json(200, proto::results_json(&entries))
            }
            Err(e) => Response::error(500, &format!("measurement failed: {e}")),
        }
    }

    /// The differential-fuzzing execution path: like a batch, but every spec
    /// is measured **uncached**. The session cache keys on `(program,
    /// config)` with the backend deliberately excluded (results are
    /// backend-independent *by design* — which is exactly the property a
    /// differential fuzzer must not assume), so the cached path would
    /// collapse a classic-vs-fast fan-out into one execution. This route
    /// always compiles and simulates, per spec, on the spec's own backend.
    fn handle_fuzz_run(&self, body: &[u8], ctx: TraceContext) -> Response {
        let specs = match proto::parse_batch(body) {
            Ok(specs) => specs,
            Err(why) => return Response::error(400, &why),
        };
        let _scope = self.store.as_ref().map(|s| s.trace_scope(ctx));
        let mut session = self.session.lock().unwrap_or_else(|e| e.into_inner());
        for spec in &specs {
            if let Some(source) = &spec.source {
                let mut program = tagstudy::InlineProgram::new(source.clone());
                if let Some(heap) = spec.heap_semi_bytes {
                    program = program.with_heap(heap);
                }
                session.register_source(&spec.program, program);
            }
        }
        let mut entries: Vec<(ExperimentSpec, StoreKey, tagstudy::Measurement)> = Vec::new();
        for spec in specs {
            // One fuzz.column span per matrix column: the session's
            // measure/compile/simulate spans nest under it.
            let column_span = SpanId::generate();
            let column_start = Instant::now();
            session.begin_trace(TraceContext::new(ctx.trace, column_span));
            let measured = session.measure_uncached(&spec.program, spec.config);
            session.end_trace();
            self.tracer.record(SpanRecord {
                trace: ctx.trace,
                id: column_span,
                parent: Some(ctx.parent),
                name: "fuzz.column".to_string(),
                component: "fleet".to_string(),
                start_us: self.tracer.at_us(column_start),
                dur_us: column_start.elapsed().as_micros() as u64,
                labels: vec![("spec".to_string(), spec.to_spec_string())],
            });
            match measured {
                Ok(m) => {
                    let source = match &spec.source {
                        Some(text) => text.as_str(),
                        None => {
                            programs::by_name(&spec.program)
                                .expect("named spec validated against the registry")
                                .source
                        }
                    };
                    let key = StoreKey::compute(source, &spec.config);
                    entries.push((spec, key, m));
                }
                // One failing spec fails the whole batch: the client retries
                // spec-by-spec to pin down which column refused (a refusal
                // *is* a differential signal — e.g. a halt-code mismatch the
                // measurement validator catches before the client could).
                Err(e) => {
                    drop(session);
                    return Response::error(
                        500,
                        &format!("fuzz run failed: {}: {e}", spec.to_spec_string()),
                    );
                }
            }
        }
        drop(session);
        {
            let mut m = self.lock_metrics();
            m.inc(daemon_metrics::FUZZ_RUNS);
            m.add(daemon_metrics::FUZZ_COLUMNS, entries.len() as u64);
        }
        Response::json(200, proto::results_json(&entries))
    }

    /// Campaign telemetry sink: the fuzz driver posts per-batch deltas and
    /// the current coverage/throughput gauges, and `/metrics` republishes
    /// them. Body: `{"programs":Δ,"columns":Δ,"skipped":Δ,"divergences":Δ,
    /// "witnesses":Δ,"coverage_percent":x,"columns_per_second":x}` — every
    /// field optional.
    fn handle_fuzz_report(&self, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        let root = match tagstudy::Json::parse(text) {
            Ok(root) => root,
            Err(why) => return Response::error(400, &why),
        };
        let obj = match root.as_object("fuzz report") {
            Ok(obj) => obj,
            Err(why) => return Response::error(400, &why),
        };
        let counters = [
            ("programs", daemon_metrics::FUZZ_PROGRAMS),
            ("columns", daemon_metrics::FUZZ_COLUMNS),
            ("skipped", daemon_metrics::FUZZ_SKIPPED),
            ("divergences", daemon_metrics::FUZZ_DIVERGENCES),
            ("witnesses", daemon_metrics::FUZZ_WITNESSES),
        ];
        let gauges = [
            ("coverage_percent", daemon_metrics::FUZZ_COVERAGE),
            ("columns_per_second", daemon_metrics::FUZZ_RATE),
        ];
        let mut m = self.lock_metrics();
        for (field, metric) in counters {
            if let Some((_, v)) = obj.iter().find(|(k, _)| k == field) {
                match v.as_u64(field) {
                    Ok(n) => m.add(metric, n),
                    Err(why) => return Response::error(400, &why),
                }
            }
        }
        for (field, metric) in gauges {
            if let Some((_, v)) = obj.iter().find(|(k, _)| k == field) {
                match v.as_f64(field) {
                    Ok(x) => m.set_gauge(metric, x),
                    Err(why) => return Response::error(400, &why),
                }
            }
        }
        Response::json(200, "{\"status\":\"ok\"}\n")
    }

    fn handle_result(&self, key_text: &str, ctx: TraceContext) -> Response {
        let key = match StoreKey::from_hex(key_text) {
            Ok(key) => key,
            Err(why) => return Response::error(400, &why),
        };
        let Some(store) = &self.store else {
            return Response::error(404, "daemon is running without a result store");
        };
        let _scope = store.trace_scope(ctx);
        match store.raw_record(&key) {
            Some(text) => Response::json(200, text),
            None => Response::error(404, &format!("no record for key {key}")),
        }
    }

    /// The flight-recorder snapshot: recent + slow traces as JSON, or the
    /// whole thing as a Chrome trace-event document (`?format=chrome`) ready
    /// for `chrome://tracing` / Perfetto.
    fn handle_debug_trace(&self, query: &str) -> Response {
        let snapshot = self.tracer.snapshot();
        if query_param(query, "format") == Some("chrome") {
            let mut traces = snapshot.recent.clone();
            let seen: std::collections::HashSet<u128> =
                traces.iter().map(|t| t.trace.0).collect();
            traces.extend(
                snapshot
                    .slow
                    .iter()
                    .filter(|t| !seen.contains(&t.trace.0))
                    .cloned(),
            );
            return Response::json(200, chrome_trace_json(&traces));
        }
        Response::json(200, snapshot.to_json())
    }

    /// One completed trace by id (32 lowercase hex digits).
    fn handle_debug_trace_one(&self, id_text: &str) -> Response {
        let Some(trace) = TraceId::from_hex(id_text) else {
            return Response::error(400, &format!("bad trace id {id_text:?}"));
        };
        match self.tracer.lookup(trace) {
            Some(record) => Response::json(200, record.to_json()),
            None => Response::error(404, &format!("no recorded trace {trace}")),
        }
    }

    /// The full `/metrics` exposition: session series (fresh if the session
    /// lock is free, last snapshot if a batch is mid-flight), daemon series,
    /// store series.
    fn metrics_prometheus(&self) -> String {
        let session_text = match self.session.try_lock() {
            Ok(session) => {
                let text = session.metrics_prometheus();
                *self.session_prom.lock().unwrap_or_else(|e| e.into_inner()) = text.clone();
                text
            }
            Err(_) => format!(
                "# session metrics: snapshot from before the batch in flight\n{}",
                self.session_prom.lock().unwrap_or_else(|e| e.into_inner())
            ),
        };
        let daemon_text = {
            let mut m = self.lock_metrics().clone();
            m.set_gauge(
                daemon_metrics::QUEUE_DEPTH,
                self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as f64,
            );
            m.set_gauge(
                daemon_metrics::IN_FLIGHT,
                self.in_flight.load(Ordering::Relaxed) as f64,
            );
            let recorder = self.tracer.stats();
            m.add(daemon_metrics::TRACES_RECORDED, recorder.completed);
            m.add(daemon_metrics::TRACES_EVICTED, recorder.evicted);
            m.add(daemon_metrics::TRACES_SLOW, recorder.slow);
            m.add(daemon_metrics::SPANS_DROPPED, recorder.dropped_spans);
            for (key, value) in latency_quantile_gauges(&m) {
                m.set_gauge(&key, value);
            }
            m.to_prometheus()
        };
        let store_text = self.store.as_ref().map_or(String::new(), |store| {
            let s = store.stats();
            format!(
                "store_puts_total {}\nstore_gets_total {}\nstore_hits_total {}\n\
                 store_quarantined_total {}\nstore_records {}\nstore_quarantine_files {}\n",
                s.puts,
                s.gets,
                s.hits,
                s.quarantined,
                store.record_count(),
                store.quarantine_count()
            )
        });
        format!("{session_text}{daemon_text}{store_text}")
    }
}

/// Latency-quantile gauges estimated at scrape time from the per-endpoint
/// `daemon_request_duration_seconds` histograms: one
/// `daemon_request_latency_quantile_seconds` series per (endpoint, quantile).
///
/// An endpoint whose histogram holds no observations contributes **no**
/// series at all — the quantile of an empty histogram is undefined, and
/// emitting it as `NaN` or `0` would poison dashboards that aggregate over
/// endpoints. (Empty histograms do occur: a scrape can race request
/// registration, and snapshots restored from JSON may carry zeroed buckets.)
pub fn latency_quantile_gauges(m: &MetricsRegistry) -> Vec<(String, f64)> {
    let prefix = format!("{}{{endpoint=\"", daemon_metrics::REQUEST_DURATION);
    let mut quantiles: Vec<(String, f64)> = Vec::new();
    for (key, hist) in m.histograms() {
        let Some(endpoint) = key
            .strip_prefix(prefix.as_str())
            .and_then(|rest| rest.strip_suffix("\"}"))
        else {
            continue;
        };
        if hist.count == 0 {
            // No observations yet: omit the endpoint, don't emit garbage.
            continue;
        }
        for (q, q_label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            if let Some(v) = hist.quantile(q) {
                quantiles.push((
                    labeled(
                        daemon_metrics::LATENCY_QUANTILE,
                        &[("endpoint", endpoint), ("quantile", q_label)],
                    ),
                    v,
                ));
            }
        }
    }
    quantiles
}

/// Normalize a request to a bounded endpoint label for metrics and span
/// names: known routes verbatim, parameterized routes collapsed
/// (`/v1/results/{key}`, `/v1/debug/trace/{trace}`), everything else
/// `other` — an attacker scanning paths must not mint unbounded series.
fn endpoint_of(method: &str, path: &str) -> String {
    let path = path.split('?').next().unwrap_or(path);
    let path = match path {
        "/healthz" | "/metrics" | "/v1/experiments" | "/v1/fuzz/run" | "/v1/fuzz/report"
        | "/v1/shutdown" | "/v1/debug/trace" => path,
        p if p.starts_with("/v1/debug/trace/") => "/v1/debug/trace/{trace}",
        p if p.starts_with("/v1/results/") => "/v1/results/{key}",
        _ => "other",
    };
    let method = match method {
        "GET" | "POST" | "PUT" | "DELETE" | "HEAD" | "OPTIONS" => method,
        _ => "OTHER",
    };
    format!("{method} {path}")
}

/// The value of `name` in a query string like `?format=chrome&x=1`.
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .trim_start_matches('?')
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_of("POST", "/v1/experiments"), "POST /v1/experiments");
        assert_eq!(
            endpoint_of("GET", "/v1/results/abc123"),
            "GET /v1/results/{key}"
        );
        assert_eq!(
            endpoint_of("GET", "/v1/debug/trace/deadbeef"),
            "GET /v1/debug/trace/{trace}"
        );
        assert_eq!(
            endpoint_of("GET", "/v1/debug/trace?format=chrome"),
            "GET /v1/debug/trace"
        );
        assert_eq!(endpoint_of("GET", "/../../etc/passwd"), "GET other");
        assert_eq!(endpoint_of("BREW", "/healthz"), "OTHER /healthz");
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(query_param("?format=chrome", "format"), Some("chrome"));
        assert_eq!(query_param("?a=1&format=json", "format"), Some("json"));
        assert_eq!(query_param("", "format"), None);
        assert_eq!(query_param("?format", "format"), None);
    }
}
