//! `tagstudyd`: the experiment-serving daemon, plus the `tagctl` client's
//! plumbing.
//!
//! The daemon puts a [`tagstudy::Session`] behind a hand-rolled HTTP/1.1
//! server ([`crate::http`]) and wires it to a persistent
//! [`store::ResultStore`]: every fresh measurement is written through to disk,
//! and on startup every still-valid record is seeded back into the session, so
//! a restarted daemon answers previously-computed batches with **zero**
//! simulations — provable from `/metrics` (`session_cache_misses_total` stays
//! 0, `session_seeded_total` counts the preload).
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/experiments` | Measure a batch (see [`crate::proto`]); deduplicated and fanned through the session worker pool |
//! | `GET /v1/results/{key}` | The raw validated store record for a content address |
//! | `GET /metrics` | Prometheus text: session + daemon + store series |
//! | `GET /healthz` | Liveness: `ok` |
//! | `POST /v1/shutdown` | Graceful shutdown: stop accepting, drain, flush |
//!
//! ## Overload behavior
//!
//! Accepted connections go through a bounded queue. When the queue is full
//! the acceptor *sheds* the connection immediately — `503` with a
//! `Retry-After` header — instead of letting latency grow without bound; a
//! connection that waited in the queue longer than its deadline is shed the
//! moment a worker picks it up, because by then the client has likely given
//! up and simulating for a dead socket helps nobody.

#![deny(missing_docs)]

pub mod cli;
pub mod fleet;
pub mod http;
pub mod proto;

use std::collections::VecDeque;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bench::spec::ExperimentSpec;
use store::{ResultStore, StoreKey};
use tagstudy::{MetricsRegistry, Session};

use http::{Request, Response};

/// Metric names the daemon publishes (alongside the session's and store's).
pub mod daemon_metrics {
    /// Counter: HTTP requests parsed and routed.
    pub const REQUESTS: &str = "daemon_http_requests_total";
    /// Counter: 2xx responses sent.
    pub const RESPONSES_2XX: &str = "daemon_http_responses_2xx_total";
    /// Counter: 4xx responses sent.
    pub const RESPONSES_4XX: &str = "daemon_http_responses_4xx_total";
    /// Counter: 5xx responses sent (including sheds).
    pub const RESPONSES_5XX: &str = "daemon_http_responses_5xx_total";
    /// Counter: connections shed at accept because the queue was full.
    pub const QUEUE_SHED: &str = "daemon_queue_shed_total";
    /// Counter: connections shed at dequeue because they overstayed the
    /// queue deadline.
    pub const DEADLINE_SHED: &str = "daemon_deadline_shed_total";
    /// Counter: experiment batches served.
    pub const BATCHES: &str = "daemon_batches_total";
    /// Counter: experiments across all served batches.
    pub const EXPERIMENTS: &str = "daemon_experiments_total";
    /// Gauge: connections waiting in the accept queue right now.
    pub const QUEUE_DEPTH: &str = "daemon_queue_depth";
    /// Gauge: highest queue depth observed.
    pub const QUEUE_PEAK: &str = "daemon_queue_peak_depth";
    /// Counter: uncached differential-fuzz batches served (`/v1/fuzz/run`).
    pub const FUZZ_RUNS: &str = "daemon_fuzz_runs_total";
    /// Counter: matrix columns executed across all fuzz batches.
    pub const FUZZ_COLUMNS: &str = "daemon_fuzz_columns_total";
    /// Counter: programs a fuzz campaign reported completing.
    pub const FUZZ_PROGRAMS: &str = "daemon_fuzz_programs_total";
    /// Counter: columns a fuzz campaign reported skipping (resume coverage).
    pub const FUZZ_SKIPPED: &str = "daemon_fuzz_columns_skipped_total";
    /// Counter: divergences a fuzz campaign reported.
    pub const FUZZ_DIVERGENCES: &str = "daemon_fuzz_divergences_total";
    /// Counter: witnesses a fuzz campaign reported archiving.
    pub const FUZZ_WITNESSES: &str = "daemon_fuzz_witnesses_total";
    /// Gauge: the reporting campaign's coverage-ledger saturation (percent).
    pub const FUZZ_COVERAGE: &str = "daemon_fuzz_coverage_percent";
    /// Gauge: the reporting campaign's recent throughput (columns/second).
    pub const FUZZ_RATE: &str = "daemon_fuzz_columns_per_second";
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// HTTP worker threads (each serves one connection at a time). The
    /// *measurement* parallelism is the session's own worker pool, so a small
    /// number here is plenty.
    pub http_workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this the
    /// acceptor sheds with `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// How long a connection may wait in the queue before a worker sheds it
    /// instead of serving it.
    pub queue_deadline: Duration,
    /// Socket read/write timeout per connection — a stalled peer cannot pin
    /// a worker forever.
    pub io_timeout: Duration,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            http_workers: 4,
            queue_capacity: 64,
            queue_deadline: Duration::from_secs(60),
            io_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
        }
    }
}

/// What warmed up at startup — reported by [`Server::start`] callers.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmStart {
    /// Records seeded into the session from the store.
    pub seeded: usize,
    /// Records on disk that no longer match any current source (skipped).
    pub skipped: usize,
}

/// The shared daemon state: the session, the store, the bounded accept
/// queue, and the daemon-side metrics.
struct Daemon {
    session: Mutex<Session>,
    /// Prometheus text of the session's metrics as of the last time the
    /// session lock was available — served when a scrape races a batch, so
    /// `/metrics` never blocks behind a long simulation.
    session_prom: Mutex<String>,
    store: Option<Arc<ResultStore>>,
    metrics: Mutex<MetricsRegistry>,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_ready: Condvar,
    shutting_down: AtomicBool,
    config: ServerConfig,
    /// Where to self-connect to unblock the acceptor on shutdown.
    wake_addr: SocketAddr,
}

/// A handle for poking a running server from outside the HTTP surface
/// (used by the binary for logging and by tests for assertions).
#[derive(Clone)]
pub struct DaemonHandle(Arc<Daemon>);

impl DaemonHandle {
    /// Begin graceful shutdown: stop accepting, let workers drain the queue
    /// and in-flight work. Idempotent. Returns immediately;
    /// [`Server::join`] observes completion.
    pub fn shutdown(&self) {
        self.0.shutdown();
    }

    /// The full Prometheus exposition the `/metrics` endpoint serves.
    pub fn metrics_prometheus(&self) -> String {
        self.0.metrics_prometheus()
    }
}

/// A running daemon: the listener thread, the worker pool, and the shared
/// state. Dropping a `Server` without [`Server::join`] detaches the threads.
pub struct Server {
    daemon: Arc<Daemon>,
    addr: SocketAddr,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7099"`, or port 0 for an ephemeral
    /// port) and start serving. When `store` is given, the session writes
    /// every fresh measurement through to it, and everything still valid on
    /// disk is seeded back into the session before the first request.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        store: Option<Arc<ResultStore>>,
        config: ServerConfig,
    ) -> std::io::Result<(Server, WarmStart)> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let wake_addr = if addr.ip().is_unspecified() {
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), addr.port())
        } else {
            addr
        };

        let mut session = Session::new();
        if let Some(store) = &store {
            let sink = Arc::clone(store);
            session = session.with_writeback(move |m, t| {
                // Inline sources live outside the benchmark registry the
                // store keys by name; their measurements are returned to the
                // caller but not persisted.
                if programs::by_name(&m.program).is_none() {
                    return;
                }
                if let Err(e) = sink.put(m, t) {
                    eprintln!("[tagstudyd] writeback failed (continuing): {e}");
                }
            });
        }
        let mut warm = WarmStart::default();
        if let Some(store) = &store {
            let on_disk = store.record_count();
            for (m, t) in store.load_current() {
                if session.seed(m, t) {
                    warm.seeded += 1;
                }
            }
            warm.skipped = on_disk.saturating_sub(warm.seeded);
        }

        let session_prom = session.metrics_prometheus();
        let daemon = Arc::new(Daemon {
            session: Mutex::new(session),
            session_prom: Mutex::new(session_prom),
            store,
            metrics: Mutex::new(MetricsRegistry::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            config: config.clone(),
            wake_addr,
        });

        let acceptor = {
            let daemon = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name("tagstudyd-accept".to_string())
                .spawn(move || daemon.accept_loop(listener))?
        };
        let workers = (0..config.http_workers.max(1))
            .map(|i| {
                let daemon = Arc::clone(&daemon);
                std::thread::Builder::new()
                    .name(format!("tagstudyd-worker-{i}"))
                    .spawn(move || daemon.worker_loop())
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok((
            Server {
                daemon,
                addr,
                acceptor,
                workers,
            },
            warm,
        ))
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle to the shared daemon state.
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle(Arc::clone(&self.daemon))
    }

    /// Block until the daemon has shut down (via `POST /v1/shutdown` or
    /// [`DaemonHandle::shutdown`]): joins the acceptor and every worker —
    /// which drain all queued and in-flight requests first — then flushes
    /// the store.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(store) = &self.daemon.store {
            if let Err(e) = store.flush() {
                eprintln!("[tagstudyd] store flush failed: {e}");
            }
        }
    }
}

impl Daemon {
    fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a throwaway
        // self-connection, and every idle worker waiting on the queue.
        let _ = TcpStream::connect_timeout(&self.wake_addr, Duration::from_secs(1));
        self.queue_ready.notify_all();
    }

    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Queue an accepted connection, or hand it back when the queue is full.
    fn try_enqueue(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.config.queue_capacity {
            Err(stream)
        } else {
            q.push_back((stream, Instant::now()));
            self.queue_ready.notify_one();
            Ok(q.len())
        }
    }

    fn accept_loop(&self, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            match self.try_enqueue(stream) {
                Ok(depth) => {
                    self.lock_metrics()
                        .gauge_max(daemon_metrics::QUEUE_PEAK, depth as f64);
                }
                Err(mut stream) => {
                    // Shed at the door: tell the client when to come back
                    // rather than queueing unbounded work.
                    {
                        let mut m = self.lock_metrics();
                        m.inc(daemon_metrics::QUEUE_SHED);
                        m.inc(daemon_metrics::RESPONSES_5XX);
                    }
                    let _ = stream.set_write_timeout(Some(self.config.io_timeout));
                    let mut shed = Response::error(503, "overloaded: accept queue is full");
                    shed.retry_after = Some(self.config.retry_after_secs);
                    http::write_response(&mut stream, &shed);
                    // Half-close and drain the unread request (bounded by the
                    // short timeout): closing with unread data would RST the
                    // connection and could discard the 503 we just sent.
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut scratch = [0u8; 4096];
                    while matches!(std::io::Read::read(&mut stream, &mut scratch), Ok(n) if n > 0) {
                    }
                }
            }
        }
        // Wake the workers so they can observe the flag and drain out.
        self.queue_ready.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let next = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(item) = q.pop_front() {
                        break Some(item);
                    }
                    if self.shutting_down.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = self.queue_ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some((mut stream, enqueued)) = next else {
                return;
            };
            if enqueued.elapsed() > self.config.queue_deadline {
                {
                    let mut m = self.lock_metrics();
                    m.inc(daemon_metrics::DEADLINE_SHED);
                    m.inc(daemon_metrics::RESPONSES_5XX);
                }
                let mut shed =
                    Response::error(503, "overloaded: request overstayed its queue deadline");
                shed.retry_after = Some(self.config.retry_after_secs);
                http::write_response(&mut stream, &shed);
                continue;
            }
            self.serve_connection(stream);
        }
    }

    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.config.io_timeout));
        let _ = stream.set_write_timeout(Some(self.config.io_timeout));
        let response = match http::read_request(&mut stream) {
            Ok(request) => self.route(&request),
            Err(why) => Response::error(400, &why),
        };
        {
            let mut m = self.lock_metrics();
            m.inc(daemon_metrics::REQUESTS);
            m.inc(match response.status {
                200..=299 => daemon_metrics::RESPONSES_2XX,
                400..=499 => daemon_metrics::RESPONSES_4XX,
                _ => daemon_metrics::RESPONSES_5XX,
            });
        }
        http::write_response(&mut stream, &response);
    }

    fn route(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/metrics") => Response::text(200, self.metrics_prometheus()),
            ("POST", "/v1/experiments") => self.handle_batch(&request.body),
            ("POST", "/v1/fuzz/run") => self.handle_fuzz_run(&request.body),
            ("POST", "/v1/fuzz/report") => self.handle_fuzz_report(&request.body),
            ("GET", path) if path.starts_with("/v1/results/") => {
                self.handle_result(&path["/v1/results/".len()..])
            }
            ("POST", "/v1/shutdown") => {
                self.shutdown();
                Response::json(200, "{\"status\":\"shutting down\"}\n")
            }
            (
                _,
                "/healthz" | "/metrics" | "/v1/experiments" | "/v1/fuzz/run" | "/v1/fuzz/report"
                | "/v1/shutdown",
            ) => Response::error(405, &format!("wrong method for {}", request.path)),
            _ => Response::error(404, &format!("no route for {}", request.path)),
        }
    }

    fn handle_batch(&self, body: &[u8]) -> Response {
        let specs = match proto::parse_batch(body) {
            Ok(specs) => specs,
            Err(why) => return Response::error(400, &why),
        };
        let requests: Vec<(&str, tagstudy::Config)> = specs
            .iter()
            .map(|s| (s.program.as_str(), s.config))
            .collect();
        let mut session = self.session.lock().unwrap_or_else(|e| e.into_inner());
        // Inline specs carry their own source: register each under its
        // content-derived name before measuring, so the batch rides the same
        // memoizing engine as named benchmarks. Re-registering identical
        // content is a no-op, so repeated batches stay cache hits.
        for spec in &specs {
            if let Some(source) = &spec.source {
                let mut program = tagstudy::InlineProgram::new(source.clone());
                if let Some(heap) = spec.heap_semi_bytes {
                    program = program.with_heap(heap);
                }
                session.register_source(&spec.program, program);
            }
        }
        let result = session.measure_many(&requests);
        // Refresh the lock-free metrics snapshot while we hold the session.
        *self.session_prom.lock().unwrap_or_else(|e| e.into_inner()) = session.metrics_prometheus();
        drop(session);
        match result {
            Ok(measurements) => {
                {
                    let mut m = self.lock_metrics();
                    m.inc(daemon_metrics::BATCHES);
                    m.add(daemon_metrics::EXPERIMENTS, specs.len() as u64);
                }
                let entries: Vec<(ExperimentSpec, StoreKey, tagstudy::Measurement)> = specs
                    .into_iter()
                    .zip(measurements)
                    .map(|(spec, m)| {
                        let source = match &spec.source {
                            Some(text) => text.as_str(),
                            None => {
                                programs::by_name(&spec.program)
                                    .expect("named spec validated against the registry")
                                    .source
                            }
                        };
                        let key = StoreKey::compute(source, &spec.config);
                        (spec, key, m)
                    })
                    .collect();
                Response::json(200, proto::results_json(&entries))
            }
            Err(e) => Response::error(500, &format!("measurement failed: {e}")),
        }
    }

    /// The differential-fuzzing execution path: like a batch, but every spec
    /// is measured **uncached**. The session cache keys on `(program,
    /// config)` with the backend deliberately excluded (results are
    /// backend-independent *by design* — which is exactly the property a
    /// differential fuzzer must not assume), so the cached path would
    /// collapse a classic-vs-fast fan-out into one execution. This route
    /// always compiles and simulates, per spec, on the spec's own backend.
    fn handle_fuzz_run(&self, body: &[u8]) -> Response {
        let specs = match proto::parse_batch(body) {
            Ok(specs) => specs,
            Err(why) => return Response::error(400, &why),
        };
        let mut session = self.session.lock().unwrap_or_else(|e| e.into_inner());
        for spec in &specs {
            if let Some(source) = &spec.source {
                let mut program = tagstudy::InlineProgram::new(source.clone());
                if let Some(heap) = spec.heap_semi_bytes {
                    program = program.with_heap(heap);
                }
                session.register_source(&spec.program, program);
            }
        }
        let mut entries: Vec<(ExperimentSpec, StoreKey, tagstudy::Measurement)> = Vec::new();
        for spec in specs {
            match session.measure_uncached(&spec.program, spec.config) {
                Ok(m) => {
                    let source = match &spec.source {
                        Some(text) => text.as_str(),
                        None => {
                            programs::by_name(&spec.program)
                                .expect("named spec validated against the registry")
                                .source
                        }
                    };
                    let key = StoreKey::compute(source, &spec.config);
                    entries.push((spec, key, m));
                }
                // One failing spec fails the whole batch: the client retries
                // spec-by-spec to pin down which column refused (a refusal
                // *is* a differential signal — e.g. a halt-code mismatch the
                // measurement validator catches before the client could).
                Err(e) => {
                    drop(session);
                    return Response::error(
                        500,
                        &format!("fuzz run failed: {}: {e}", spec.to_spec_string()),
                    );
                }
            }
        }
        drop(session);
        {
            let mut m = self.lock_metrics();
            m.inc(daemon_metrics::FUZZ_RUNS);
            m.add(daemon_metrics::FUZZ_COLUMNS, entries.len() as u64);
        }
        Response::json(200, proto::results_json(&entries))
    }

    /// Campaign telemetry sink: the fuzz driver posts per-batch deltas and
    /// the current coverage/throughput gauges, and `/metrics` republishes
    /// them. Body: `{"programs":Δ,"columns":Δ,"skipped":Δ,"divergences":Δ,
    /// "witnesses":Δ,"coverage_percent":x,"columns_per_second":x}` — every
    /// field optional.
    fn handle_fuzz_report(&self, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        let root = match tagstudy::Json::parse(text) {
            Ok(root) => root,
            Err(why) => return Response::error(400, &why),
        };
        let obj = match root.as_object("fuzz report") {
            Ok(obj) => obj,
            Err(why) => return Response::error(400, &why),
        };
        let counters = [
            ("programs", daemon_metrics::FUZZ_PROGRAMS),
            ("columns", daemon_metrics::FUZZ_COLUMNS),
            ("skipped", daemon_metrics::FUZZ_SKIPPED),
            ("divergences", daemon_metrics::FUZZ_DIVERGENCES),
            ("witnesses", daemon_metrics::FUZZ_WITNESSES),
        ];
        let gauges = [
            ("coverage_percent", daemon_metrics::FUZZ_COVERAGE),
            ("columns_per_second", daemon_metrics::FUZZ_RATE),
        ];
        let mut m = self.lock_metrics();
        for (field, metric) in counters {
            if let Some((_, v)) = obj.iter().find(|(k, _)| k == field) {
                match v.as_u64(field) {
                    Ok(n) => m.add(metric, n),
                    Err(why) => return Response::error(400, &why),
                }
            }
        }
        for (field, metric) in gauges {
            if let Some((_, v)) = obj.iter().find(|(k, _)| k == field) {
                match v.as_f64(field) {
                    Ok(x) => m.set_gauge(metric, x),
                    Err(why) => return Response::error(400, &why),
                }
            }
        }
        Response::json(200, "{\"status\":\"ok\"}\n")
    }

    fn handle_result(&self, key_text: &str) -> Response {
        let key = match StoreKey::from_hex(key_text) {
            Ok(key) => key,
            Err(why) => return Response::error(400, &why),
        };
        let Some(store) = &self.store else {
            return Response::error(404, "daemon is running without a result store");
        };
        match store.raw_record(&key) {
            Some(text) => Response::json(200, text),
            None => Response::error(404, &format!("no record for key {key}")),
        }
    }

    /// The full `/metrics` exposition: session series (fresh if the session
    /// lock is free, last snapshot if a batch is mid-flight), daemon series,
    /// store series.
    fn metrics_prometheus(&self) -> String {
        let session_text = match self.session.try_lock() {
            Ok(session) => {
                let text = session.metrics_prometheus();
                *self.session_prom.lock().unwrap_or_else(|e| e.into_inner()) = text.clone();
                text
            }
            Err(_) => format!(
                "# session metrics: snapshot from before the batch in flight\n{}",
                self.session_prom.lock().unwrap_or_else(|e| e.into_inner())
            ),
        };
        let daemon_text = {
            let mut m = self.lock_metrics().clone();
            m.set_gauge(
                daemon_metrics::QUEUE_DEPTH,
                self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as f64,
            );
            m.to_prometheus()
        };
        let store_text = self.store.as_ref().map_or(String::new(), |store| {
            let s = store.stats();
            format!(
                "store_puts_total {}\nstore_gets_total {}\nstore_hits_total {}\n\
                 store_quarantined_total {}\nstore_records {}\nstore_quarantine_files {}\n",
                s.puts,
                s.gets,
                s.hits,
                s.quarantined,
                store.record_count(),
                store.quarantine_count()
            )
        });
        format!("{session_text}{daemon_text}{store_text}")
    }
}
