//! `tagctl`'s command-line grammar, as a pure parser.
//!
//! Every subcommand rejects unknown flags and stray positionals with a
//! usage-ready message (the binary answers with the usage text and exit 2),
//! mirroring `bench::reject_args` for the bench binaries: a typo must never
//! be silently ignored and mistaken for a run that did what was asked.

use std::path::PathBuf;

use synth::fleet::{fault_from_string, CampaignSpec};

use crate::fleet::FuzzArgs;

/// One parsed `tagctl` invocation.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// `--addr HOST:PORT` override, when given.
    pub addr: Option<String>,
    /// The subcommand.
    pub command: Command,
}

/// The `tagctl` subcommands.
#[derive(Debug, Clone)]
pub enum Command {
    /// Print the usage text (exit 2, like any other usage error).
    Help,
    /// `submit [--json] SPEC...`
    Submit {
        /// Print the raw response document instead of a table.
        json: bool,
        /// The experiment specs, pre-validated against the spec grammar.
        specs: Vec<String>,
    },
    /// `result KEY`
    Result {
        /// The content address to fetch.
        key: String,
    },
    /// `metrics [--watch SECS]`
    Metrics {
        /// Re-scrape forever at this period.
        watch: Option<u64>,
    },
    /// `health`
    Health,
    /// `shutdown`
    Shutdown,
    /// `fuzz [...]` — see [`FuzzArgs`].
    Fuzz(FuzzArgs),
    /// `trace [--chrome] [--slow] [TRACE_ID]`
    Trace {
        /// Dump Chrome trace-event JSON instead of rendered span trees.
        chrome: bool,
        /// Show only the slow-request log.
        slow: bool,
        /// Show one specific trace (32 lowercase hex digits).
        id: Option<String>,
    },
    /// `top [--watch SECS]` — endpoint latency/traffic summary.
    Top {
        /// Re-render forever at this period.
        watch: Option<u64>,
    },
}

/// Parse a `tagctl` argument vector (without the binary name).
///
/// # Errors
///
/// A usage-ready message: unknown subcommand, unknown flag, a flag missing
/// its value, a malformed value, or missing/stray positionals.
pub fn parse(args: &[String]) -> Result<Invocation, String> {
    let mut args = args.iter().map(String::as_str);
    let mut addr = None;
    let mut head = args.next();
    if head == Some("--addr") {
        addr = Some(
            args.next()
                .ok_or("--addr needs a HOST:PORT value")?
                .to_string(),
        );
        head = args.next();
    }
    let rest: Vec<&str> = args.collect();
    let command = match head {
        None | Some("--help" | "-h" | "help") => {
            reject_extras("help", &rest)?;
            Command::Help
        }
        Some("submit") => parse_submit(&rest)?,
        Some("result") => parse_result(&rest)?,
        Some("metrics") => parse_metrics(&rest)?,
        Some("health") => {
            reject_extras("health", &rest)?;
            Command::Health
        }
        Some("shutdown") => {
            reject_extras("shutdown", &rest)?;
            Command::Shutdown
        }
        Some("fuzz") => parse_fuzz(&rest)?,
        Some("trace") => parse_trace(&rest)?,
        Some("top") => parse_top(&rest)?,
        Some(other) => return Err(format!("unknown command {other:?}")),
    };
    Ok(Invocation { addr, command })
}

/// Bare subcommands take nothing at all (the `bench::reject_args` contract).
fn reject_extras(command: &str, rest: &[&str]) -> Result<(), String> {
    match rest.first() {
        None => Ok(()),
        Some(extra) => Err(format!("{command}: unexpected argument {extra:?}")),
    }
}

fn parse_submit(rest: &[&str]) -> Result<Command, String> {
    let mut json = false;
    let mut specs = Vec::new();
    for arg in rest {
        match *arg {
            "--json" => json = true,
            flag if flag.starts_with('-') => {
                return Err(format!("submit: unknown flag {flag:?}"));
            }
            spec => {
                // Validate client-side: a typo earns a usage message, not a
                // daemon round-trip ending in a 400.
                bench::spec::parse_spec(spec).map_err(|why| format!("submit: {why}"))?;
                specs.push(spec.to_string());
            }
        }
    }
    if specs.is_empty() {
        return Err("submit: no specs given".to_string());
    }
    Ok(Command::Submit { json, specs })
}

fn parse_result(rest: &[&str]) -> Result<Command, String> {
    match rest {
        [flag, ..] if flag.starts_with('-') => Err(format!("result: unknown flag {flag:?}")),
        [key] => Ok(Command::Result {
            key: (*key).to_string(),
        }),
        [] => Err("result: want exactly one KEY".to_string()),
        [_, extra, ..] => Err(format!("result: unexpected argument {extra:?}")),
    }
}

fn parse_metrics(rest: &[&str]) -> Result<Command, String> {
    let mut watch = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--watch" => {
                let secs = it.next().ok_or("metrics: --watch needs seconds")?;
                watch = Some(
                    secs.parse()
                        .map_err(|_| format!("metrics: bad --watch value {secs:?}"))?,
                );
            }
            other => return Err(format!("metrics: unexpected argument {other:?}")),
        }
    }
    Ok(Command::Metrics { watch })
}

fn parse_trace(rest: &[&str]) -> Result<Command, String> {
    let mut chrome = false;
    let mut slow = false;
    let mut id = None;
    for arg in rest {
        match *arg {
            "--chrome" => chrome = true,
            "--slow" => slow = true,
            flag if flag.starts_with('-') => return Err(format!("trace: unknown flag {flag:?}")),
            text => {
                if id.is_some() {
                    return Err(format!("trace: unexpected argument {text:?}"));
                }
                // Validate client-side so a typo'd id earns a usage message,
                // not a daemon 400.
                if tagstudy::trace::TraceId::from_hex(text).is_none() {
                    return Err(format!(
                        "trace: bad trace id {text:?} (want 32 lowercase hex digits)"
                    ));
                }
                id = Some(text.to_string());
            }
        }
    }
    if id.is_some() && slow {
        return Err("trace: --slow cannot be combined with a TRACE_ID".to_string());
    }
    Ok(Command::Trace { chrome, slow, id })
}

fn parse_top(rest: &[&str]) -> Result<Command, String> {
    let mut watch = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--watch" => {
                let secs = it.next().ok_or("top: --watch needs seconds")?;
                watch = Some(
                    secs.parse()
                        .map_err(|_| format!("top: bad --watch value {secs:?}"))?,
                );
            }
            other => return Err(format!("top: unexpected argument {other:?}")),
        }
    }
    Ok(Command::Top { watch })
}

fn parse_fuzz(rest: &[&str]) -> Result<Command, String> {
    let mut smoke = false;
    let mut resume = false;
    let mut local = false;
    let mut seed_base: Option<u64> = None;
    let mut axis_points: Option<u32> = None;
    let mut per_cell: Option<u64> = None;
    let mut max_programs: Option<u64> = None;
    let mut backends: Option<Vec<mipsx::Backend>> = None;
    let mut fault = None;
    let mut replay = None;
    let mut witness_dir: Option<PathBuf> = None;

    fn value<'a>(it: &mut std::slice::Iter<'_, &'a str>, flag: &str) -> Result<&'a str, String> {
        it.next()
            .copied()
            .ok_or_else(|| format!("fuzz: {flag} needs a value"))
    }
    fn number<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, String> {
        text.parse()
            .map_err(|_| format!("fuzz: bad {flag} value {text:?}"))
    }

    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--smoke" => smoke = true,
            "--resume" => resume = true,
            "--local" => local = true,
            "--seed-base" => {
                seed_base = Some(number("--seed-base", value(&mut it, "--seed-base")?)?);
            }
            "--axis-points" => {
                axis_points = Some(number("--axis-points", value(&mut it, "--axis-points")?)?);
            }
            "--per-cell" => per_cell = Some(number("--per-cell", value(&mut it, "--per-cell")?)?),
            "--max-programs" => {
                max_programs = Some(number("--max-programs", value(&mut it, "--max-programs")?)?);
            }
            "--backends" => {
                let list = value(&mut it, "--backends")?
                    .split(',')
                    .map(|name| {
                        bench::spec::parse_backend(name).map_err(|why| format!("fuzz: {why}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                backends = Some(list);
            }
            "--inject-fault" => {
                fault = Some(
                    fault_from_string(value(&mut it, "--inject-fault")?)
                        .map_err(|why| format!("fuzz: {why}"))?,
                );
            }
            "--replay" => replay = Some(value(&mut it, "--replay")?.to_string()),
            "--witness-dir" => witness_dir = Some(PathBuf::from(value(&mut it, "--witness-dir")?)),
            flag if flag.starts_with('-') => return Err(format!("fuzz: unknown flag {flag:?}")),
            other => return Err(format!("fuzz: unexpected argument {other:?}")),
        }
    }

    let mut spec = if smoke {
        CampaignSpec::smoke()
    } else {
        CampaignSpec::full()
    };
    if let Some(v) = seed_base {
        spec.seed_base = v;
    }
    if let Some(v) = axis_points {
        spec.axis_points = v;
    }
    if let Some(v) = per_cell {
        spec.per_cell = v;
    }
    spec.max_programs = max_programs;
    if let Some(v) = backends {
        if v.is_empty() {
            return Err("fuzz: --backends names no backends".to_string());
        }
        spec.backends = v;
    }
    spec.fault = fault;
    // A fault campaign's job is to prove the fleet catches a planted bug;
    // the first archived witness is that proof, so stop there.
    spec.stop_on_witness = fault.is_some();

    Ok(Command::Fuzz(FuzzArgs {
        spec,
        resume,
        witness_dir: witness_dir.unwrap_or_else(|| PathBuf::from("witnesses")),
        local,
        replay,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mipsx::{Backend, Fault};

    fn parse_ok(args: &[&str]) -> Invocation {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse(&owned).unwrap_or_else(|why| panic!("{args:?}: {why}"))
    }

    fn parse_err(args: &[&str]) -> String {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse(&owned).expect_err(&format!("{args:?} should be rejected"))
    }

    #[test]
    fn addr_override_and_help() {
        let inv = parse_ok(&["--addr", "10.0.0.1:80", "health"]);
        assert_eq!(inv.addr.as_deref(), Some("10.0.0.1:80"));
        assert!(matches!(inv.command, Command::Health));
        assert!(matches!(parse_ok(&[]).command, Command::Help));
        assert!(matches!(parse_ok(&["--help"]).command, Command::Help));
        assert!(parse_err(&["--addr"]).contains("--addr needs"));
        assert!(parse_err(&["frobnicate"]).contains("unknown command"));
    }

    #[test]
    fn submit_validates_specs_and_rejects_unknown_flags() {
        let inv = parse_ok(&["submit", "--json", "frl", "trav:low2:none:tagbr"]);
        let Command::Submit { json, specs } = inv.command else {
            panic!("not a submit");
        };
        assert!(json);
        assert_eq!(specs, ["frl", "trav:low2:none:tagbr"]);
        assert!(parse_err(&["submit"]).contains("no specs"));
        assert!(parse_err(&["submit", "--jsno", "frl"]).contains("unknown flag"));
        assert!(parse_err(&["submit", "frl:turbo9"]).contains("unknown"));
    }

    #[test]
    fn result_wants_exactly_one_key() {
        let inv = parse_ok(&["result", "abc123"]);
        assert!(matches!(inv.command, Command::Result { key } if key == "abc123"));
        assert!(parse_err(&["result"]).contains("exactly one KEY"));
        assert!(parse_err(&["result", "a", "b"]).contains("unexpected argument"));
        assert!(parse_err(&["result", "--raw"]).contains("unknown flag"));
    }

    #[test]
    fn metrics_watch_is_strict() {
        assert!(matches!(
            parse_ok(&["metrics"]).command,
            Command::Metrics { watch: None }
        ));
        assert!(matches!(
            parse_ok(&["metrics", "--watch", "5"]).command,
            Command::Metrics { watch: Some(5) }
        ));
        assert!(parse_err(&["metrics", "--watch"]).contains("needs seconds"));
        assert!(parse_err(&["metrics", "--watch", "soon"]).contains("bad --watch"));
        assert!(parse_err(&["metrics", "--wach"]).contains("unexpected argument"));
    }

    #[test]
    fn bare_commands_take_no_arguments() {
        for command in ["health", "shutdown"] {
            assert!(matches!(
                parse_ok(&[command]).command,
                Command::Health | Command::Shutdown
            ));
            let err = parse_err(&[command, "--force"]);
            assert!(err.contains("unexpected argument"), "{err}");
        }
    }

    #[test]
    fn trace_flags_and_id_validation() {
        assert!(matches!(
            parse_ok(&["trace"]).command,
            Command::Trace {
                chrome: false,
                slow: false,
                id: None
            }
        ));
        assert!(matches!(
            parse_ok(&["trace", "--chrome"]).command,
            Command::Trace { chrome: true, .. }
        ));
        assert!(matches!(
            parse_ok(&["trace", "--slow"]).command,
            Command::Trace { slow: true, .. }
        ));
        let id = "0123456789abcdef0123456789abcdef";
        let Command::Trace { id: parsed, .. } = parse_ok(&["trace", id]).command else {
            panic!("not a trace");
        };
        assert_eq!(parsed.as_deref(), Some(id));
        assert!(parse_err(&["trace", "nothex"]).contains("bad trace id"));
        assert!(parse_err(&["trace", id, id]).contains("unexpected argument"));
        assert!(parse_err(&["trace", "--slow", id]).contains("cannot be combined"));
        assert!(parse_err(&["trace", "--deep"]).contains("unknown flag"));
    }

    #[test]
    fn top_watch_is_strict() {
        assert!(matches!(
            parse_ok(&["top"]).command,
            Command::Top { watch: None }
        ));
        assert!(matches!(
            parse_ok(&["top", "--watch", "2"]).command,
            Command::Top { watch: Some(2) }
        ));
        assert!(parse_err(&["top", "--watch"]).contains("needs seconds"));
        assert!(parse_err(&["top", "now"]).contains("unexpected argument"));
    }

    #[test]
    fn fuzz_flags_shape_the_campaign() {
        let inv = parse_ok(&[
            "fuzz",
            "--smoke",
            "--resume",
            "--local",
            "--seed-base",
            "7",
            "--per-cell",
            "3",
            "--backends",
            "classic,fast",
            "--witness-dir",
            "/tmp/w",
            "--max-programs",
            "9",
        ]);
        let Command::Fuzz(args) = inv.command else {
            panic!("not a fuzz");
        };
        assert!(args.resume && args.local && args.replay.is_none());
        assert_eq!(args.witness_dir, PathBuf::from("/tmp/w"));
        assert_eq!(args.spec.seed_base, 7);
        assert_eq!(args.spec.per_cell, 3);
        assert_eq!(args.spec.axis_points, CampaignSpec::smoke().axis_points);
        assert_eq!(args.spec.backends, [Backend::Classic, Backend::Fast]);
        assert_eq!(args.spec.max_programs, Some(9));
        assert!(args.spec.fault.is_none() && !args.spec.stop_on_witness);
    }

    #[test]
    fn fuzz_fault_and_replay_modes() {
        let Command::Fuzz(args) =
            parse_ok(&["fuzz", "--inject-fault", "branch-invert:1"]).command
        else {
            panic!("not a fuzz");
        };
        assert_eq!(args.spec.fault, Some(Fault::BranchInvert { nth: 1 }));
        assert!(args.spec.stop_on_witness, "fault mode stops at first witness");

        let Command::Fuzz(args) = parse_ok(&["fuzz", "--replay", "deadbeef"]).command else {
            panic!("not a fuzz");
        };
        assert_eq!(args.replay.as_deref(), Some("deadbeef"));

        assert!(parse_err(&["fuzz", "--inject-fault", "rowhammer:1"]).contains("unknown fault"));
        assert!(parse_err(&["fuzz", "--fuzz-harder"]).contains("unknown flag"));
        assert!(parse_err(&["fuzz", "now"]).contains("unexpected argument"));
        assert!(parse_err(&["fuzz", "--backends", "classic,turbo"]).contains("unknown backend"));
        assert!(parse_err(&["fuzz", "--per-cell", "many"]).contains("bad --per-cell"));
        assert!(parse_err(&["fuzz", "--seed-base"]).contains("needs a value"));
    }
}
