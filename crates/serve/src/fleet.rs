//! The daemon half of the differential-fuzzing fleet: a [`Runner`] that
//! executes matrix columns on a live `tagstudyd`, and the `tagctl fuzz`
//! campaign driver shared by the CLI and the end-to-end tests.
//!
//! The daemon path exists to fuzz the *service*, not just the simulators: a
//! campaign driven through [`DaemonRunner`] exercises the wire protocol, the
//! session engine, and the uncached `/v1/fuzz/run` execution path with the
//! same oracle that checks the simulators themselves. Campaign telemetry is
//! pushed back to the daemon (`/v1/fuzz/report`) so `/metrics` shows
//! throughput, divergences, and coverage while a fleet is running.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use store::fuzz::FuzzStore;
use store::StoreKey;
use synth::fleet::{
    replay_witness, run_campaign, CampaignSpec, Column, ColumnOutcome, LocalRunner, Progress,
    RunError, Runner,
};

use tagstudy::trace::{TraceContext, TRACEPARENT_HEADER};

use crate::http::{fetch, fetch_headers, json_string};
use crate::proto;

/// Client-side timeout per daemon request. Generous: a fuzz batch simulates
/// up to 48 columns of one program on a possibly-loaded machine.
const RUN_TIMEOUT: Duration = Duration::from_secs(600);

/// Timeout for telemetry pushes — best-effort, never worth stalling the
/// campaign for.
const REPORT_TIMEOUT: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------------
// DaemonRunner
// ---------------------------------------------------------------------------

/// Executes matrix columns by POSTing inline fuzz batches to a live
/// `tagstudyd` (`/v1/fuzz/run`, the uncached execution path).
#[derive(Debug, Clone)]
pub struct DaemonRunner {
    addr: String,
    /// The campaign's originating trace context: every fuzz batch carries it
    /// as a `traceparent`, so the daemon-side request trees of one campaign
    /// all share a single trace id.
    ctx: TraceContext,
}

impl DaemonRunner {
    /// A runner talking to the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> DaemonRunner {
        DaemonRunner {
            addr: addr.into(),
            ctx: TraceContext::fresh(),
        }
    }

    /// The campaign's trace context (one id for the whole campaign).
    pub fn trace(&self) -> TraceContext {
        self.ctx
    }

    /// One column as an inline experiment object. The source rides in the
    /// batch itself; the daemon derives the `inline:<hash>` name, so every
    /// column of one program shares a single registered source.
    fn spec_json(source: &str, column: &Column) -> String {
        format!(
            "{{\"source\":{},\"scheme\":{},\"checking\":{},\"hw\":{},\"backend\":{}}}",
            json_string(source),
            json_string(&column.scheme),
            json_string(&column.checking),
            json_string(&column.hw),
            json_string(&column.backend),
        )
    }

    fn batch_body(source: &str, columns: &[Column]) -> String {
        let specs: Vec<String> = columns
            .iter()
            .map(|c| DaemonRunner::spec_json(source, c))
            .collect();
        format!("{{\"experiments\":[{}]}}", specs.join(","))
    }

    /// Run one column in its own request — the fallback that pins a batch
    /// failure to the column(s) that refused.
    fn run_one(&self, source: &str, column: &Column) -> Result<ColumnOutcome, RunError> {
        let body = DaemonRunner::batch_body(source, std::slice::from_ref(column));
        match fetch_headers(
            &self.addr,
            "POST",
            "/v1/fuzz/run",
            body.as_bytes(),
            RUN_TIMEOUT,
            &[(TRACEPARENT_HEADER, &self.ctx.to_traceparent())],
        ) {
            Ok((200, bytes)) => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|_| RunError::Sim("daemon response is not UTF-8".to_string()))?;
                let mut results = proto::parse_results(text).map_err(RunError::Sim)?;
                if results.len() != 1 {
                    return Err(RunError::Sim(format!(
                        "daemon returned {} results for one spec",
                        results.len()
                    )));
                }
                let (_, _, m) = results.remove(0);
                Ok(ColumnOutcome {
                    halt_code: m.halt_code,
                    output: m.output,
                    stats: m.stats,
                })
            }
            Ok((status, bytes)) => Err(RunError::Sim(format!(
                "daemon answered {status}: {}",
                String::from_utf8_lossy(&bytes).trim_end()
            ))),
            Err(why) => Err(RunError::Sim(why)),
        }
    }
}

impl Runner for DaemonRunner {
    fn run(&mut self, source: &str, columns: &[Column]) -> Vec<Result<ColumnOutcome, RunError>> {
        if columns.is_empty() {
            return Vec::new();
        }
        // Fast path: all columns in one batch. The daemon fails a batch whole
        // (a refused column — e.g. an unexpected halt code — 500s everything),
        // so on any failure fall back to one request per column; the columns
        // that still refuse become their own differential signal.
        let body = DaemonRunner::batch_body(source, columns);
        if let Ok((200, bytes)) = fetch_headers(
            &self.addr,
            "POST",
            "/v1/fuzz/run",
            body.as_bytes(),
            RUN_TIMEOUT,
            &[(TRACEPARENT_HEADER, &self.ctx.to_traceparent())],
        ) {
            if let Some(outcomes) = std::str::from_utf8(&bytes)
                .ok()
                .and_then(|text| proto::parse_results(text).ok())
                .filter(|results| results.len() == columns.len())
            {
                return outcomes
                    .into_iter()
                    .map(|(_, _, m)| {
                        Ok(ColumnOutcome {
                            halt_code: m.halt_code,
                            output: m.output,
                            stats: m.stats,
                        })
                    })
                    .collect();
            }
        }
        columns
            .iter()
            .map(|column| self.run_one(source, column))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Pushes per-program campaign deltas to the daemon's `/v1/fuzz/report`,
/// where they surface on `/metrics`. Best-effort: a failed push is dropped
/// (the campaign's own books are the source of truth).
struct Telemetry {
    addr: String,
    started: Instant,
    last_programs: u64,
    last_skipped: u64,
    last_divergences: u64,
    last_witnesses: u64,
}

impl Telemetry {
    fn new(addr: &str) -> Telemetry {
        Telemetry {
            addr: addr.to_string(),
            started: Instant::now(),
            last_programs: 0,
            last_skipped: 0,
            last_divergences: 0,
            last_witnesses: 0,
        }
    }

    fn push(&mut self, p: &Progress<'_>) {
        // Column totals are counted by the daemon itself (every /v1/fuzz/run
        // increments them), so the report carries only driver-side facts.
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            p.columns_run as f64 / elapsed
        } else {
            0.0
        };
        let body = format!(
            "{{\"programs\":{},\"skipped\":{},\"divergences\":{},\"witnesses\":{},\
             \"coverage_percent\":{:.4},\"columns_per_second\":{rate:.4}}}",
            p.programs - self.last_programs,
            p.columns_skipped - self.last_skipped,
            p.divergences - self.last_divergences,
            p.witnesses - self.last_witnesses,
            p.coverage_percent,
        );
        self.last_programs = p.programs;
        self.last_skipped = p.columns_skipped;
        self.last_divergences = p.divergences;
        self.last_witnesses = p.witnesses;
        let _ = fetch(
            &self.addr,
            "POST",
            "/v1/fuzz/report",
            body.as_bytes(),
            REPORT_TIMEOUT,
        );
    }
}

// ---------------------------------------------------------------------------
// The tagctl fuzz driver
// ---------------------------------------------------------------------------

/// Everything `tagctl fuzz` parses from its command line.
#[derive(Debug, Clone)]
pub struct FuzzArgs {
    /// The campaign to run.
    pub spec: CampaignSpec,
    /// Resume from the persisted coverage ledger instead of starting fresh.
    pub resume: bool,
    /// Root of the witness corpus and coverage ledger.
    pub witness_dir: PathBuf,
    /// Run in-process instead of through the daemon.
    pub local: bool,
    /// Replay one archived witness (by store key) instead of campaigning.
    pub replay: Option<String>,
}

/// Run `tagctl fuzz`: a campaign (daemon-backed unless `--local` or fault
/// mode), or a single witness replay. Returns the process exit code: 0 for a
/// clean campaign (or, in fault mode, for a campaign that caught its planted
/// fault; in replay mode, for a witness that still diverges), 1 otherwise.
pub fn run_fuzz(addr: &str, args: &FuzzArgs) -> i32 {
    let store = match FuzzStore::open(&args.witness_dir) {
        Ok(store) => store,
        Err(why) => {
            eprintln!("tagctl fuzz: opening {}: {why}", args.witness_dir.display());
            return 1;
        }
    };
    if let Some(key) = &args.replay {
        return replay(&store, key);
    }

    // Fault campaigns must run locally: only the in-process reference
    // executor has fault injection, and a healthy daemon would (correctly)
    // refuse to be the broken half of the diff.
    let use_daemon = !args.local && args.spec.fault.is_none();
    let mut local_runner = LocalRunner {
        fault: args.spec.fault,
        trace: None,
    };
    let mut daemon_runner = DaemonRunner::new(addr);
    if use_daemon {
        // One trace id for the whole campaign: every daemon-side request
        // tree is findable with `tagctl trace <id>`.
        eprintln!("[fuzz] trace {}", daemon_runner.trace().trace);
    }
    let runner: &mut dyn Runner = if use_daemon {
        &mut daemon_runner
    } else {
        &mut local_runner
    };
    let mut telemetry = use_daemon.then(|| Telemetry::new(addr));

    let mut progress = |p: &Progress<'_>| {
        eprintln!(
            "[fuzz] cell={} programs={} columns={} skipped={} divergences={} \
             witnesses={} coverage={:.1}%",
            p.cell,
            p.programs,
            p.columns_run,
            p.columns_skipped,
            p.divergences,
            p.witnesses,
            p.coverage_percent
        );
        if let Some(t) = telemetry.as_mut() {
            t.push(p);
        }
    };

    let report = match run_campaign(&args.spec, &store, runner, args.resume, &mut progress) {
        Ok(report) => report,
        Err(why) => {
            eprintln!("tagctl fuzz: {why}");
            return 1;
        }
    };

    println!("campaign: {}", report.campaign);
    println!(
        "programs={} columns={} skipped={} resumed-from={} divergences={} \
         witnesses={} coverage={:.1}% complete={}",
        report.programs,
        report.columns_run,
        report.columns_skipped,
        report.resumed_from,
        report.divergences,
        report.witnesses.len(),
        report.coverage_percent,
        report.complete
    );
    for key in &report.witnesses {
        println!("witness {key}");
    }

    if args.spec.fault.is_some() {
        // Self-test mode: the planted fault must be caught and archived.
        if report.witnesses.is_empty() {
            eprintln!("tagctl fuzz: planted fault escaped the fleet");
            return 1;
        }
        0
    } else {
        i32::from(report.divergences != 0)
    }
}

/// Replay one archived witness. Exit 0 iff it still diverges (the corpus's
/// regression contract: a fixed bug flips its witnesses to "no longer
/// diverges", exit 1).
fn replay(store: &FuzzStore, key_text: &str) -> i32 {
    let key = match StoreKey::from_hex(key_text) {
        Ok(key) => key,
        Err(why) => {
            eprintln!("tagctl fuzz: {why}");
            return 1;
        }
    };
    let witness = match store.get_witness(&key) {
        Some(witness) => witness,
        None => {
            eprintln!("tagctl fuzz: no witness {key_text} in the corpus");
            return 1;
        }
    };
    match replay_witness(&witness) {
        Ok(diverges) => {
            println!(
                "witness {key_text} column={} kind={} forms={} still-diverges={diverges}",
                witness.column, witness.kind, witness.forms
            );
            i32::from(!diverges)
        }
        Err(why) => {
            eprintln!("tagctl fuzz: replaying {key_text}: {why}");
            1
        }
    }
}
