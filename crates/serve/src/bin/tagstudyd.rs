//! `tagstudyd` — serve tag-study experiments over HTTP with a persistent
//! result cache.
//!
//! ```text
//! tagstudyd [--addr HOST:PORT] [--cache-dir DIR] [--no-cache]
//!           [--http-workers N] [--queue N] [--queue-deadline-secs N]
//!           [--trace-capacity N] [--slow-ms N]
//! ```

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use serve::{Server, ServerConfig};
use store::ResultStore;

const DEFAULT_ADDR: &str = "127.0.0.1:7099";
const DEFAULT_CACHE_DIR: &str = "tagstudy-cache";

fn usage() -> ! {
    eprintln!(
        "usage: tagstudyd [--addr HOST:PORT] [--cache-dir DIR] [--no-cache]\n\
         \u{20}                [--http-workers N] [--queue N] [--queue-deadline-secs N]\n\
         \u{20}                [--trace-capacity N] [--slow-ms N]\n\
         \n\
         Serve tag-study experiments over HTTP, write-through caching every\n\
         measurement in DIR (default {DEFAULT_CACHE_DIR}) so a restarted daemon\n\
         answers known batches without simulating. Default address {DEFAULT_ADDR}.\n\
         \n\
         Every request is traced end-to-end; the flight recorder keeps the\n\
         last --trace-capacity completed traces plus requests slower than\n\
         --slow-ms (inspect with `tagctl trace` / GET /v1/debug/trace).\n\
         \n\
         Endpoints: POST /v1/experiments, GET /v1/results/{{key}}, GET /metrics,\n\
         GET /healthz, GET /v1/debug/trace, POST /v1/shutdown. See\n\
         EXPERIMENTS.md for the protocol."
    );
    exit(2);
}

fn parse_or_usage<T, E: std::fmt::Display>(what: &str, r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("tagstudyd: bad {what}: {e}\n");
        usage()
    })
}

fn main() {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut cache_dir = Some(DEFAULT_CACHE_DIR.to_string());
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("tagstudyd: {flag} needs a value\n");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            "--no-cache" => cache_dir = None,
            "--http-workers" => {
                config.http_workers =
                    parse_or_usage("--http-workers", value("--http-workers").parse::<usize>());
            }
            "--queue" => {
                config.queue_capacity =
                    parse_or_usage("--queue", value("--queue").parse::<usize>());
            }
            "--queue-deadline-secs" => {
                config.queue_deadline = Duration::from_secs(parse_or_usage(
                    "--queue-deadline-secs",
                    value("--queue-deadline-secs").parse::<u64>(),
                ));
            }
            "--trace-capacity" => {
                config.trace_capacity =
                    parse_or_usage("--trace-capacity", value("--trace-capacity").parse::<usize>());
            }
            "--slow-ms" => {
                config.slow_threshold = Duration::from_millis(parse_or_usage(
                    "--slow-ms",
                    value("--slow-ms").parse::<u64>(),
                ));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("tagstudyd: unknown argument {other:?}\n");
                usage();
            }
        }
    }

    let store = cache_dir.map(|dir| {
        let store = ResultStore::open(&dir).unwrap_or_else(|e| {
            eprintln!("tagstudyd: cannot open cache dir {dir:?}: {e}");
            exit(1);
        });
        eprintln!(
            "[tagstudyd] cache dir {dir} ({} records)",
            store.record_count()
        );
        Arc::new(store)
    });

    let (server, warm) = Server::start(&addr, store, config).unwrap_or_else(|e| {
        eprintln!("tagstudyd: cannot bind {addr}: {e}");
        exit(1);
    });
    if warm.seeded > 0 || warm.skipped > 0 {
        eprintln!(
            "[tagstudyd] warm start: {} measurements preloaded, {} stale records skipped",
            warm.seeded, warm.skipped
        );
    }
    // The one stdout line, for humans and scripts alike (CI greps it).
    println!("tagstudyd listening on http://{}", server.addr());
    server.join();
    eprintln!("[tagstudyd] drained and flushed; bye");
}
