//! `tagctl` — the command-line client for `tagstudyd`.
//!
//! ```text
//! tagctl [--addr HOST:PORT] submit SPEC...     measure a batch, print a table
//! tagctl [--addr HOST:PORT] submit --json SPEC...   ... print the raw response
//! tagctl [--addr HOST:PORT] result KEY         fetch the raw store record
//! tagctl [--addr HOST:PORT] metrics [--watch SECS]  scrape /metrics (repeatedly)
//! tagctl [--addr HOST:PORT] health             liveness probe
//! tagctl [--addr HOST:PORT] shutdown           ask the daemon to drain and exit
//! tagctl [--addr HOST:PORT] fuzz [...]         drive a differential-fuzzing campaign
//! tagctl [--addr HOST:PORT] trace [--chrome|--slow|ID]  inspect the flight recorder
//! tagctl [--addr HOST:PORT] top [--watch SECS] per-endpoint latency summary
//! ```
//!
//! The argument grammar lives in [`serve::cli`]; this binary only does I/O.
//!
//! `submit` originates a trace: it sends a `traceparent` header so the
//! daemon's spans join the client's trace id, and prints that id to stderr
//! (stdout stays byte-stable for scripts that diff it).

use std::process::exit;
use std::time::Duration;

use serve::cli::{self, Command};
use serve::fleet;
use serve::http::{fetch, fetch_headers, json_string};
use serve::proto;
use tagstudy::trace::{
    chrome_trace_json, RecorderSnapshot, TraceContext, TraceRecord, TRACEPARENT_HEADER,
};

const DEFAULT_ADDR: &str = "127.0.0.1:7099";
const TIMEOUT: Duration = Duration::from_secs(600);

fn usage() -> ! {
    eprintln!(
        "usage: tagctl [--addr HOST:PORT] <command>\n\
         \n\
         commands:\n\
         \u{20} submit [--json] SPEC...   measure a batch and print the results\n\
         \u{20} result KEY                fetch the raw store record for a content address\n\
         \u{20} metrics [--watch SECS]    scrape /metrics (with --watch: forever)\n\
         \u{20} health                    liveness probe (exit 0 iff the daemon answers ok)\n\
         \u{20} shutdown                  ask the daemon to drain in-flight work and exit\n\
         \u{20} fuzz [--smoke] [--resume] [--local] [--witness-dir DIR]\n\
         \u{20}      [--seed-base N] [--axis-points N] [--per-cell N] [--max-programs N]\n\
         \u{20}      [--backends a,b] [--inject-fault NAME:N] [--replay KEY]\n\
         \u{20}                           differential-fuzz the matrix through the daemon\n\
         \u{20} trace [--chrome] [--slow] [TRACE_ID]\n\
         \u{20}                           dump the daemon's flight recorder: recent request\n\
         \u{20}                           span trees, the slow log, one trace by id, or\n\
         \u{20}                           Chrome trace-event JSON for chrome://tracing\n\
         \u{20} top [--watch SECS]        per-endpoint request counts and p50/p90/p99 latency\n\
         \n\
         Default address {DEFAULT_ADDR} (override with --addr or TAGSTUDYD_ADDR).\n\
         {}",
        bench::spec::spec_grammar()
    );
    exit(2);
}

fn die(message: &str) -> ! {
    eprintln!("tagctl: {message}");
    exit(1);
}

/// GET/POST and fail loudly on transport errors; non-2xx is returned to the
/// caller (some commands want to print the error body).
fn call(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    match fetch(addr, method, path, body, TIMEOUT) {
        Ok((status, bytes)) => (status, String::from_utf8_lossy(&bytes).into_owned()),
        Err(why) => die(&why),
    }
}

fn submit(addr: &str, raw_json: bool, specs: &[String]) {
    let body = format!(
        "{{\"experiments\":[{}]}}",
        specs
            .iter()
            .map(|s| json_string(s))
            .collect::<Vec<_>>()
            .join(",")
    );
    // Originate the trace here: the daemon's request span parents under this
    // context, so `tagctl trace <id>` finds the whole server-side tree. The
    // id goes to stderr — stdout is the data channel and stays diffable.
    let ctx = TraceContext::fresh();
    eprintln!("tagctl: trace {}", ctx.trace);
    let (status, text) = match fetch_headers(
        addr,
        "POST",
        "/v1/experiments",
        body.as_bytes(),
        TIMEOUT,
        &[(TRACEPARENT_HEADER, &ctx.to_traceparent())],
    ) {
        Ok((status, bytes)) => (status, String::from_utf8_lossy(&bytes).into_owned()),
        Err(why) => die(&why),
    };
    if status != 200 {
        die(&format!("daemon answered {status}: {}", text.trim_end()));
    }
    if raw_json {
        print!("{text}");
        return;
    }
    let results = proto::parse_results(&text).unwrap_or_else(|why| die(&why));
    println!(
        "{:<34} {:>14} {:>12} {:>6}  KEY",
        "SPEC", "CYCLES", "INSNS", "CPI"
    );
    for (spec, key, m) in &results {
        let cycles = m.stats.cycles;
        let insns = m.stats.committed;
        let cpi = if insns == 0 {
            0.0
        } else {
            cycles as f64 / insns as f64
        };
        println!("{spec:<34} {cycles:>14} {insns:>12} {cpi:>6.3}  {key}");
    }
}

fn metrics(addr: &str, watch: Option<u64>) {
    loop {
        let (status, text) = call(addr, "GET", "/metrics", b"");
        if status != 200 {
            die(&format!("daemon answered {status}: {}", text.trim_end()));
        }
        print!("{text}");
        let Some(secs) = watch else { return };
        println!("# --- next scrape in {secs}s ---");
        std::thread::sleep(Duration::from_secs(secs));
    }
}

fn trace_cmd(addr: &str, chrome: bool, slow: bool, id: Option<&str>) {
    if let Some(id) = id {
        let (status, text) = call(addr, "GET", &format!("/v1/debug/trace/{id}"), b"");
        if status != 200 {
            die(&format!("daemon answered {status}: {}", text.trim_end()));
        }
        let root = tagstudy::Json::parse(&text).unwrap_or_else(|why| die(&why));
        let record = TraceRecord::from_json(&root).unwrap_or_else(|why| die(&why));
        if chrome {
            print!("{}", chrome_trace_json(&[record]));
        } else {
            print!("{}", record.render_tree());
        }
        return;
    }
    if chrome {
        // The daemon already speaks trace-event JSON; pass it through.
        let (status, text) = call(addr, "GET", "/v1/debug/trace?format=chrome", b"");
        if status != 200 {
            die(&format!("daemon answered {status}: {}", text.trim_end()));
        }
        print!("{text}");
        return;
    }
    let (status, text) = call(addr, "GET", "/v1/debug/trace", b"");
    if status != 200 {
        die(&format!("daemon answered {status}: {}", text.trim_end()));
    }
    let snapshot = RecorderSnapshot::from_json(&text).unwrap_or_else(|why| die(&why));
    println!(
        "flight recorder: {} completed, {} evicted, {} slow (threshold {}ms), {} span(s) dropped",
        snapshot.stats.completed,
        snapshot.stats.evicted,
        snapshot.stats.slow,
        snapshot.slow_threshold_us / 1000,
        snapshot.stats.dropped_spans,
    );
    let traces = if slow {
        &snapshot.slow
    } else {
        &snapshot.recent
    };
    if traces.is_empty() {
        println!("(no {} traces recorded)", if slow { "slow" } else { "recent" });
        return;
    }
    for record in traces {
        println!();
        print!("{}", record.render_tree());
    }
}

/// Seconds → a human duration (the quantile gauges are in seconds).
fn fmt_secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2}s")
    } else if v >= 0.001 {
        format!("{:.2}ms", v * 1000.0)
    } else {
        format!("{:.0}\u{b5}s", v * 1_000_000.0)
    }
}

/// Extract the per-endpoint latency table from one `/metrics` scrape.
fn render_top(metrics: &str) -> String {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<String, (u64, [Option<f64>; 3])> = BTreeMap::new();
    let mut in_flight = 0u64;
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("daemon_requests_in_flight ") {
            in_flight = rest.trim().parse::<f64>().unwrap_or(0.0) as u64;
        } else if let Some(rest) =
            line.strip_prefix("daemon_request_duration_seconds_count{endpoint=\"")
        {
            if let Some((endpoint, value)) = rest.split_once("\"} ") {
                rows.entry(endpoint.to_string()).or_default().0 =
                    value.trim().parse().unwrap_or(0);
            }
        } else if let Some(rest) =
            line.strip_prefix("daemon_request_latency_quantile_seconds{endpoint=\"")
        {
            if let Some((endpoint, rest)) = rest.split_once("\",quantile=\"") {
                if let Some((quantile, value)) = rest.split_once("\"} ") {
                    let slot = match quantile {
                        "0.5" => 0,
                        "0.9" => 1,
                        "0.99" => 2,
                        _ => continue,
                    };
                    rows.entry(endpoint.to_string()).or_default().1[slot] =
                        value.trim().parse().ok();
                }
            }
        }
    }
    let mut out = format!(
        "{} endpoint(s), {} request(s) in flight\n{:<28} {:>8} {:>9} {:>9} {:>9}\n",
        rows.len(),
        in_flight,
        "ENDPOINT",
        "COUNT",
        "P50",
        "P90",
        "P99"
    );
    for (endpoint, (count, quantiles)) in &rows {
        let q = |slot: usize| quantiles[slot].map_or("-".to_string(), fmt_secs);
        out.push_str(&format!(
            "{endpoint:<28} {count:>8} {:>9} {:>9} {:>9}\n",
            q(0),
            q(1),
            q(2)
        ));
    }
    out
}

fn top(addr: &str, watch: Option<u64>) {
    loop {
        let (status, text) = call(addr, "GET", "/metrics", b"");
        if status != 200 {
            die(&format!("daemon answered {status}: {}", text.trim_end()));
        }
        print!("{}", render_top(&text));
        let Some(secs) = watch else { return };
        println!("--- next refresh in {secs}s ---");
        std::thread::sleep(Duration::from_secs(secs));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = cli::parse(&args).unwrap_or_else(|why| {
        eprintln!("tagctl: {why}\n");
        usage();
    });
    let addr = invocation
        .addr
        .or_else(|| std::env::var("TAGSTUDYD_ADDR").ok())
        .unwrap_or_else(|| DEFAULT_ADDR.to_string());
    match invocation.command {
        Command::Help => usage(),
        Command::Submit { json, specs } => submit(&addr, json, &specs),
        Command::Result { key } => {
            let (status, text) = call(&addr, "GET", &format!("/v1/results/{key}"), b"");
            if status != 200 {
                die(&format!("daemon answered {status}: {}", text.trim_end()));
            }
            print!("{text}");
        }
        Command::Metrics { watch } => metrics(&addr, watch),
        Command::Health => {
            let (status, text) = call(&addr, "GET", "/healthz", b"");
            print!("{text}");
            exit(i32::from(status != 200));
        }
        Command::Shutdown => {
            let (status, text) = call(&addr, "POST", "/v1/shutdown", b"");
            print!("{text}");
            exit(i32::from(status != 200));
        }
        Command::Fuzz(fuzz_args) => exit(fleet::run_fuzz(&addr, &fuzz_args)),
        Command::Trace { chrome, slow, id } => trace_cmd(&addr, chrome, slow, id.as_deref()),
        Command::Top { watch } => top(&addr, watch),
    }
}
