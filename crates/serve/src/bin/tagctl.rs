//! `tagctl` — the command-line client for `tagstudyd`.
//!
//! ```text
//! tagctl [--addr HOST:PORT] submit SPEC...     measure a batch, print a table
//! tagctl [--addr HOST:PORT] submit --json SPEC...   ... print the raw response
//! tagctl [--addr HOST:PORT] result KEY         fetch the raw store record
//! tagctl [--addr HOST:PORT] metrics [--watch SECS]  scrape /metrics (repeatedly)
//! tagctl [--addr HOST:PORT] health             liveness probe
//! tagctl [--addr HOST:PORT] shutdown           ask the daemon to drain and exit
//! ```

use std::process::exit;
use std::time::Duration;

use serve::http::{fetch, json_string};
use serve::proto;

const DEFAULT_ADDR: &str = "127.0.0.1:7099";
const TIMEOUT: Duration = Duration::from_secs(600);

fn usage() -> ! {
    eprintln!(
        "usage: tagctl [--addr HOST:PORT] <command>\n\
         \n\
         commands:\n\
         \u{20} submit [--json] SPEC...   measure a batch and print the results\n\
         \u{20} result KEY                fetch the raw store record for a content address\n\
         \u{20} metrics [--watch SECS]    scrape /metrics (with --watch: forever)\n\
         \u{20} health                    liveness probe (exit 0 iff the daemon answers ok)\n\
         \u{20} shutdown                  ask the daemon to drain in-flight work and exit\n\
         \n\
         Default address {DEFAULT_ADDR} (override with --addr or TAGSTUDYD_ADDR).\n\
         {}",
        bench::spec::spec_grammar()
    );
    exit(2);
}

fn die(message: &str) -> ! {
    eprintln!("tagctl: {message}");
    exit(1);
}

/// GET/POST and fail loudly on transport errors; non-2xx is returned to the
/// caller (some commands want to print the error body).
fn call(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    match fetch(addr, method, path, body, TIMEOUT) {
        Ok((status, bytes)) => (status, String::from_utf8_lossy(&bytes).into_owned()),
        Err(why) => die(&why),
    }
}

fn submit(addr: &str, args: &[String]) {
    let mut raw_json = false;
    let mut specs: Vec<&str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => raw_json = true,
            other => specs.push(other),
        }
    }
    if specs.is_empty() {
        eprintln!("tagctl submit: no specs given\n");
        usage();
    }
    // Validate client-side first: a typo earns a usage message, not a 400.
    for spec in &specs {
        if let Err(why) = bench::spec::parse_spec(spec) {
            eprintln!("tagctl submit: {why}\n\n{}", bench::spec::spec_grammar());
            exit(2);
        }
    }
    let body = format!(
        "{{\"experiments\":[{}]}}",
        specs
            .iter()
            .map(|s| json_string(s))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, text) = call(addr, "POST", "/v1/experiments", body.as_bytes());
    if status != 200 {
        die(&format!("daemon answered {status}: {}", text.trim_end()));
    }
    if raw_json {
        print!("{text}");
        return;
    }
    let results = proto::parse_results(&text).unwrap_or_else(|why| die(&why));
    println!(
        "{:<34} {:>14} {:>12} {:>6}  KEY",
        "SPEC", "CYCLES", "INSNS", "CPI"
    );
    for (spec, key, m) in &results {
        let cycles = m.stats.cycles;
        let insns = m.stats.committed;
        let cpi = if insns == 0 {
            0.0
        } else {
            cycles as f64 / insns as f64
        };
        println!("{spec:<34} {cycles:>14} {insns:>12} {cpi:>6.3}  {key}");
    }
}

fn metrics(addr: &str, args: &[String]) {
    let mut watch: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--watch" => {
                let secs = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("tagctl metrics: --watch needs seconds\n");
                    usage()
                });
                watch = Some(
                    secs.parse()
                        .unwrap_or_else(|_| die(&format!("bad --watch value {secs:?}"))),
                );
                i += 2;
            }
            other => die(&format!("metrics: unexpected argument {other:?}")),
        }
    }
    loop {
        let (status, text) = call(addr, "GET", "/metrics", b"");
        if status != 200 {
            die(&format!("daemon answered {status}: {}", text.trim_end()));
        }
        print!("{text}");
        let Some(secs) = watch else { return };
        println!("# --- next scrape in {secs}s ---");
        std::thread::sleep(Duration::from_secs(secs));
    }
}

fn main() {
    let mut addr = std::env::var("TAGSTUDYD_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            eprintln!("tagctl: --addr needs a value\n");
            usage();
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let Some(command) = args.first().cloned() else {
        usage()
    };
    let rest = &args[1..];
    match command.as_str() {
        "submit" => submit(&addr, rest),
        "result" => {
            let [key] = rest else {
                eprintln!("tagctl result: want exactly one KEY\n");
                usage();
            };
            let (status, text) = call(&addr, "GET", &format!("/v1/results/{key}"), b"");
            if status != 200 {
                die(&format!("daemon answered {status}: {}", text.trim_end()));
            }
            print!("{text}");
        }
        "metrics" => metrics(&addr, rest),
        "health" => {
            let (status, text) = call(&addr, "GET", "/healthz", b"");
            print!("{text}");
            exit(i32::from(status != 200));
        }
        "shutdown" => {
            let (status, text) = call(&addr, "POST", "/v1/shutdown", b"");
            print!("{text}");
            exit(i32::from(status != 200));
        }
        "--help" | "-h" => usage(),
        other => {
            eprintln!("tagctl: unknown command {other:?}\n");
            usage();
        }
    }
}
