//! `tagctl` — the command-line client for `tagstudyd`.
//!
//! ```text
//! tagctl [--addr HOST:PORT] submit SPEC...     measure a batch, print a table
//! tagctl [--addr HOST:PORT] submit --json SPEC...   ... print the raw response
//! tagctl [--addr HOST:PORT] result KEY         fetch the raw store record
//! tagctl [--addr HOST:PORT] metrics [--watch SECS]  scrape /metrics (repeatedly)
//! tagctl [--addr HOST:PORT] health             liveness probe
//! tagctl [--addr HOST:PORT] shutdown           ask the daemon to drain and exit
//! tagctl [--addr HOST:PORT] fuzz [...]         drive a differential-fuzzing campaign
//! ```
//!
//! The argument grammar lives in [`serve::cli`]; this binary only does I/O.

use std::process::exit;
use std::time::Duration;

use serve::cli::{self, Command};
use serve::fleet;
use serve::http::{fetch, json_string};
use serve::proto;

const DEFAULT_ADDR: &str = "127.0.0.1:7099";
const TIMEOUT: Duration = Duration::from_secs(600);

fn usage() -> ! {
    eprintln!(
        "usage: tagctl [--addr HOST:PORT] <command>\n\
         \n\
         commands:\n\
         \u{20} submit [--json] SPEC...   measure a batch and print the results\n\
         \u{20} result KEY                fetch the raw store record for a content address\n\
         \u{20} metrics [--watch SECS]    scrape /metrics (with --watch: forever)\n\
         \u{20} health                    liveness probe (exit 0 iff the daemon answers ok)\n\
         \u{20} shutdown                  ask the daemon to drain in-flight work and exit\n\
         \u{20} fuzz [--smoke] [--resume] [--local] [--witness-dir DIR]\n\
         \u{20}      [--seed-base N] [--axis-points N] [--per-cell N] [--max-programs N]\n\
         \u{20}      [--backends a,b] [--inject-fault NAME:N] [--replay KEY]\n\
         \u{20}                           differential-fuzz the matrix through the daemon\n\
         \n\
         Default address {DEFAULT_ADDR} (override with --addr or TAGSTUDYD_ADDR).\n\
         {}",
        bench::spec::spec_grammar()
    );
    exit(2);
}

fn die(message: &str) -> ! {
    eprintln!("tagctl: {message}");
    exit(1);
}

/// GET/POST and fail loudly on transport errors; non-2xx is returned to the
/// caller (some commands want to print the error body).
fn call(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    match fetch(addr, method, path, body, TIMEOUT) {
        Ok((status, bytes)) => (status, String::from_utf8_lossy(&bytes).into_owned()),
        Err(why) => die(&why),
    }
}

fn submit(addr: &str, raw_json: bool, specs: &[String]) {
    let body = format!(
        "{{\"experiments\":[{}]}}",
        specs
            .iter()
            .map(|s| json_string(s))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, text) = call(addr, "POST", "/v1/experiments", body.as_bytes());
    if status != 200 {
        die(&format!("daemon answered {status}: {}", text.trim_end()));
    }
    if raw_json {
        print!("{text}");
        return;
    }
    let results = proto::parse_results(&text).unwrap_or_else(|why| die(&why));
    println!(
        "{:<34} {:>14} {:>12} {:>6}  KEY",
        "SPEC", "CYCLES", "INSNS", "CPI"
    );
    for (spec, key, m) in &results {
        let cycles = m.stats.cycles;
        let insns = m.stats.committed;
        let cpi = if insns == 0 {
            0.0
        } else {
            cycles as f64 / insns as f64
        };
        println!("{spec:<34} {cycles:>14} {insns:>12} {cpi:>6.3}  {key}");
    }
}

fn metrics(addr: &str, watch: Option<u64>) {
    loop {
        let (status, text) = call(addr, "GET", "/metrics", b"");
        if status != 200 {
            die(&format!("daemon answered {status}: {}", text.trim_end()));
        }
        print!("{text}");
        let Some(secs) = watch else { return };
        println!("# --- next scrape in {secs}s ---");
        std::thread::sleep(Duration::from_secs(secs));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = cli::parse(&args).unwrap_or_else(|why| {
        eprintln!("tagctl: {why}\n");
        usage();
    });
    let addr = invocation
        .addr
        .or_else(|| std::env::var("TAGSTUDYD_ADDR").ok())
        .unwrap_or_else(|| DEFAULT_ADDR.to_string());
    match invocation.command {
        Command::Help => usage(),
        Command::Submit { json, specs } => submit(&addr, json, &specs),
        Command::Result { key } => {
            let (status, text) = call(&addr, "GET", &format!("/v1/results/{key}"), b"");
            if status != 200 {
                die(&format!("daemon answered {status}: {}", text.trim_end()));
            }
            print!("{text}");
        }
        Command::Metrics { watch } => metrics(&addr, watch),
        Command::Health => {
            let (status, text) = call(&addr, "GET", "/healthz", b"");
            print!("{text}");
            exit(i32::from(status != 200));
        }
        Command::Shutdown => {
            let (status, text) = call(&addr, "POST", "/v1/shutdown", b"");
            print!("{text}");
            exit(i32::from(status != 200));
        }
        Command::Fuzz(fuzz_args) => exit(fleet::run_fuzz(&addr, &fuzz_args)),
    }
}
