//! The daemon's JSON wire protocol: batch requests in, deterministic result
//! documents out.
//!
//! A batch body is `{"experiments": [ <spec>, ... ]}` where each spec is
//! either a string in the [`bench::spec`] grammar (`"frl:low2:none:tagbr"`),
//! an object `{"program": "frl", "scheme": "low2", "checking": "none",
//! "hw": "tagbr", "timing": "modern"}` with every field but `program`
//! optional, or an *inline* object `{"source": "(print 1)", "heap": 65536,
//! ...}` carrying its own Lisp source — measured under the content-derived `inline:<hash>` name, so equal
//! sources share a cache entry per configuration.
//!
//! The response is `{"results": [ ... ]}` with one entry per request, in
//! request order; each entry carries the canonical spec string, the content
//! address the measurement is stored under, and the measurement itself in the
//! same deterministic encoding the store uses. Timing is deliberately absent —
//! it varies run to run, and its absence is what makes daemon responses
//! byte-identical whether a point was simulated, cached, or warm-loaded from
//! disk.

use bench::spec::{self, ExperimentSpec};
use store::{record, StoreKey};
use tagstudy::{Json, Measurement};

use crate::http::json_string;

/// Upper bound on experiments per batch — a guard rail, not a tuning knob.
pub const MAX_BATCH: usize = 1024;

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn spec_from_object(obj: &[(String, Json)]) -> Result<ExperimentSpec, String> {
    for (key, _) in obj {
        if !matches!(
            key.as_str(),
            "program" | "source" | "heap" | "scheme" | "checking" | "hw" | "backend" | "timing"
        ) {
            return Err(format!(
                "unknown experiment field {key:?} (want program or source, \
                 plus scheme, checking, hw, heap, backend, timing)"
            ));
        }
    }
    let field = |name: &str, default: &str| -> Result<String, String> {
        match get(obj, name) {
            Some(v) => Ok(v.as_str(name)?.to_string()),
            None => Ok(default.to_string()),
        }
    };
    // The backend pins which simulator executes the measurement; it never
    // enters the config's identity or the store's content addresses.
    let backend = match get(obj, "backend") {
        Some(v) => spec::parse_backend(v.as_str("backend")?)?,
        None => mipsx::Backend::default(),
    };
    // The timing model, by contrast, IS identity: a timed point is stored
    // under (and served from) its own content address.
    let timing = match get(obj, "timing") {
        Some(v) => spec::parse_timing(v.as_str("timing")?)?,
        None => mipsx::TimingConfig::ideal(),
    };
    // An inline spec carries its own Lisp source (and optionally a heap
    // override); a named spec references a built-in benchmark. Exactly one.
    if let Some(source) = get(obj, "source") {
        if get(obj, "program").is_some() {
            return Err("experiment object has both \"program\" and \"source\"".to_string());
        }
        let source = source.as_str("source")?;
        if source.trim().is_empty() {
            return Err("inline \"source\" is empty".to_string());
        }
        let heap = match get(obj, "heap") {
            Some(v) => {
                let bytes = v.as_u64("heap")?;
                let bytes = u32::try_from(bytes)
                    .map_err(|_| format!("heap of {bytes} bytes exceeds the 32-bit limit"))?;
                Some(bytes)
            }
            None => None,
        };
        let scheme = spec::parse_scheme(&field("scheme", spec::DEFAULT_SCHEME)?)?;
        let checking = spec::parse_checking(&field("checking", spec::DEFAULT_CHECKING)?)?;
        let hw = spec::parse_hw(&field("hw", spec::DEFAULT_HW)?, scheme)?;
        let config = tagstudy::Config::new(scheme, checking)
            .with_hw(hw)
            .with_backend(backend)
            .with_timing(timing);
        return Ok(ExperimentSpec::inline(source, config, heap));
    }
    if get(obj, "heap").is_some() {
        return Err("\"heap\" only applies to inline sources (use \"source\")".to_string());
    }
    let program = get(obj, "program")
        .ok_or("experiment object is missing \"program\" (or inline \"source\")")?
        .as_str("program")?;
    let text = format!(
        "{program}:{}:{}:{}",
        field("scheme", spec::DEFAULT_SCHEME)?,
        field("checking", spec::DEFAULT_CHECKING)?,
        field("hw", spec::DEFAULT_HW)?
    );
    let mut parsed = spec::parse_spec(&text)?;
    parsed.config = parsed.config.with_backend(backend).with_timing(timing);
    Ok(parsed)
}

/// Parse a batch request body into validated experiment specs.
///
/// # Errors
///
/// A usage-ready message for malformed JSON, a missing or empty
/// `experiments` array, an oversized batch, or any invalid spec.
pub fn parse_batch(body: &[u8]) -> Result<Vec<ExperimentSpec>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let root = Json::parse(text)?;
    let obj = root.as_object("request body")?;
    let experiments = get(obj, "experiments")
        .ok_or("request body is missing \"experiments\"")?
        .as_array("experiments")?;
    if experiments.is_empty() {
        return Err("empty batch: \"experiments\" has no entries".to_string());
    }
    if experiments.len() > MAX_BATCH {
        return Err(format!(
            "batch of {} experiments exceeds the limit of {MAX_BATCH}",
            experiments.len()
        ));
    }
    experiments
        .iter()
        .enumerate()
        .map(|(i, item)| {
            match item {
                Json::Str(text) => spec::parse_spec(text),
                Json::Obj(obj) => spec_from_object(obj),
                other => Err(format!("expected a spec string or object, got {other:?}")),
            }
            .map_err(|e| format!("experiments[{i}]: {e}"))
        })
        .collect()
}

/// Render the result document for a batch: one entry per request, in request
/// order, carrying only deterministic data (no timing).
pub fn results_json(entries: &[(ExperimentSpec, StoreKey, Measurement)]) -> String {
    let mut out = String::from("{\"results\":[");
    for (i, (spec, key, m)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"spec\":{},\"key\":\"{key}\",\"measurement\":{}}}",
            json_string(&spec.to_spec_string()),
            record::measurement_to_json(m)
        ));
    }
    out.push_str("]}\n");
    out
}

/// Decode a result document (the client side of [`results_json`]).
///
/// # Errors
///
/// Malformed JSON or a document not shaped like a result batch.
pub fn parse_results(text: &str) -> Result<Vec<(String, String, Measurement)>, String> {
    let root = Json::parse(text)?;
    let obj = root.as_object("response body")?;
    if let Some(error) = get(obj, "error") {
        return Err(format!("daemon error: {}", error.as_str("error")?));
    }
    let results = get(obj, "results")
        .ok_or("response body is missing \"results\"")?
        .as_array("results")?;
    results
        .iter()
        .map(|item| {
            let entry = item.as_object("result entry")?;
            let spec = get(entry, "spec").ok_or("missing spec")?.as_str("spec")?;
            let key = get(entry, "key").ok_or("missing key")?.as_str("key")?;
            let m = record::measurement_from_json(
                get(entry, "measurement").ok_or("missing measurement")?,
            )?;
            Ok((spec.to_string(), key.to_string(), m))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagstudy::CheckingMode;

    #[test]
    fn batch_accepts_strings_and_objects() {
        let body = br#"{"experiments": [
            "frl",
            {"program": "trav", "scheme": "low2", "checking": "none", "hw": "tagbr"},
            {"program": "boyer"}
        ]}"#;
        let specs = parse_batch(body).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].to_spec_string(), "frl:high5:full:plain");
        assert_eq!(specs[1].to_spec_string(), "trav:low2:none:tagbr");
        assert_eq!(
            specs[2].config,
            tagstudy::Config::baseline(CheckingMode::Full)
        );
    }

    #[test]
    fn batch_accepts_inline_sources() {
        let body = br#"{"experiments": [
            {"source": "(print 1)", "scheme": "low2", "checking": "none", "hw": "tagbr", "heap": 65536},
            {"source": "(print 1)"},
            {"program": "frl"}
        ]}"#;
        let specs = parse_batch(body).unwrap();
        assert_eq!(specs.len(), 3);
        assert!(
            specs[0].program.starts_with("inline:"),
            "{}",
            specs[0].program
        );
        assert_eq!(
            specs[0].program, specs[1].program,
            "same source, same content-derived name"
        );
        assert_eq!(specs[0].source.as_deref(), Some("(print 1)"));
        assert_eq!(specs[0].heap_semi_bytes, Some(65536));
        assert_eq!(
            specs[0].to_spec_string(),
            format!("{}:low2:none:tagbr", specs[0].program)
        );
        assert_eq!(
            specs[1].config,
            tagstudy::Config::baseline(CheckingMode::Full)
        );
        assert_eq!(specs[1].heap_semi_bytes, None);
        assert_eq!(specs[2].source, None);
    }

    /// The wire protocol accepts a backend everywhere a spec does — string
    /// key and object field — and the backend never changes the spec string
    /// (which feeds cache keys and content addresses).
    #[test]
    fn backend_rides_along_without_changing_identity() {
        use mipsx::Backend;
        let body = br#"{"experiments": [
            "frl:backend=classic",
            {"program": "trav", "backend": "ref"},
            {"source": "(print 1)", "backend": "classic"},
            {"program": "boyer"}
        ]}"#;
        let specs = parse_batch(body).unwrap();
        assert_eq!(specs[0].config.backend, Backend::Classic);
        assert_eq!(specs[1].config.backend, Backend::Ref);
        assert_eq!(specs[2].config.backend, Backend::Classic);
        assert_eq!(specs[3].config.backend, Backend::default());
        for s in &specs {
            assert!(
                !s.to_spec_string().contains("backend"),
                "{}: backend must not leak into the canonical spec string",
                s.to_spec_string()
            );
        }
        // Same store key regardless of backend.
        let a = StoreKey::compute("src", &specs[1].config);
        let b = StoreKey::compute("src", &specs[1].config.with_backend(Backend::Fast));
        assert_eq!(a.as_str(), b.as_str(), "backend must not split addresses");
    }

    /// The wire protocol accepts a timing preset everywhere a spec does —
    /// string key and object field — and unlike the backend, the preset DOES
    /// change the spec string and the content address.
    #[test]
    fn timing_rides_along_and_changes_identity() {
        use mipsx::TimingConfig;
        let body = br#"{"experiments": [
            "frl:timing=classic5",
            {"program": "trav", "timing": "modern"},
            {"source": "(print 1)", "timing": "classic5"},
            {"program": "boyer", "timing": "ideal"},
            {"program": "boyer"}
        ]}"#;
        let specs = parse_batch(body).unwrap();
        assert_eq!(specs[0].config.timing, TimingConfig::classic5());
        assert_eq!(specs[1].config.timing, TimingConfig::modern());
        assert_eq!(specs[2].config.timing, TimingConfig::classic5());
        assert_eq!(specs[3].config.timing, TimingConfig::ideal());
        assert_eq!(specs[4], specs[3], "explicit ideal equals omitted");
        assert_eq!(specs[1].to_spec_string(), "trav:high5:full:plain:timing=modern");
        let ideal = StoreKey::compute("src", &specs[3].config);
        let timed = StoreKey::compute("src", &specs[3].config.with_timing(TimingConfig::modern()));
        assert_ne!(ideal.as_str(), timed.as_str(), "timing must split addresses");
    }

    /// Unknown timing presets take the canonical error paths of both shapes.
    #[test]
    fn bad_timing_presets_are_rejected() {
        let err = parse_batch(br#"{"experiments": ["frl:timing=warp"]}"#).unwrap_err();
        assert!(err.contains("unknown timing preset \"warp\""), "{err}");
        let err = parse_batch(br#"{"experiments": [{"program": "frl", "timing": "warp"}]}"#)
            .unwrap_err();
        assert!(err.contains("unknown timing preset \"warp\""), "{err}");
    }

    /// A timed measurement's stall breakdown survives the results document.
    #[test]
    fn timed_results_round_trip() {
        let spec = bench::spec::parse_spec("frl:high6:none:maximal:timing=modern").unwrap();
        let m = Measurement {
            program: spec.program.clone(),
            config: spec.config,
            stats: mipsx::Stats {
                cycles: 123,
                committed: 45,
                timing: Some(mipsx::TimingStats {
                    stall_icache: 7,
                    stall_dcache: 9,
                    branches: 11,
                    ..Default::default()
                }),
                ..Default::default()
            },
            compile: lisp::CompileStats {
                procedures: 1,
                source_lines: 2,
                object_words: 3,
            },
            halt_code: 0,
            output: "9\n".to_string(),
        };
        let key = StoreKey::compute("fake source", &spec.config);
        let doc = results_json(&[(spec.clone(), key.clone(), m.clone())]);
        let parsed = parse_results(&doc).unwrap();
        assert_eq!(parsed[0].0, spec.to_spec_string());
        assert_eq!(parsed[0].2.stats, m.stats);
        assert_eq!(parsed[0].2.config, m.config);
    }

    /// Unknown backend values take the canonical error paths of both shapes.
    #[test]
    fn bad_backends_are_rejected() {
        let err = parse_batch(br#"{"experiments": ["frl:backend=turbo"]}"#).unwrap_err();
        assert!(err.contains("unknown backend \"turbo\""), "{err}");
        let err = parse_batch(br#"{"experiments": [{"program": "frl", "backend": "turbo"}]}"#)
            .unwrap_err();
        assert!(err.contains("unknown backend \"turbo\""), "{err}");
    }

    #[test]
    fn inline_spec_errors_are_described() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"experiments": [{"source": "(print 1)", "program": "frl"}]}"#,
                "both \"program\" and \"source\"",
            ),
            (r#"{"experiments": [{"source": "   "}]}"#, "empty"),
            (
                r#"{"experiments": [{"program": "frl", "heap": 4096}]}"#,
                "only applies to inline sources",
            ),
            (
                r#"{"experiments": [{"source": "(print 1)", "scheme": "tag9"}]}"#,
                "unknown scheme",
            ),
            (
                r#"{"experiments": [{"source": "(print 1)", "heap": 5000000000}]}"#,
                "32-bit limit",
            ),
        ];
        for (body, want) in cases {
            let err = parse_batch(body.as_bytes()).unwrap_err();
            assert!(err.contains(want), "{body}: {err}");
        }
    }

    #[test]
    fn batch_errors_name_the_offender() {
        let err = parse_batch(b"{\"experiments\": [\"frl\", \"nope\"]}").unwrap_err();
        assert!(err.contains("experiments[1]"), "{err}");
        assert!(err.contains("unknown benchmark"), "{err}");

        let err = parse_batch(b"{\"experiments\": []}").unwrap_err();
        assert!(err.contains("empty batch"), "{err}");

        let err = parse_batch(b"{}").unwrap_err();
        assert!(err.contains("missing \"experiments\""), "{err}");

        let err = parse_batch(b"{\"experiments\": [{\"prog\": \"frl\"}]}").unwrap_err();
        assert!(err.contains("unknown experiment field"), "{err}");

        let err = parse_batch(b"not json").unwrap_err();
        assert!(!err.is_empty());
    }

    /// results_json and parse_results are inverses for the deterministic part.
    #[test]
    fn results_round_trip() {
        let spec = bench::spec::parse_spec("frl:high6:none:maximal").unwrap();
        let m = Measurement {
            program: spec.program.clone(),
            config: spec.config,
            stats: mipsx::Stats {
                cycles: 123,
                committed: 45,
                ..Default::default()
            },
            compile: lisp::CompileStats {
                procedures: 1,
                source_lines: 2,
                object_words: 3,
            },
            halt_code: 0,
            output: "9\n".to_string(),
        };
        let key = StoreKey::compute("fake source", &spec.config);
        let doc = results_json(&[(spec.clone(), key.clone(), m.clone())]);
        let parsed = parse_results(&doc).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, spec.to_spec_string());
        assert_eq!(parsed[0].1, key.as_str());
        assert_eq!(parsed[0].2.stats, m.stats);
        assert_eq!(parsed[0].2.config, m.config);
    }
}
