//! End-to-end tracing tests: a client-originated trace id shows up on
//! daemon, session, and store spans of the same request; warm restarts trace
//! store reads instead of simulations; malformed `traceparent` headers never
//! fail a request; and the flight recorder speaks valid Chrome trace-event
//! JSON.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serve::{http, Server, ServerConfig};
use store::ResultStore;
use tagstudy::trace::{RecorderSnapshot, TraceContext, TraceRecord, TRACEPARENT_HEADER};
use tagstudy::Json;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
const TIMEOUT: Duration = Duration::from_secs(600);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tagstudyd-trace-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn start(dir: &PathBuf) -> (Server, serve::WarmStart, String) {
    let store = Arc::new(ResultStore::open(dir).expect("open store"));
    let (server, warm) =
        Server::start("127.0.0.1:0", Some(store), ServerConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    (server, warm, addr)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, bytes) = http::fetch(addr, "GET", path, b"", TIMEOUT).unwrap();
    (status, String::from_utf8(bytes).expect("UTF-8 response"))
}

fn shutdown(addr: &str, server: Server) {
    let (status, _) = http::fetch(addr, "POST", "/v1/shutdown", b"", TIMEOUT).unwrap();
    assert_eq!(status, 200);
    server.join();
}

/// Submit `body` with an originating trace context, like `tagctl submit`.
fn post_traced(addr: &str, body: &str, ctx: TraceContext) -> (u16, String) {
    let (status, bytes) = http::fetch_headers(
        addr,
        "POST",
        "/v1/experiments",
        body.as_bytes(),
        TIMEOUT,
        &[(TRACEPARENT_HEADER, &ctx.to_traceparent())],
    )
    .unwrap();
    (status, String::from_utf8(bytes).expect("UTF-8 response"))
}

fn snapshot(addr: &str) -> RecorderSnapshot {
    let (status, text) = get(addr, "/v1/debug/trace");
    assert_eq!(status, 200, "{text}");
    RecorderSnapshot::from_json(&text).expect("snapshot parses")
}

fn span_names(record: &TraceRecord) -> Vec<&str> {
    record.spans.iter().map(|s| s.name.as_str()).collect()
}

const BATCH: &str = r#"{"experiments": ["frl:high5:none:plain"]}"#;

/// One request, traced end-to-end: the client's trace id is on the daemon's
/// request span, the session's measure/compile/simulate spans, and the
/// store's write span — one shared id across every layer. The trace is also
/// addressable by id, and `/metrics` reports per-endpoint latency quantiles.
#[test]
fn client_trace_id_spans_daemon_session_and_store() {
    let scratch = Scratch::new("e2e");
    let (server, _, addr) = start(&scratch.0);

    let ctx = TraceContext::fresh();
    let (status, body) = post_traced(&addr, BATCH, ctx);
    assert_eq!(status, 200, "{body}");

    // The completed trace carries the client's id.
    let snap = snapshot(&addr);
    let record = snap
        .recent
        .iter()
        .find(|t| t.trace == ctx.trace)
        .unwrap_or_else(|| panic!("client trace {} not recorded", ctx.trace));

    // Every layer contributed spans, all under the one trace id (they are in
    // this record *because* they share it).
    let names = span_names(record);
    for expected in [
        "POST /v1/experiments", // daemon request root
        "queue_wait",           // accept-queue wait
        "session.batch",        // dedup + fan-out envelope
        "measure",              // session wall-time split...
        "compile",
        "simulate",
        "store.write", // write-through I/O
    ] {
        assert!(names.contains(&expected), "missing {expected:?} in {names:?}");
    }
    let root = record
        .spans
        .iter()
        .find(|s| s.name == "POST /v1/experiments")
        .expect("request root span");
    assert_eq!(root.component, "daemon");
    assert_eq!(
        root.parent,
        Some(ctx.parent),
        "request root parents under the client's span"
    );
    assert!(
        root.labels.contains(&("status".to_string(), "200".to_string())),
        "{:?}",
        root.labels
    );
    let store_write = record
        .spans
        .iter()
        .find(|s| s.name == "store.write")
        .expect("store span");
    assert_eq!(store_write.component, "store");

    // The same trace is addressable by id; an unknown id is 404, a malformed
    // one 400.
    let (status, text) = get(&addr, &format!("/v1/debug/trace/{}", ctx.trace));
    assert_eq!(status, 200, "{text}");
    let by_id = TraceRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(by_id.trace, ctx.trace);
    assert_eq!(by_id.spans.len(), record.spans.len());
    let (status, _) = get(&addr, "/v1/debug/trace/ffffffffffffffffffffffffffffffff");
    assert_eq!(status, 404);
    let (status, _) = get(&addr, "/v1/debug/trace/nothex");
    assert_eq!(status, 400);

    // Per-endpoint latency histogram + quantile gauges on /metrics.
    let (_, metrics) = get(&addr, "/metrics");
    let count_line = "daemon_request_duration_seconds_count{endpoint=\"POST /v1/experiments\"} ";
    let count: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix(count_line))
        .unwrap_or_else(|| panic!("no request-duration series:\n{metrics}"))
        .parse()
        .unwrap();
    assert!(count >= 1);
    for quantile in ["0.5", "0.99"] {
        let line = format!(
            "daemon_request_latency_quantile_seconds\
             {{endpoint=\"POST /v1/experiments\",quantile=\"{quantile}\"}} "
        );
        let value: f64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix(line.as_str()))
            .unwrap_or_else(|| panic!("no p{quantile} gauge:\n{metrics}"))
            .parse()
            .unwrap();
        assert!(value > 0.0, "p{quantile} is zero");
    }

    shutdown(&addr, server);
}

/// A cold request's trace shows compilation and simulation; after a restart
/// on the same cache dir, the same batch's trace shows a store read and **no**
/// simulate span — the flight recorder proves where the answer came from.
#[test]
fn warm_restart_trace_reads_store_instead_of_simulating() {
    let scratch = Scratch::new("warm");

    let (server, _, addr) = start(&scratch.0);
    let cold_ctx = TraceContext::fresh();
    let (status, body) = post_traced(&addr, BATCH, cold_ctx);
    assert_eq!(status, 200, "{body}");
    let snap = snapshot(&addr);
    let cold = snap
        .recent
        .iter()
        .find(|t| t.trace == cold_ctx.trace)
        .expect("cold trace recorded");
    let cold_names = span_names(cold);
    assert!(cold_names.contains(&"simulate"), "{cold_names:?}");
    assert!(cold_names.contains(&"store.write"), "{cold_names:?}");
    shutdown(&addr, server);

    let (server, warm, addr) = start(&scratch.0);
    assert_eq!(warm.seeded, 1, "record preloaded");
    let warm_ctx = TraceContext::fresh();
    let (status, body) = post_traced(&addr, BATCH, warm_ctx);
    assert_eq!(status, 200, "{body}");
    let snap = snapshot(&addr);
    let warm_trace = snap
        .recent
        .iter()
        .find(|t| t.trace == warm_ctx.trace)
        .expect("warm trace recorded");
    let warm_names = span_names(warm_trace);
    assert!(
        warm_names.contains(&"store.read"),
        "warm hit must trace as a store read: {warm_names:?}"
    );
    for absent in ["simulate", "compile", "store.write"] {
        assert!(
            !warm_names.contains(&absent),
            "warm request must not {absent}: {warm_names:?}"
        );
    }
    shutdown(&addr, server);
}

/// A malformed (or missing) `traceparent` never fails the request: it is
/// served normally under a fresh trace id.
#[test]
fn malformed_traceparent_falls_back_to_fresh_trace() {
    let scratch = Scratch::new("malformed");
    let (server, _, addr) = start(&scratch.0);

    for bad in ["garbage", "00-zz-zz-01", "00-0-0-01", ""] {
        let (status, body) = http::fetch_headers(
            &addr,
            "POST",
            "/v1/experiments",
            BATCH.as_bytes(),
            TIMEOUT,
            &[(TRACEPARENT_HEADER, bad)],
        )
        .unwrap();
        assert_eq!(
            status,
            200,
            "traceparent {bad:?} failed the request: {}",
            String::from_utf8_lossy(&body)
        );
    }

    // Every request still got traced, each under its own fresh id.
    let snap = snapshot(&addr);
    let batches: Vec<_> = snap
        .recent
        .iter()
        .filter(|t| t.spans.iter().any(|s| s.name == "POST /v1/experiments"))
        .collect();
    assert_eq!(batches.len(), 4, "all four requests recorded");
    for record in &batches {
        // A fallback root has no parent outside the daemon.
        let root = record
            .spans
            .iter()
            .find(|s| s.name == "POST /v1/experiments")
            .unwrap();
        assert_eq!(root.parent, None, "fresh trace has no client parent");
    }

    shutdown(&addr, server);
}

/// The Chrome export is valid JSON in trace-event shape: a `traceEvents`
/// array of complete (`ph == "X"`) events with name/ts/dur/pid/tid.
#[test]
fn chrome_export_has_trace_event_shape() {
    let scratch = Scratch::new("chrome");
    let (server, _, addr) = start(&scratch.0);
    let ctx = TraceContext::fresh();
    let (status, _) = post_traced(&addr, BATCH, ctx);
    assert_eq!(status, 200);

    let (status, text) = get(&addr, "/v1/debug/trace?format=chrome");
    assert_eq!(status, 200, "{text}");
    let root = Json::parse(&text).expect("chrome export parses as JSON");
    let obj = root.as_object("export").unwrap();
    let (_, events) = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("traceEvents key");
    let events = events.as_array("traceEvents").unwrap();
    assert!(!events.is_empty());
    let mut saw_batch_root = false;
    for event in events {
        let event = event.as_object("event").unwrap();
        let field = |name: &str| {
            event
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| panic!("event missing {name}"))
                .1
                .clone()
        };
        assert_eq!(field("ph").as_str("ph").unwrap(), "X");
        assert!(field("dur").as_u64("dur").unwrap() >= 1);
        field("ts").as_u64("ts").unwrap();
        field("pid").as_u64("pid").unwrap();
        field("tid").as_u64("tid").unwrap();
        if field("name").as_str("name").unwrap() == "POST /v1/experiments" {
            saw_batch_root = true;
        }
    }
    assert!(saw_batch_root, "request root missing from chrome export");

    shutdown(&addr, server);
}
