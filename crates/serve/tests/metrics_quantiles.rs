//! Regression tests for the `/metrics` latency-quantile gauges: a histogram
//! with zero observations must contribute *no*
//! `daemon_request_latency_quantile_seconds` series — not a `NaN`, not a
//! zero, not a bucket-bound artifact.

use std::time::Duration;

use serve::daemon_metrics::{LATENCY_QUANTILE, REQUEST_DURATION};
use serve::{http, latency_quantile_gauges, Server, ServerConfig};
use tagstudy::metrics::{labeled, Histogram, REQUEST_BUCKETS};
use tagstudy::MetricsRegistry;

const TIMEOUT: Duration = Duration::from_secs(600);

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, bytes) = http::fetch(addr, "GET", path, b"", TIMEOUT).unwrap();
    (status, String::from_utf8(bytes).expect("UTF-8 response"))
}

/// A fresh daemon has served nothing, so the first scrape must carry zero
/// quantile gauges; once that scrape itself has been observed, the second
/// scrape grows exactly the `GET /metrics` series — finite and positive.
#[test]
fn fresh_daemon_emits_no_quantile_gauges() {
    let (server, _warm) =
        Server::start("127.0.0.1:0", None, ServerConfig::default()).expect("bind");
    let addr = server.addr().to_string();

    let (status, first) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        !first.contains(LATENCY_QUANTILE),
        "zero-observation daemon must omit quantile gauges:\n{first}"
    );

    let (status, second) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let mut seen = 0;
    for line in second.lines() {
        let Some(rest) = line.strip_prefix(LATENCY_QUANTILE) else {
            continue;
        };
        let (labels, value) = rest.rsplit_once(' ').expect("gauge line");
        assert!(labels.contains("endpoint=\"GET /metrics\""), "{line}");
        let value: f64 = value.parse().expect("numeric gauge");
        assert!(value.is_finite() && value > 0.0, "{line}");
        seen += 1;
    }
    assert_eq!(seen, 3, "one gauge per quantile:\n{second}");

    let (status, _) = http::fetch(&addr, "POST", "/v1/shutdown", b"", TIMEOUT).unwrap();
    assert_eq!(status, 200);
    server.join();
}

/// The scrape-time estimator skips request-duration histograms with no
/// observations, including the degenerate restored-snapshot shape where
/// `count` claims observations but every bucket is zero.
#[test]
fn empty_histograms_are_omitted() {
    let key = labeled(REQUEST_DURATION, &[("endpoint", "POST /v1/experiments")]);

    // A restored snapshot whose histogram claims one observation but holds
    // zeroed buckets — every count field is schema-valid, so `from_json`
    // accepts it, and the estimator must still refuse to invent a latency.
    let buckets = REQUEST_BUCKETS
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let counts = vec!["0"; REQUEST_BUCKETS.len() + 1].join(",");
    let snapshot = format!(
        "{{\"counters\":{{}},\"gauges\":{{}},\"histograms\":{{{}:{{\"buckets\":[{buckets}],\
         \"counts\":[{counts}],\"sum\":0.5,\"count\":1}}}},\"events\":[]}}",
        serve_key_json(&key)
    );
    let restored = MetricsRegistry::from_json(&snapshot).expect("parses");
    let hist = restored.histogram(&key).expect("histogram survives");
    assert_eq!(hist.count, 1, "test setup: inconsistent snapshot");
    assert!(hist.counts.iter().all(|c| *c == 0), "test setup");
    assert_eq!(
        latency_quantile_gauges(&restored),
        vec![],
        "zeroed buckets must yield no gauges"
    );

    // The healthy shape still produces all three quantiles.
    let mut m = MetricsRegistry::new();
    m.observe(&key, REQUEST_BUCKETS, 0.25);
    let gauges = latency_quantile_gauges(&m);
    assert_eq!(gauges.len(), 3);
    for (name, value) in &gauges {
        assert!(name.starts_with(LATENCY_QUANTILE), "{name}");
        assert!(value.is_finite() && *value > 0.0, "{name} = {value}");
    }
}

/// JSON string literal for a histogram key (the key itself contains quotes).
fn serve_key_json(key: &str) -> String {
    format!("\"{}\"", key.replace('"', "\\\""))
}

/// `Histogram::quantile` itself refuses to fabricate an estimate from empty
/// buckets — the property the gauge omission rests on.
#[test]
fn quantile_of_empty_buckets_is_none() {
    let mut h = Histogram::new(REQUEST_BUCKETS);
    assert_eq!(h.quantile(0.5), None, "never observed");

    // Inconsistent: count claims observations, buckets hold none. Before the
    // fix this returned the largest finite bound — dashboard poison.
    h.count = 7;
    h.sum = 1.0;
    assert_eq!(h.quantile(0.5), None, "count/bucket mismatch");

    h.observe(0.1);
    assert!(h.quantile(0.5).is_some());
}
