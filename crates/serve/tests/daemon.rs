//! End-to-end tests for `tagstudyd`: a real server on an ephemeral port, real
//! sockets, real simulations — asserting the acceptance properties of the
//! serving layer: responses byte-identical to direct Session output, warm
//! restarts that answer with zero simulations, corruption that is quarantined
//! and recomputed, graceful shutdown that drains in-flight work, and load
//! shedding with `Retry-After`.

use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serve::{http, proto, Server, ServerConfig};
use store::{record, ResultStore, StoreKey};
use tagstudy::Session;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
const TIMEOUT: Duration = Duration::from_secs(600);

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tagstudyd-test-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn start(dir: Option<&PathBuf>, config: ServerConfig) -> (Server, serve::WarmStart, String) {
    let store = dir.map(|d| Arc::new(ResultStore::open(d).expect("open store")));
    let (server, warm) = Server::start("127.0.0.1:0", store, config).expect("bind");
    let addr = server.addr().to_string();
    (server, warm, addr)
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let (status, bytes) = http::fetch(addr, "POST", path, body.as_bytes(), TIMEOUT).unwrap();
    (status, String::from_utf8(bytes).expect("UTF-8 response"))
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, bytes) = http::fetch(addr, "GET", path, b"", TIMEOUT).unwrap();
    (status, String::from_utf8(bytes).expect("UTF-8 response"))
}

fn shutdown(addr: &str, server: Server) {
    let (status, _) = post(addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    server.join();
}

/// The value of a counter/gauge line in Prometheus text (0 when absent — a
/// counter that was never incremented is not exported).
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .map_or(0, |v| v.parse::<f64>().expect("numeric metric") as u64)
}

const BATCH: &str = r#"{"experiments": ["frl:high5:none:plain", "frl", "trav:high5:none:plain"]}"#;

/// The daemon's batch responses carry exactly the measurements a direct
/// Session produces (byte-identical encoding), concurrent clients all see the
/// same bytes, and each result is re-fetchable by its content address.
#[test]
fn batch_matches_direct_session_and_concurrent_clients_agree() {
    let scratch = Scratch::new("e2e");
    let (server, _, addr) = start(Some(&scratch.0), ServerConfig::default());

    // Four concurrent clients submit the same batch.
    let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| post(&addr, "/v1/experiments", BATCH)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (status, body) in &bodies {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(body, &bodies[0].1, "all clients see the same bytes");
    }

    // Compare against a Session driven directly, with the same encoding.
    let results = proto::parse_results(&bodies[0].1).unwrap();
    assert_eq!(results.len(), 3);
    let mut direct = Session::serial();
    for (spec_text, key, served) in &results {
        let spec = bench::spec::parse_spec(spec_text).unwrap();
        let reference = direct.measure(&spec.program, spec.config).unwrap();
        assert_eq!(
            record::measurement_to_json(served),
            record::measurement_to_json(&reference),
            "daemon response differs from direct Session for {spec_text}"
        );

        // The same measurement is addressable through the record endpoint.
        let (status, raw) = get(&addr, &format!("/v1/results/{key}"));
        assert_eq!(status, 200, "{raw}");
        let (record_key, from_record, _) = record::record_from_json(&raw).unwrap();
        assert_eq!(record_key.as_str(), key);
        assert_eq!(
            record::measurement_to_json(&from_record),
            record::measurement_to_json(&reference)
        );
    }

    // Three distinct points ("frl" defaults to full checking, distinct from
    // the explicit none-checking spec), measured once despite four clients.
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric(&metrics, "session_cache_misses_total"), 3);
    assert_eq!(metric(&metrics, "store_puts_total"), 3);
    assert_eq!(metric(&metrics, "daemon_batches_total"), 4);
    assert_eq!(metric(&metrics, "daemon_experiments_total"), 12);

    shutdown(&addr, server);
}

/// A restarted daemon on the same cache dir answers a known batch with ZERO
/// simulations — proven by the metrics — and byte-identical to the first run.
#[test]
fn warm_restart_answers_without_simulating() {
    let scratch = Scratch::new("warm");

    let (server, warm, addr) = start(Some(&scratch.0), ServerConfig::default());
    assert_eq!(warm.seeded, 0, "first boot is cold");
    let (status, cold_body) = post(&addr, "/v1/experiments", BATCH);
    assert_eq!(status, 200, "{cold_body}");
    shutdown(&addr, server);

    let (server, warm, addr) = start(Some(&scratch.0), ServerConfig::default());
    assert_eq!(warm.seeded, 3, "every record preloaded");
    let (status, warm_body) = post(&addr, "/v1/experiments", BATCH);
    assert_eq!(status, 200, "{warm_body}");
    assert_eq!(warm_body, cold_body, "warm restart is byte-identical");

    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(
        metric(&metrics, "session_cache_misses_total"),
        0,
        "zero simulations since restart:\n{metrics}"
    );
    assert_eq!(metric(&metrics, "session_seeded_total"), 3);
    assert_eq!(
        metric(&metrics, "session_cache_hits_total"),
        3,
        "one hit per spec"
    );
    assert_eq!(
        metric(&metrics, "store_puts_total"),
        0,
        "nothing re-written"
    );

    shutdown(&addr, server);
}

/// A corrupted record is quarantined at warm start and transparently
/// recomputed — never served, never fatal.
#[test]
fn corrupted_record_is_quarantined_and_recomputed() {
    let scratch = Scratch::new("corrupt");
    let batch = r#"{"experiments": ["trav:high5:none:plain"]}"#;

    let (server, _, addr) = start(Some(&scratch.0), ServerConfig::default());
    let (status, clean_body) = post(&addr, "/v1/experiments", batch);
    assert_eq!(status, 200, "{clean_body}");
    shutdown(&addr, server);

    // Flip bits in the one record on disk.
    let rec = fs::read_dir(&scratch.0)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "rec"))
        .expect("one record on disk");
    let text = fs::read_to_string(&rec).unwrap();
    fs::write(&rec, text.replacen("\"cycles\":", "\"cycles\":9", 1)).unwrap();

    let (server, warm, addr) = start(Some(&scratch.0), ServerConfig::default());
    assert_eq!(warm.seeded, 0, "corrupt record must not seed the session");
    let (status, healed_body) = post(&addr, "/v1/experiments", batch);
    assert_eq!(status, 200, "{healed_body}");
    assert_eq!(
        healed_body, clean_body,
        "recomputed answer matches the original"
    );

    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(metric(&metrics, "store_quarantined_total"), 1, "{metrics}");
    assert_eq!(
        metric(&metrics, "session_cache_misses_total"),
        1,
        "recomputed once"
    );
    assert_eq!(
        metric(&metrics, "store_records"),
        1,
        "healed by write-through"
    );

    shutdown(&addr, server);
}

/// Inline sources measure like named benchmarks — deterministic bytes, cache
/// hits on repeat — but are never persisted to the on-disk store (the store is
/// keyed by the benchmark registry, which can't name them).
#[test]
fn inline_sources_measure_but_are_not_persisted() {
    let scratch = Scratch::new("inline");
    let (server, _, addr) = start(Some(&scratch.0), ServerConfig::default());
    let batch = r#"{"experiments": [
        {"source": "(print (plus 1 2))", "checking": "none"},
        {"source": "(print (plus 1 2))", "checking": "full"},
        "trav:high5:none:plain"
    ]}"#;

    let (status, first) = post(&addr, "/v1/experiments", batch);
    assert_eq!(status, 200, "{first}");
    let results = proto::parse_results(&first).unwrap();
    assert_eq!(results.len(), 3);
    assert!(results[0].0.starts_with("inline:"), "{}", results[0].0);
    assert!(results[1].0.starts_with("inline:"), "{}", results[1].0);
    // Same source, different configs: same content-derived name, distinct
    // store keys, and the checked run costs cycles the unchecked one doesn't.
    assert_eq!(
        results[0].0.split(':').nth(1),
        results[1].0.split(':').nth(1)
    );
    assert_ne!(results[0].1, results[1].1);
    assert!(results[1].2.stats.cycles > results[0].2.stats.cycles);

    // A repeat batch is served from cache, byte-identical.
    let (status, second) = post(&addr, "/v1/experiments", batch);
    assert_eq!(status, 200);
    assert_eq!(second, first, "repeat batch is byte-identical");
    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(metric(&metrics, "session_cache_misses_total"), 3);
    assert_eq!(metric(&metrics, "session_cache_hits_total"), 3);

    // Only the named benchmark reached the store: its key resolves, the
    // inline keys do not, and exactly one record exists on disk.
    assert_eq!(metric(&metrics, "store_puts_total"), 1);
    let (status, _) = get(&addr, &format!("/v1/results/{}", results[2].1));
    assert_eq!(status, 200);
    for inline in &results[..2] {
        let (status, body) = get(&addr, &format!("/v1/results/{}", inline.1));
        assert_eq!(status, 404, "inline result persisted: {body}");
    }

    shutdown(&addr, server);
}

/// `POST /v1/shutdown` stops accepting but drains in-flight work: a batch
/// already being measured still completes and gets its full response.
#[test]
fn shutdown_drains_in_flight_batch() {
    let (server, _, addr) = start(None, ServerConfig::default());

    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            post(
                &addr,
                "/v1/experiments",
                r#"{"experiments": ["boyer:high5:full:plain"]}"#,
            )
        })
    };
    // Give the batch a head start into the simulator, then pull the plug.
    std::thread::sleep(Duration::from_millis(200));
    let (status, _) = post(&addr, "/v1/shutdown", "");
    assert_eq!(status, 200);

    let (status, body) = in_flight.join().unwrap();
    assert_eq!(
        status, 200,
        "in-flight batch completed through shutdown: {body}"
    );
    let results = proto::parse_results(&body).unwrap();
    assert_eq!(results.len(), 1);
    assert!(results[0].2.stats.cycles > 0);

    server.join();
}

/// With the accept queue full (capacity 0 pins it full), connections are shed
/// with `503` and a `Retry-After` header instead of queueing without bound.
#[test]
fn overload_sheds_with_retry_after() {
    let (server, _, addr) = start(
        None,
        ServerConfig {
            queue_capacity: 0,
            ..ServerConfig::default()
        },
    );

    // Raw client: the shed headers are part of the contract.
    for _ in 0..2 {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
        assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
        assert!(raw.contains("accept queue is full"), "{raw}");
    }
    let handle = server.handle();
    let metrics = handle.metrics_prometheus();
    assert_eq!(metric(&metrics, "daemon_queue_shed_total"), 2, "{metrics}");

    handle.shutdown();
    server.join();
}

/// The unhappy paths answer with structured errors, not hangs or panics.
#[test]
fn bad_requests_are_answered_not_fatal() {
    let (server, _, addr) = start(None, ServerConfig::default());

    let (status, body) = post(&addr, "/v1/experiments", r#"{"experiments": ["nope"]}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown benchmark"), "{body}");

    let (status, body) = post(&addr, "/v1/experiments", "not json");
    assert_eq!(status, 400, "{body}");

    let (status, body) = get(&addr, "/v1/results/zzz");
    assert_eq!(status, 400);
    assert!(body.contains("bad store key"), "{body}");

    let missing = StoreKey::compute(
        "no such source",
        &tagstudy::Config::baseline(tagstudy::CheckingMode::Full),
    );
    let (status, body) = get(&addr, &format!("/v1/results/{missing}"));
    assert_eq!(status, 404, "{body}");

    let (status, _) = get(&addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = post(&addr, "/healthz", "");
    assert_eq!(status, 405);

    let (status, body) = get(&addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    shutdown(&addr, server);
}
