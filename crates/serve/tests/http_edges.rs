//! HTTP-layer edge cases against a live server with a short I/O timeout:
//! malformed, truncated, oversized, and stalling requests must all earn a
//! canonical `400` JSON error and a closed connection — never a hang, never a
//! worker pinned past the timeout, never a crash that a later healthy request
//! would reveal.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use serve::{http, Server, ServerConfig};

/// The server's per-connection socket timeout for these tests — short enough
/// that a stalling client is shed quickly, long enough to be robust on a
/// loaded machine.
const IO_TIMEOUT: Duration = Duration::from_millis(300);

/// Ceiling on how long any single misbehaving request may take end-to-end.
/// Far above `IO_TIMEOUT`, far below a test timeout: a hang fails fast.
const STALL_BUDGET: Duration = Duration::from_secs(10);

fn start() -> (Server, String) {
    let config = ServerConfig {
        io_timeout: IO_TIMEOUT,
        ..ServerConfig::default()
    };
    let (server, _) = Server::start("127.0.0.1:0", None, config).expect("bind");
    let addr = server.addr().to_string();
    (server, addr)
}

/// Send raw bytes, optionally half-close the write side, and read whatever
/// the server answers (until it closes). Returns the raw response text.
fn raw_exchange(addr: &str, payload: &[u8], half_close: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(STALL_BUDGET)).unwrap();
    stream.set_write_timeout(Some(STALL_BUDGET)).unwrap();
    stream.write_all(payload).expect("send");
    if half_close {
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    String::from_utf8_lossy(&raw).into_owned()
}

/// Assert a raw response is the canonical 400: status line, JSON error
/// envelope, and `Connection: close`.
fn assert_canonical_400(raw: &str, case: &str) {
    assert!(
        raw.starts_with("HTTP/1.1 400 "),
        "{case}: not a 400:\n{raw}"
    );
    assert!(
        raw.contains("Connection: close"),
        "{case}: connection not closed:\n{raw}"
    );
    assert!(
        raw.contains("{\"error\":"),
        "{case}: no JSON error envelope:\n{raw}"
    );
}

/// After the abuse, the server must still answer a clean request — proof that
/// no worker was lost, no state corrupted.
fn assert_still_healthy(addr: &str) {
    let (status, body) =
        http::fetch(addr, "GET", "/healthz", b"", STALL_BUDGET).expect("healthz after abuse");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
}

#[test]
fn malformed_heads_earn_canonical_400s() {
    let (server, addr) = start();

    // A request line with no path.
    let raw = raw_exchange(&addr, b"GET\r\n\r\n", false);
    assert_canonical_400(&raw, "truncated request line");
    assert!(raw.contains("malformed request line"), "{raw}");

    // A head that is not UTF-8 (binary garbage with a valid terminator).
    let mut garbage: Vec<u8> = vec![0x00, 0xff, 0xfe, 0x80, 0x13, 0x37];
    garbage.extend_from_slice(b"\r\n\r\n");
    let raw = raw_exchange(&addr, &garbage, false);
    assert_canonical_400(&raw, "binary garbage");

    // A client that gives up mid-head: the close is answered, not hung on.
    let raw = raw_exchange(&addr, b"GET /healthz HTT", true);
    assert_canonical_400(&raw, "mid-head close");
    assert!(raw.contains("before end of request head"), "{raw}");

    assert_still_healthy(&addr);
    server.handle().shutdown();
    server.join();
}

#[test]
fn oversized_head_and_body_are_rejected_not_buffered() {
    let (server, addr) = start();

    // A head that never ends: headers past MAX_HEAD must be cut off without
    // waiting for the terminator (or buffering without bound).
    let mut endless = b"GET /healthz HTTP/1.1\r\n".to_vec();
    while endless.len() <= http::MAX_HEAD {
        endless.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    let raw = raw_exchange(&addr, &endless, false);
    assert_canonical_400(&raw, "oversized head");
    assert!(raw.contains("request head exceeds"), "{raw}");

    // A declared body over MAX_BODY is refused from the header alone —
    // instantly, without reading (or waiting for) a single body byte.
    let started = Instant::now();
    let head = format!(
        "POST /v1/experiments HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        http::MAX_BODY + 1
    );
    let raw = raw_exchange(&addr, head.as_bytes(), false);
    assert_canonical_400(&raw, "oversized body");
    assert!(raw.contains("request body exceeds"), "{raw}");
    assert!(
        started.elapsed() < STALL_BUDGET,
        "oversized body was waited for, not refused"
    );

    assert_still_healthy(&addr);
    server.handle().shutdown();
    server.join();
}

#[test]
fn short_bodies_cannot_hang_a_worker() {
    let (server, addr) = start();
    let head = b"POST /v1/experiments HTTP/1.1\r\nContent-Length: 100\r\n\r\ntoo short";

    // Peer closes mid-body: immediate 400.
    let raw = raw_exchange(&addr, head, true);
    assert_canonical_400(&raw, "mid-body close");
    assert!(raw.contains("connection closed mid-body"), "{raw}");

    // Peer stalls mid-body: the socket timeout sheds it — the worker is
    // returned well within the stall budget instead of pinned forever.
    let started = Instant::now();
    let raw = raw_exchange(&addr, head, false);
    let elapsed = started.elapsed();
    assert_canonical_400(&raw, "mid-body stall");
    assert!(
        elapsed >= IO_TIMEOUT && elapsed < STALL_BUDGET,
        "stalling client held the worker for {elapsed:?}"
    );

    assert_still_healthy(&addr);
    server.handle().shutdown();
    server.join();
}

#[test]
fn content_length_is_parsed_strictly() {
    let (server, addr) = start();
    let cases: &[(&str, &str, &str)] = &[
        (
            "duplicate Content-Length",
            "POST /v1/experiments HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}",
            "duplicate Content-Length",
        ),
        (
            "signed Content-Length",
            "POST /v1/experiments HTTP/1.1\r\nContent-Length: +2\r\n\r\n{}",
            "bad Content-Length",
        ),
        (
            "non-numeric Content-Length",
            "POST /v1/experiments HTTP/1.1\r\nContent-Length: two\r\n\r\n{}",
            "bad Content-Length",
        ),
        (
            "empty Content-Length",
            "POST /v1/experiments HTTP/1.1\r\nContent-Length:\r\n\r\n{}",
            "bad Content-Length",
        ),
    ];
    for (case, payload, want) in cases {
        let raw = raw_exchange(&addr, payload.as_bytes(), false);
        assert_canonical_400(&raw, case);
        assert!(raw.contains(want), "{case}:\n{raw}");
    }

    // Trailing bytes beyond the declared length are ignored, not smuggled
    // into a second request (one request per connection by design).
    let raw = raw_exchange(
        &addr,
        b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\nGET /nope HTTP/1.1\r\n\r\n",
        false,
    );
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw}");
    assert_eq!(raw.matches("HTTP/1.1").count(), 1, "one response only:\n{raw}");

    assert_still_healthy(&addr);
    server.handle().shutdown();
    server.join();
}
