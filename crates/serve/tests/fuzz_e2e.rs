//! End-to-end tests for the differential-fuzzing fleet against a live
//! `tagstudyd`: a daemon-backed campaign saturates with zero divergences and
//! surfaces its telemetry on `/metrics`, campaign state survives a daemon
//! kill/restart (the coverage ledger lives client-side), and the fuzz
//! endpoints validate their inputs.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mipsx::Backend;
use serve::fleet::{DaemonRunner, FuzzArgs};
use serve::{http, Server, ServerConfig};
use store::fuzz::FuzzStore;
use synth::fleet::{ledger_key, matrix_columns, mix_cells, run_campaign, CampaignSpec};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
const TIMEOUT: Duration = Duration::from_secs(600);

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tagstudyd-fuzz-test-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn start() -> (Server, String) {
    let (server, _) =
        Server::start("127.0.0.1:0", None, ServerConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    (server, addr)
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let (status, bytes) = http::fetch(addr, "POST", path, body.as_bytes(), TIMEOUT).unwrap();
    (status, String::from_utf8(bytes).expect("UTF-8 response"))
}

fn shutdown(addr: &str, server: Server) {
    let (status, _) = post(addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    server.join();
}

fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .map_or(0.0, |v| v.parse().expect("numeric metric"))
}

/// One program per cell on a single backend: 3 cells × 24 configs.
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        axis_points: 1,
        per_cell: 1,
        backends: vec![Backend::Fast],
        ..CampaignSpec::smoke()
    }
}

/// The full `tagctl fuzz` driver against a live daemon: zero divergences,
/// saturated ledger, and the campaign telemetry visible on `/metrics`.
#[test]
fn daemon_campaign_saturates_and_reports_metrics() {
    let scratch = Scratch::new("campaign");
    let (server, addr) = start();

    let code = serve::fleet::run_fuzz(
        &addr,
        &FuzzArgs {
            spec: tiny_spec(),
            resume: false,
            witness_dir: scratch.0.clone(),
            local: false,
            replay: None,
        },
    );
    assert_eq!(code, 0, "clean campaign through the daemon exits 0");

    let store = FuzzStore::open(&scratch.0).unwrap();
    assert_eq!(store.witness_count(), 0, "no divergences, no witnesses");
    let ledger = store.load_ledger().expect("ledger persisted");
    assert!(ledger.complete(), "campaign saturated its coverage ledger");

    let metrics = server.handle().metrics_prometheus();
    assert_eq!(metric(&metrics, "daemon_fuzz_runs_total"), 3.0, "{metrics}");
    assert_eq!(metric(&metrics, "daemon_fuzz_columns_total"), 72.0, "{metrics}");
    assert_eq!(metric(&metrics, "daemon_fuzz_programs_total"), 3.0, "{metrics}");
    assert_eq!(metric(&metrics, "daemon_fuzz_divergences_total"), 0.0, "{metrics}");
    assert_eq!(metric(&metrics, "daemon_fuzz_coverage_percent"), 100.0, "{metrics}");
    assert!(
        metric(&metrics, "daemon_fuzz_columns_per_second") > 0.0,
        "{metrics}"
    );

    shutdown(&addr, server);
}

/// Kill the daemon mid-campaign, restart it, resume: the client-side ledger
/// carries the campaign across the restart, and the counters prove covered
/// columns are skipped rather than re-run.
#[test]
fn campaign_survives_daemon_restart_and_skips_covered_columns() {
    let scratch = Scratch::new("restart");
    let store = FuzzStore::open(&scratch.0).unwrap();
    let spec = tiny_spec();

    // Phase 1: one program's worth of coverage, then the daemon dies.
    let (server, addr) = start();
    let part1 = run_campaign(
        &CampaignSpec {
            max_programs: Some(1),
            ..spec.clone()
        },
        &store,
        &mut DaemonRunner::new(&addr),
        false,
        &mut |_| {},
    )
    .unwrap();
    assert_eq!(part1.programs, 1);
    assert_eq!(part1.columns_run, 24);
    assert_eq!(part1.divergences, 0);
    assert!(!part1.complete);
    shutdown(&addr, server);

    // Simulate dying *mid-program* too: hand-advance five columns of the
    // next cell, exactly as the per-column ledger persistence would have.
    let columns = matrix_columns(&spec.backends);
    let next_cell = &mix_cells(spec.axis_points)[1].name;
    let mut ledger = store.load_ledger().unwrap();
    for column in &columns[..5] {
        ledger.bump(&ledger_key(next_cell, &column.label()));
    }
    store.store_ledger(&ledger).unwrap();

    // Phase 2: fresh daemon, resumed campaign. The new daemon has no memory
    // of phase 1 — the skipping is driven entirely by the persisted ledger.
    let (server, addr) = start();
    let part2 = run_campaign(&spec, &store, &mut DaemonRunner::new(&addr), true, &mut |_| {})
        .unwrap();
    assert_eq!(part2.resumed_from, 24 + 5, "inherited coverage is visible");
    assert_eq!(part2.columns_skipped, 5, "covered columns are not re-run");
    assert_eq!(part2.columns_run, 72 - 24 - 5);
    assert_eq!(part2.programs, 2, "the covered cell is not revisited");
    assert_eq!(part2.divergences, 0);
    assert!(part2.complete);
    assert_eq!(
        part1.columns_run + part2.columns_skipped + part2.columns_run,
        72,
        "every column of every cell ran exactly once across the restart"
    );

    // The restarted daemon only saw phase 2's work.
    let metrics = server.handle().metrics_prometheus();
    assert_eq!(metric(&metrics, "daemon_fuzz_columns_total"), 43.0, "{metrics}");

    shutdown(&addr, server);
}

/// The fuzz endpoints validate their inputs: malformed run batches and
/// reports earn 400s, wrong methods 405, and a bad report never poisons the
/// counters.
#[test]
fn fuzz_endpoints_validate_inputs() {
    let (server, addr) = start();

    let (status, body) = post(&addr, "/v1/fuzz/run", "not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(&addr, "/v1/fuzz/run", r#"{"experiments": []}"#);
    assert_eq!(status, 400);
    assert!(body.contains("empty batch"), "{body}");
    let (status, body) = post(
        &addr,
        "/v1/fuzz/run",
        r#"{"experiments": [{"source": "(print 1)", "scheme": "tag9"}]}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown scheme"), "{body}");

    let (status, _) = http::fetch(&addr, "GET", "/v1/fuzz/run", b"", TIMEOUT).unwrap();
    assert_eq!(status, 405);
    let (status, _) = http::fetch(&addr, "GET", "/v1/fuzz/report", b"", TIMEOUT).unwrap();
    assert_eq!(status, 405);

    let (status, body) = post(&addr, "/v1/fuzz/report", "not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(&addr, "/v1/fuzz/report", r#"{"programs": "many"}"#);
    assert_eq!(status, 400, "{body}");

    // A valid report accumulates; the earlier rejects contributed nothing.
    for _ in 0..2 {
        let (status, body) = post(
            &addr,
            "/v1/fuzz/report",
            r#"{"programs": 2, "divergences": 1, "coverage_percent": 50.0}"#,
        );
        assert_eq!(status, 200, "{body}");
    }
    let metrics = server.handle().metrics_prometheus();
    assert_eq!(metric(&metrics, "daemon_fuzz_programs_total"), 4.0, "{metrics}");
    assert_eq!(metric(&metrics, "daemon_fuzz_divergences_total"), 2.0, "{metrics}");
    assert_eq!(metric(&metrics, "daemon_fuzz_coverage_percent"), 50.0, "{metrics}");

    // A well-executed run batch works end-to-end through raw HTTP, too.
    let (status, body) = post(
        &addr,
        "/v1/fuzz/run",
        r#"{"experiments": [{"source": "(print (plus 1 2))", "backend": "fast"}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    let results = serve::proto::parse_results(&body).unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].2.output, "3\n");

    shutdown(&addr, server);
}
