//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so this workspace
//! vendors the subset of criterion's API its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it reports a simple trimmed
//! mean over the configured sample count — enough to compare configurations
//! and catch order-of-magnitude regressions, and it keeps `cargo bench`
//! working with no external dependencies.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// Finish the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one wall-clock sample per run (after one
    /// untimed warm-up run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples (Bencher::iter never called)");
        return;
    }
    samples.sort_unstable();
    // Trim one sample from each end when there are enough, then average.
    let trimmed = if samples.len() > 4 {
        &samples[1..samples.len() - 1]
    } else {
        &samples[..]
    };
    let total: Duration = trimmed.iter().sum();
    let mean = total / trimmed.len() as u32;
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{group}/{id}: mean {} (min {}, max {}, n={})",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into one group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce the `main` function running the named groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert_eq!(runs, 4, "one warm-up plus three samples");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
