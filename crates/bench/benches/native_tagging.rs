//! The modern coda: what do the paper's tag operations cost on a 2020s CPU?
//!
//! The paper's conclusion — put tags where the hardware drops them for free —
//! is exactly what `tagword::ptr::TaggedPtr` (low-bit pointer tagging) and
//! `tagword::nanbox::NanBox` do natively. These benches measure the native cost
//! of insert/extract/remove/check, the same four operations the 1987 study
//! priced on MIPS-X.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tagword::nanbox::NanBox;
use tagword::ptr::TaggedPtr;
use tagword::Tag;

fn bench_word_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("word_ops");
    for scheme in tagword::ALL_SCHEMES {
        g.bench_function(format!("{scheme}/insert+extract+remove"), |b| {
            b.iter(|| {
                let w = scheme
                    .insert(black_box(Tag::Pair), black_box(0x1000))
                    .unwrap();
                let e = scheme.extract(black_box(w));
                let p = scheme.remove(black_box(w));
                black_box((e, p))
            })
        });
        g.bench_function(format!("{scheme}/int_round_trip"), |b| {
            b.iter(|| {
                let w = scheme.make_int(black_box(-12345)).unwrap();
                black_box(scheme.int_value(black_box(w)))
            })
        });
    }
    g.finish();
}

fn bench_tagged_ptr(c: &mut Criterion) {
    let mut g = c.benchmark_group("tagged_ptr");
    g.bench_function("new+get+tag+drop", |b| {
        b.iter(|| {
            let tp: TaggedPtr<u64> = TaggedPtr::new(Box::new(black_box(7u64)), 5).unwrap();
            black_box((*tp.get(), tp.tag()))
        })
    });
    let mut tp: TaggedPtr<u64> = TaggedPtr::new(Box::new(7), 3).unwrap();
    g.bench_function("get+set_tag (no alloc)", |b| {
        b.iter(|| {
            tp.set_tag(black_box(1)).unwrap();
            black_box(*tp.get() + tp.tag() as u64)
        })
    });
    g.finish();
}

fn bench_nanbox(c: &mut Criterion) {
    let mut g = c.benchmark_group("nanbox");
    g.bench_function("float_round_trip", |b| {
        b.iter(|| black_box(NanBox::from_f64(black_box(1.5)).as_f64()))
    });
    g.bench_function("int_round_trip", |b| {
        b.iter(|| black_box(NanBox::from_i32(black_box(-7)).as_i32()))
    });
    g.bench_function("kind_dispatch", |b| {
        let vals = [
            NanBox::from_f64(2.5),
            NanBox::from_i32(3),
            NanBox::from_bool(true),
            NanBox::nil(),
        ];
        b.iter(|| {
            let mut acc = 0u32;
            for v in vals {
                acc = acc.wrapping_add(black_box(v).kind() as u32);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_word_schemes, bench_tagged_ptr, bench_nanbox);
criterion_main!(benches);
