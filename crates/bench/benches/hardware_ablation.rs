//! Ablation: trap penalty and parallel-check scope, the hardware parameters the
//! paper's §6.2 discussion turns on.

use criterion::{criterion_group, criterion_main, Criterion};
use mipsx::{HwConfig, ParallelCheck};
use tagstudy::{CheckingMode, Config, Session};

fn bench_trap_penalty(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("trap_penalty");
    g.sample_size(10);
    for penalty in [5u32, 20, 80] {
        let hw = HwConfig {
            trap_penalty: penalty,
            ..HwConfig::with_generic_arith()
        };
        let cfg = Config::baseline(CheckingMode::Full).with_hw(hw);
        g.bench_function(format!("penalty={penalty}"), |b| {
            b.iter(|| session.measure_uncached("rat", cfg).expect("runs"))
        });
    }
    g.finish();
}

fn bench_parallel_scope(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("parallel_check_scope");
    g.sample_size(10);
    for (label, scope) in [
        ("none", ParallelCheck::None),
        ("lists", ParallelCheck::Lists),
        ("all", ParallelCheck::All),
    ] {
        let cfg =
            Config::baseline(CheckingMode::Full).with_hw(HwConfig::with_parallel_check(scope));
        g.bench_function(label, |b| {
            b.iter(|| session.measure_uncached("trav", cfg).expect("runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trap_penalty, bench_parallel_scope);
criterion_main!(benches);
