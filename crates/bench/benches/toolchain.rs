//! Host-side performance of the toolchain itself: compilation and raw
//! simulation speed.

use criterion::{criterion_group, criterion_main, Criterion};
use lisp::{CheckingMode, Options};
use tagword::TagScheme;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(20);
    let boyer = programs::by_name("boyer").unwrap();
    for checking in [CheckingMode::None, CheckingMode::Full] {
        let opts = Options::new(TagScheme::HighTag5, checking);
        g.bench_function(format!("boyer/{checking:?}"), |b| {
            b.iter(|| boyer.compile(&opts).expect("compiles"))
        });
    }
    g.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let b = programs::by_name("frl").unwrap();
    let compiled = b.compile(&Options::default()).unwrap();
    g.bench_function("frl_cycles_per_run", |bch| {
        bch.iter(|| lisp::run(&compiled, programs::FUEL).expect("runs"))
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_simulator_throughput);
criterion_main!(benches);
