//! Criterion benches mirroring the paper's tables and figures: each group times
//! the simulations that one table/figure aggregates, so `cargo bench` both
//! regenerates the numbers (printed once up front) and tracks the harness's own
//! performance.
//!
//! Timing loops go through [`Session::measure_uncached`] — the cache-bypassing
//! primitive — so each iteration times a real compile + simulation rather than
//! a memoized lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use tagstudy::{report, tables, CheckingMode, Config, Session};

/// Table 1 / Figure 1 substrate: every benchmark in both checking modes.
fn bench_checking_modes(c: &mut Criterion) {
    // Print the actual tables once, so `cargo bench` output doubles as the
    // experiment record.
    if let Ok(t) = tables::table1_for(&mut Session::new(), &["frl", "trav", "boyer"]) {
        println!("{}", report::render_table1(&t));
    }
    let session = Session::new();
    let mut g = c.benchmark_group("table1_figure1");
    g.sample_size(10);
    for name in ["frl", "trav", "rat"] {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            let cfg = Config::baseline(checking);
            g.bench_function(format!("{name}/{checking:?}"), |b| {
                b.iter(|| session.measure_uncached(name, cfg).expect("runs"))
            });
        }
    }
    g.finish();
}

/// Figure 2 substrate: masking vs no-masking runs.
fn bench_masking(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10);
    let base = Config::baseline(CheckingMode::None);
    let drop = base.with_hw(mipsx::HwConfig::with_address_drop(5));
    g.bench_function("frl/masked", |b| {
        b.iter(|| session.measure_uncached("frl", base).expect("runs"))
    });
    g.bench_function("frl/unmasked", |b| {
        b.iter(|| session.measure_uncached("frl", drop).expect("runs"))
    });
    g.finish();
}

/// Table 2 substrate: the support levels on one benchmark.
fn bench_support_levels(c: &mut Criterion) {
    use mipsx::{HwConfig, ParallelCheck};
    let session = Session::new();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let rows: Vec<(&str, HwConfig)> = vec![
        ("row0_base", HwConfig::plain()),
        ("row1_drop", HwConfig::with_address_drop(5)),
        ("row2_tagbr", HwConfig::with_tag_branch()),
        ("row4_genarith", HwConfig::with_generic_arith()),
        (
            "row5_lists",
            HwConfig::with_parallel_check(ParallelCheck::Lists),
        ),
        (
            "row6_all",
            HwConfig::with_parallel_check(ParallelCheck::All),
        ),
        ("row7_maximal", HwConfig::maximal(5)),
    ];
    for (label, hw) in rows {
        let cfg = Config::baseline(CheckingMode::Full).with_hw(hw);
        g.bench_function(label, |b| {
            b.iter(|| session.measure_uncached("deduce", cfg).expect("runs"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_checking_modes,
    bench_masking,
    bench_support_levels
);
criterion_main!(benches);
