//! Dispatch throughput of the execution backends: the classic decode-on-step
//! `Cpu` against the predecoded micro-op `FastCpu`, on the same compiled
//! workload. The `dispatch` binary measures the same ratio and gates on it;
//! this bench exists for interactive before/after comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use lisp::Options;
use mipsx::Backend;

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    g.sample_size(10);
    for name in ["frl", "trav"] {
        let b = programs::by_name(name).unwrap();
        let compiled = b.compile(&Options::default()).unwrap();
        for backend in [Backend::Classic, Backend::Fast] {
            g.bench_function(format!("{name}/{backend}"), |bch| {
                bch.iter(|| lisp::run_with(&compiled, backend, programs::FUEL).expect("runs"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
