//! Ablation: the four tag schemes head-to-head on a representative benchmark —
//! the design choice DESIGN.md calls out (high vs low tags, 5 vs 6 bits).

use criterion::{criterion_group, criterion_main, Criterion};
use tagstudy::{CheckingMode, Config, Session};
use tagword::ALL_SCHEMES;

fn bench_schemes(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("schemes");
    g.sample_size(10);
    for scheme in ALL_SCHEMES {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            let cfg = Config::new(scheme, checking);
            g.bench_function(format!("{scheme}/{checking:?}"), |b| {
                b.iter(|| session.measure_uncached("boyer", cfg).expect("runs"))
            });
        }
    }
    g.finish();
}

fn bench_preshifted_tag(c: &mut Criterion) {
    let session = Session::new();
    let mut g = c.benchmark_group("preshift_ablation");
    g.sample_size(10);
    for pre in [false, true] {
        let cfg = Config {
            preshifted_pair_tag: pre,
            ..Config::baseline(CheckingMode::None)
        };
        g.bench_function(format!("preshift={pre}"), |b| {
            b.iter(|| session.measure_uncached("inter", cfg).expect("runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes, bench_preshifted_tag);
criterion_main!(benches);
