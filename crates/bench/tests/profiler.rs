//! Integration tests for the cycle-attribution profiler: golden snapshot of
//! the `profile` binary's report, exact reconciliation against `Stats`,
//! flamegraph-format validation of the folded output, and the zero-overhead
//! proof that attaching a `Profiler` cannot change what is measured.

use std::fs;
use std::path::PathBuf;

use tagstudy::{CheckingMode, Config, Session};

fn expected_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/expected/{name}"))
}

/// The report for `frl` under the paper's baseline with full checking,
/// pinned byte for byte. This is exactly what
/// `cargo run --release -p bench --bin profile -- frl` prints, because the
/// binary and this test share [`bench::profile_report`].
///
/// Regenerate after an intentional change:
///
/// ```text
/// UPDATE_EXPECTED=1 cargo test -p bench --test profiler
/// ```
#[test]
fn profile_report_matches_golden() {
    let session = Session::serial();
    let config = Config::baseline(CheckingMode::Full);
    let (measurement, profiler) = session
        .profile("frl", config, programs::FUEL)
        .expect("frl profiles");
    let got = bench::profile_report(&measurement, &profiler);

    let path = expected_path("profile_frl.txt");
    if std::env::var_os("UPDATE_EXPECTED").is_some() {
        fs::write(&path, &got).expect("write the expected file");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nseed it with: UPDATE_EXPECTED=1 cargo test -p bench --test profiler",
            path.display()
        )
    });
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "profile report drifted at line {} (regenerate with UPDATE_EXPECTED=1)",
            i + 1
        );
    }
    assert_eq!(got, want, "trailing content differs");
}

/// The acceptance criterion: per-function tag-cycle totals sum exactly to
/// `Stats::total_tag_cycles()`, and every other book the profiler keeps
/// reconciles with the simulator's own counters — across checking modes and
/// a hardware level that exercises squash/trap attribution.
#[test]
fn per_function_totals_reconcile_exactly() {
    let session = Session::serial();
    let configs = [
        Config::baseline(CheckingMode::None),
        Config::baseline(CheckingMode::Full),
        Config::baseline(CheckingMode::Full).with_hw(mipsx::HwConfig::with_generic_arith()),
        Config::baseline(CheckingMode::Full).with_hw(mipsx::HwConfig::maximal(5)),
    ];
    for program in ["frl", "trav"] {
        for config in configs {
            let (m, prof) = session
                .profile(program, config, programs::FUEL)
                .unwrap_or_else(|e| panic!("{program}/{config}: {e}"));
            prof.reconcile(&m.stats)
                .unwrap_or_else(|e| panic!("{program}/{config}: {e}"));
            let per_function_tag_total: u64 = prof
                .hot_functions()
                .iter()
                .map(|(_, f)| f.tag_total())
                .sum();
            assert_eq!(
                per_function_tag_total,
                m.stats.total_tag_cycles(),
                "{program}/{config}: per-function tag cycles must sum to the \
                 whole-program figure"
            );
            assert_eq!(prof.total_cycles(), m.stats.cycles, "{program}/{config}");
        }
    }
}

/// Folded output validates against the flamegraph text format — one
/// `frame;frame;frame count` line per bucket, non-empty frames, counts that
/// sum to the run's total cycles.
#[test]
fn folded_output_is_flamegraph_format() {
    let session = Session::serial();
    let (m, prof) = session
        .profile("frl", Config::baseline(CheckingMode::Full), programs::FUEL)
        .expect("frl profiles");
    let folded = prof.folded();
    assert!(!folded.is_empty());
    let mut total = 0u64;
    for line in folded.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line {line:?} has no count"));
        let count: u64 = count
            .parse()
            .unwrap_or_else(|e| panic!("count in {line:?}: {e}"));
        assert!(count > 0, "empty buckets are not emitted: {line:?}");
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "empty frame in {line:?}");
            assert!(
                !frame.contains(' '),
                "frames must not contain spaces: {line:?}"
            );
        }
        total += count;
    }
    assert_eq!(
        total, m.stats.cycles,
        "folded counts partition the run's cycles"
    );
    // The root frame everywhere is the entry function.
    assert!(folded.lines().all(|l| l.starts_with("main")), "{folded}");
}

/// Zero-overhead proof: a `Profiler`-attached run produces `Stats` identical
/// to an unobserved run, for every benchmark. The observer only reads the
/// retirement stream; if it ever perturbed the simulation, the paper's
/// numbers could not be trusted with profiling enabled.
#[test]
fn profiler_never_changes_stats() {
    let session = Session::serial();
    let config = Config::baseline(CheckingMode::Full);
    for b in programs::all() {
        let unobserved = session
            .measure_uncached(b.name, config)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (observed, prof) = session
            .profile(b.name, config, programs::FUEL)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            unobserved.stats, observed.stats,
            "{}: observation must be invisible to the measurement",
            b.name
        );
        prof.reconcile(&observed.stats)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    }
}
