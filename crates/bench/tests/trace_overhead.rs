//! Zero-overhead proof for the tracing spine, mirroring the profiler's
//! (`tests/profiler.rs`): a Session with a live `Tracer` and an active
//! trace context produces `Stats` — and a full `all_experiments` report —
//! byte-identical to an untraced run. Spans are synthesized from the
//! session's event stream *after* the clocks stop; if attaching the recorder
//! ever perturbed a measurement, the paper's numbers could not be trusted
//! with tracing enabled, and `tagstudyd` (which always traces) would publish
//! different results than the offline binaries.

use std::time::Duration;

use tagstudy::trace::{TraceContext, Tracer};
use tagstudy::{report, CheckingMode, Config, Session};

/// A recorder that keeps everything and slow-logs everything — the most
/// observation the tracing spine can do.
fn eager_tracer() -> Tracer {
    Tracer::new(64, Duration::from_micros(0))
}

/// Every benchmark measures identically with the recorder attached and an
/// active trace context, and the recorder provably observed each run.
#[test]
fn tracing_never_changes_stats() {
    let mut untraced = Session::serial();
    let tracer = eager_tracer();
    let mut traced = Session::serial().with_tracer(tracer.clone());
    let config = Config::baseline(CheckingMode::Full);
    for b in programs::all() {
        // `measure` (not `measure_uncached`) is the path the daemon traces:
        // it emits the progress events spans are synthesized from. Fresh
        // sessions per run would be slower; distinct sessions per arm keep
        // both arms on cache misses for the same (program, config) points.
        let plain = untraced
            .measure(b.name, config)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let ctx = TraceContext::fresh();
        traced.begin_trace(ctx);
        let observed = traced
            .measure(b.name, config)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        traced.end_trace();
        assert_eq!(
            plain.stats, observed.stats,
            "{}: tracing must be invisible to the measurement",
            b.name
        );
        assert_eq!(plain.output, observed.output, "{}", b.name);
        assert_eq!(plain.halt_code, observed.halt_code, "{}", b.name);
        // The observer was really watching: sealing the trace finds spans.
        assert!(
            tracer.finish(ctx.trace, ctx.parent).is_some(),
            "{}: the traced run recorded no spans — the proof proved nothing",
            b.name
        );
    }
}

/// The `all_experiments` report bytes are identical with the flight recorder
/// attached — the whole study, tables and figures, unperturbed by tracing.
/// (A two-program subset keeps this affordable; the per-benchmark test above
/// covers every program's raw stats.)
#[test]
fn full_report_is_byte_identical_with_recorder_attached() {
    let names = ["frl", "trav"];

    let mut untraced = Session::serial();
    let plain = report::full_report(&mut untraced, &names).expect("untraced report");

    let tracer = eager_tracer();
    let mut traced = Session::serial().with_tracer(tracer.clone());
    let ctx = TraceContext::fresh();
    traced.begin_trace(ctx);
    let observed = report::full_report(&mut traced, &names).expect("traced report");
    traced.end_trace();

    assert!(
        tracer.finish(ctx.trace, ctx.parent).is_some(),
        "the traced report recorded no spans"
    );
    assert_eq!(
        plain, observed,
        "report bytes must not depend on the recorder"
    );
}
