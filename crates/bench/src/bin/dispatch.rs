//! Dispatch-speedup study: the predecoded micro-op `FastCpu` against the
//! classic decode-on-step `Cpu`, measured as simulated cycles per wall-clock
//! second over real benchmark workloads.
//!
//! ```text
//! dispatch [--programs a,b,c] [--reps N] [--min-speedup X] [--out PATH] [--smoke]
//! ```
//!
//! Each program is compiled once and then run to completion on both backends
//! `--reps` times; the best (minimum) wall time per backend is kept, so noise
//! from a loaded host only ever *understates* throughput. Cycle counts come
//! from the simulator's own `Stats` and are asserted identical across
//! backends — the speedup is a pure host-dispatch ratio, never a workload
//! difference.
//!
//! The run fails (exit 1) unless the geometric-mean speedup across the
//! measured programs reaches `--min-speedup` (default 5), and records the
//! whole measurement as JSON for the benchmark trail.
//!
//! `--smoke` shrinks the sweep to two reps for CI; the workload list stays
//! full so the geomean keeps the arithmetic-heavy end's margin over the gate.

use mipsx::Backend;
use std::time::Instant;

/// Default per-program repetitions (best-of is kept).
const DEFAULT_REPS: u32 = 3;
/// Default geometric-mean speedup gate.
const DEFAULT_MIN_SPEEDUP: f64 = 5.0;
/// Default workload list: all ten benchmarks, so the geomean spans the
/// paper's full op-mix range rather than one workload's dispatch profile.
const DEFAULT_PROGRAMS: &str = "inter,deduce,dedgc,rat,comp,opt,frl,boyer,brow,trav";

fn usage() -> ! {
    eprintln!(
        "usage: dispatch [--programs a,b,c] [--reps N] [--min-speedup X] \
         [--out PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn next_arg(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {text:?}");
        usage()
    })
}

/// One measured workload.
struct Row {
    name: &'static str,
    cycles: u64,
    classic_secs: f64,
    fast_secs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.classic_secs / self.fast_secs
    }
    /// Simulated megacycles per wall-clock second.
    fn mcps(&self, secs: f64) -> f64 {
        self.cycles as f64 / secs / 1e6
    }
}

/// Best-of-`reps` wall time for running `compiled` on `backend`, plus the
/// cycle count the run reports.
fn time_backend(compiled: &lisp::CompiledProgram, backend: Backend, reps: u32) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = lisp::run_with(compiled, backend, programs::FUEL)
            .unwrap_or_else(|e| panic!("{backend}: run failed: {e:?}"));
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        cycles = outcome.stats.cycles;
    }
    (best, cycles)
}

fn main() {
    let mut reps = DEFAULT_REPS;
    let mut min_speedup = DEFAULT_MIN_SPEEDUP;
    let mut program_list = DEFAULT_PROGRAMS.to_string();
    let mut out_path = "BENCH_dispatch_speedup.json".to_string();

    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--programs" => program_list = next_arg(&mut args, "--programs"),
            "--reps" => reps = parse_num(&next_arg(&mut args, "--reps"), "--reps"),
            "--min-speedup" => {
                min_speedup = parse_num(&next_arg(&mut args, "--min-speedup"), "--min-speedup");
            }
            "--out" => out_path = next_arg(&mut args, "--out"),
            "--smoke" => reps = 2,
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage()
            }
        }
    }
    if reps == 0 {
        eprintln!("need at least 1 rep");
        usage();
    }

    let mut rows: Vec<Row> = Vec::new();
    for name in program_list.split(',').map(str::trim) {
        let b = programs::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}");
            usage()
        });
        let compiled = b
            .compile(&lisp::Options::default())
            .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        let (classic_secs, classic_cycles) = time_backend(&compiled, Backend::Classic, reps);
        let (fast_secs, fast_cycles) = time_backend(&compiled, Backend::Fast, reps);
        assert_eq!(
            classic_cycles, fast_cycles,
            "{name}: backends disagree on cycle count"
        );
        let row = Row {
            name: b.name,
            cycles: fast_cycles,
            classic_secs,
            fast_secs,
        };
        eprintln!(
            "[dispatch] {}: {} cycles, classic {:.1} Mc/s, fast {:.1} Mc/s, speedup {:.2}x",
            row.name,
            row.cycles,
            row.mcps(row.classic_secs),
            row.mcps(row.fast_secs),
            row.speedup()
        );
        rows.push(row);
    }
    if rows.is_empty() {
        eprintln!("no programs measured");
        usage();
    }

    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();

    let json = render_json(&rows, reps, min_speedup, geomean);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });

    println!(
        "dispatch speedup: {} programs x best-of-{reps}, geomean {geomean:.2}x (gate {min_speedup}x)",
        rows.len()
    );
    println!("wrote {out_path}");

    if geomean < min_speedup {
        eprintln!(
            "FAIL: expected the predecoded backend to dispatch >= {min_speedup}x faster than \
             classic (got {geomean:.2}x)"
        );
        std::process::exit(1);
    }
}

/// Hand-rendered JSON document for the study (the workspace is std-only).
fn render_json(rows: &[Row], reps: u32, min_speedup: f64, geomean: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"study\": \"dispatch_speedup\",");
    let _ = writeln!(out, "  \"classic\": \"decode-on-step Cpu\",");
    let _ = writeln!(out, "  \"fast\": \"predecoded micro-op FastCpu\",");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"min_speedup\": {min_speedup},");
    let _ = writeln!(out, "  \"geomean_speedup\": {geomean:.4},");
    let _ = writeln!(out, "  \"programs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"classic_secs\": {:.6}, \
             \"fast_secs\": {:.6}, \"classic_mcps\": {:.3}, \"fast_mcps\": {:.3}, \
             \"speedup\": {:.4}}}{comma}",
            r.name,
            r.cycles,
            r.classic_secs,
            r.fast_secs,
            r.mcps(r.classic_secs),
            r.mcps(r.fast_secs),
            r.speedup()
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
