//! Per-function cycle-attribution profiler: "Table 1, but per function".
//!
//! Runs one benchmark under one configuration with a [`mipsx::Profiler`]
//! attached and prints where the cycles — and specifically the tag-handling
//! cycles — went, function by function. The paper only ever reports these
//! numbers as whole-program aggregates; this is the drill-down.
//!
//! ```text
//! profile <benchmark> [--scheme high5|high6|low2|low3] [--checking none|full]
//!                     [--hw plain|tagbr|genarith|maximal|spur]
//!                     [--backend classic|fast|ref]
//!                     [--timing ideal|classic5|modern]
//!                     [--folded] [--metrics json|prom]
//! ```
//!
//! Default output is the per-function report (stdout). `--folded` instead
//! prints folded call stacks (`frame;frame count` per line) ready for
//! `flamegraph.pl` or any compatible renderer. `--timing` with a non-ideal
//! preset attaches a [`mipsx::TimingModel`] to the same run and appends the
//! per-function *stall* attribution (icache/dcache/mispredict/load-use) after
//! the cycle report. `--metrics json|prom` prints the session's metrics
//! registry after the run, in JSON or Prometheus text.
//!
//! Scheme/checking/hardware names are the shared [`bench::spec`] vocabulary —
//! the same strings `tagctl` and the `tagstudyd` wire protocol accept.

use bench::spec;
use tagstudy::Config;

fn usage() -> ! {
    eprintln!(
        "usage: profile <benchmark> [--scheme high5|high6|low2|low3] \
         [--checking none|full] [--hw plain|tagbr|genarith|maximal|spur] \
         [--backend classic|fast|ref] [--timing ideal|classic5|modern] \
         [--folded] [--metrics json|prom]\nbenchmarks: {}",
        programs::names().join(" ")
    );
    std::process::exit(2);
}

fn next_arg(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

/// Unwrap a spec-vocabulary parse, or print its message and the usage text.
fn parse_or_usage<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|message| {
        eprintln!("{message}");
        usage()
    })
}

fn main() {
    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    let Some(benchmark) = args.next() else {
        usage()
    };
    if benchmark.starts_with('-') || programs::by_name(&benchmark).is_none() {
        eprintln!("unknown benchmark {benchmark:?}");
        usage();
    }
    let mut scheme = tagword::TagScheme::HighTag5;
    let mut checking = tagstudy::CheckingMode::Full;
    let mut hw_name = spec::DEFAULT_HW.to_string();
    let mut backend = mipsx::Backend::default();
    let mut timing = mipsx::TimingConfig::ideal();
    let mut folded = false;
    let mut metrics: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => {
                scheme = parse_or_usage(spec::parse_scheme(&next_arg(&mut args, "--scheme")))
            }
            "--checking" => {
                checking = parse_or_usage(spec::parse_checking(&next_arg(&mut args, "--checking")));
            }
            "--hw" => hw_name = next_arg(&mut args, "--hw"),
            "--backend" => {
                backend = parse_or_usage(spec::parse_backend(&next_arg(&mut args, "--backend")));
            }
            "--timing" => {
                timing = parse_or_usage(spec::parse_timing(&next_arg(&mut args, "--timing")));
            }
            "--folded" => folded = true,
            "--metrics" => metrics = Some(next_arg(&mut args, "--metrics")),
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage()
            }
        }
    }
    // Hardware is parsed after the flag loop: `maximal`/`spur` depend on the
    // scheme's tag width, and `--scheme` may come after `--hw` on the line.
    let hw = parse_or_usage(spec::parse_hw(&hw_name, scheme));
    let config = Config::new(scheme, checking)
        .with_hw(hw)
        .with_backend(backend)
        .with_timing(timing);

    let session = bench::session();
    let (measurement, profiler, stalls) =
        bench::unwrap_study(session.profile_with_stalls(&benchmark, config, programs::FUEL));

    if folded {
        // Folded stacks only: pipeable straight into flamegraph.pl.
        print!("{}", profiler.folded());
    } else {
        print!("{}", bench::profile_report(&measurement, &profiler));
        if let Some(stalls) = &stalls {
            println!();
            print!("{}", bench::stall_report(&measurement, stalls));
        }
    }
    match metrics.as_deref() {
        None => {}
        Some("json") => println!("{}", session.metrics_json()),
        Some("prom") => print!("{}", session.metrics_prometheus()),
        Some(v) => {
            eprintln!("unknown metrics format {v:?} (want json or prom)");
            usage()
        }
    }
}
