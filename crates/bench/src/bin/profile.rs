//! Per-function cycle-attribution profiler: "Table 1, but per function".
//!
//! Runs one benchmark under one configuration with a [`mipsx::Profiler`]
//! attached and prints where the cycles — and specifically the tag-handling
//! cycles — went, function by function. The paper only ever reports these
//! numbers as whole-program aggregates; this is the drill-down.
//!
//! ```text
//! profile <benchmark> [--scheme high5|high6|low2|low3] [--checking none|full]
//!                     [--hw plain|tagbr|genarith|maximal|spur]
//!                     [--folded] [--metrics json|prom]
//! ```
//!
//! Default output is the per-function report (stdout). `--folded` instead
//! prints folded call stacks (`frame;frame count` per line) ready for
//! `flamegraph.pl` or any compatible renderer. `--metrics json|prom` prints
//! the session's metrics registry after the run, in JSON or Prometheus text.

use tagstudy::{CheckingMode, Config};

fn usage() -> ! {
    eprintln!(
        "usage: profile <benchmark> [--scheme high5|high6|low2|low3] \
         [--checking none|full] [--hw plain|tagbr|genarith|maximal|spur] \
         [--folded] [--metrics json|prom]\nbenchmarks: {}",
        programs::names().join(" ")
    );
    std::process::exit(2);
}

fn next_arg(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

fn main() {
    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    let Some(benchmark) = args.next() else { usage() };
    if benchmark.starts_with('-') {
        usage();
    }
    let mut scheme = tagword::TagScheme::HighTag5;
    let mut checking = CheckingMode::Full;
    let mut hw_name = "plain".to_string();
    let mut folded = false;
    let mut metrics: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => {
                let v = next_arg(&mut args, "--scheme");
                scheme = match tagword::ALL_SCHEMES.iter().find(|s| s.name() == v) {
                    Some(s) => *s,
                    None => {
                        eprintln!("unknown scheme {v:?}");
                        usage()
                    }
                };
            }
            "--checking" => {
                checking = match next_arg(&mut args, "--checking").as_str() {
                    "none" => CheckingMode::None,
                    "full" => CheckingMode::Full,
                    v => {
                        eprintln!("unknown checking mode {v:?}");
                        usage()
                    }
                };
            }
            "--hw" => hw_name = next_arg(&mut args, "--hw"),
            "--folded" => folded = true,
            "--metrics" => metrics = Some(next_arg(&mut args, "--metrics")),
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage()
            }
        }
    }
    let hw = match hw_name.as_str() {
        "plain" => mipsx::HwConfig::plain(),
        "tagbr" => mipsx::HwConfig::with_tag_branch(),
        "genarith" => mipsx::HwConfig::with_generic_arith(),
        "maximal" => mipsx::HwConfig::maximal(scheme.tag_bits()),
        "spur" => mipsx::HwConfig::spur(scheme.tag_bits()),
        v => {
            eprintln!("unknown hardware level {v:?}");
            usage()
        }
    };
    let config = Config::new(scheme, checking).with_hw(hw);

    let session = bench::session();
    let (measurement, profiler) =
        bench::unwrap_study(session.profile(&benchmark, config, programs::FUEL));

    if folded {
        // Folded stacks only: pipeable straight into flamegraph.pl.
        print!("{}", profiler.folded());
    } else {
        print!("{}", bench::profile_report(&measurement, &profiler));
    }
    match metrics.as_deref() {
        None => {}
        Some("json") => println!("{}", session.metrics_json()),
        Some("prom") => print!("{}", session.metrics_prometheus()),
        Some(v) => {
            eprintln!("unknown metrics format {v:?} (want json or prom)");
            usage()
        }
    }
}
