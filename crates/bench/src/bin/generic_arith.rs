//! Regenerate the §4.2/§6.2.2 generic-arithmetic studies.

fn main() {
    bench::reject_args("generic_arith");
    let mut session = bench::session();
    let g = bench::unwrap_study(tagstudy::tables::generic_arith_study_for(
        &mut session,
        &tagstudy::tables::default_programs(),
    ));
    print!("{}", tagstudy::report::render_generic(&g));
    bench::report_session(&session);
}
