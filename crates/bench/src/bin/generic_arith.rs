//! Regenerate the §4.2/§6.2.2 generic-arithmetic studies.

fn main() {
    let g = bench::unwrap_study(tagstudy::tables::generic_arith_study_for(
        &tagstudy::tables::default_programs(),
    ));
    print!("{}", tagstudy::report::render_generic(&g));
}
