//! Run every experiment and print the full report (EXPERIMENTS.md source).
//!
//! All tables share one [`tagstudy::Session`], so overlapping configurations
//! (the HighTag5 baselines, Table 2's hardware levels) are compiled and
//! simulated exactly once; the session summary on stderr shows how much the
//! cache saved.

fn main() {
    use tagstudy::{report, tables};
    let mut session = bench::session();
    let names = tables::default_programs();

    println!("== Table 3 ==");
    print!(
        "{}",
        report::render_table3(&bench::unwrap_study(tables::table3_for(
            &mut session,
            &names
        )))
    );
    println!();

    println!("== Table 1 ==");
    print!(
        "{}",
        report::render_table1(&bench::unwrap_study(tables::table1_for(
            &mut session,
            &names
        )))
    );
    println!();

    println!("== Figure 1 ==");
    print!(
        "{}",
        report::render_figure1(&bench::unwrap_study(tables::figure1_for(
            &mut session,
            &names
        )))
    );
    print!(
        "{}",
        report::render_preshift(&bench::unwrap_study(tables::preshift_study_for(
            &mut session,
            &names
        )))
    );
    println!();

    println!("== Figure 2 ==");
    print!(
        "{}",
        report::render_figure2(&bench::unwrap_study(tables::figure2_for(
            &mut session,
            &names
        )))
    );
    println!();

    println!("== Table 2 ==");
    print!(
        "{}",
        report::render_table2(&bench::unwrap_study(tables::table2_for(
            &mut session,
            &names
        )))
    );
    println!();

    println!("== Integer-test methods (§4.1) ==");
    print!(
        "{}",
        report::render_int_test(&bench::unwrap_study(tables::int_test_study_for(
            &mut session,
            &names
        )))
    );
    println!();

    println!("== Generic arithmetic (§4.2 / §6.2.2) ==");
    print!(
        "{}",
        report::render_generic(&bench::unwrap_study(tables::generic_arith_study_for(
            &mut session,
            &names
        )))
    );
    println!();

    println!("== Scheme comparison (extension) ==");
    print!(
        "{}",
        report::render_schemes(&bench::unwrap_study(tables::scheme_comparison_for(
            &mut session,
            &names
        )))
    );

    bench::report_session(&session);
}
