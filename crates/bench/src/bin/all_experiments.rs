//! Run every experiment and print the full report (EXPERIMENTS.md source).

fn main() {
    use tagstudy::{report, tables};
    let names = tables::default_programs();

    println!("== Table 3 ==");
    print!(
        "{}",
        report::render_table3(&bench::unwrap_study(tables::table3()))
    );
    println!();

    println!("== Table 1 ==");
    print!(
        "{}",
        report::render_table1(&bench::unwrap_study(tables::table1()))
    );
    println!();

    println!("== Figure 1 ==");
    print!(
        "{}",
        report::render_figure1(&bench::unwrap_study(tables::figure1()))
    );
    print!(
        "{}",
        report::render_preshift(&bench::unwrap_study(tables::preshift_study_for(&names)))
    );
    println!();

    println!("== Figure 2 ==");
    print!(
        "{}",
        report::render_figure2(&bench::unwrap_study(tables::figure2()))
    );
    println!();

    println!("== Table 2 ==");
    print!(
        "{}",
        report::render_table2(&bench::unwrap_study(tables::table2()))
    );
    println!();

    println!("== Integer-test methods (§4.1) ==");
    print!(
        "{}",
        report::render_int_test(&bench::unwrap_study(tables::int_test_study_for(&names)))
    );
    println!();

    println!("== Generic arithmetic (§4.2 / §6.2.2) ==");
    print!(
        "{}",
        report::render_generic(&bench::unwrap_study(tables::generic_arith_study_for(
            &names
        )))
    );
    println!();

    println!("== Scheme comparison (extension) ==");
    print!(
        "{}",
        report::render_schemes(&bench::unwrap_study(tables::scheme_comparison_for(&names)))
    );
}
