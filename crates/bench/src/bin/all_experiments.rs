//! Run every experiment and print the full report (EXPERIMENTS.md source).
//!
//! The report body comes from [`tagstudy::report::full_report`], which the
//! golden-snapshot test (`tests/golden_tables.rs` at the workspace root) pins
//! byte for byte — this binary and the test cannot drift apart.
//!
//! All tables share one [`tagstudy::Session`], so overlapping configurations
//! (the HighTag5 baselines, Table 2's hardware levels) are compiled and
//! simulated exactly once; the session summary on stderr shows how much the
//! cache saved.

fn main() {
    bench::reject_args("all_experiments");
    use tagstudy::{report, tables};
    let mut session = bench::session();
    let names = tables::default_programs();
    print!(
        "{}",
        bench::unwrap_study(report::full_report(&mut session, &names))
    );
    bench::report_session(&session);
}
