//! Regenerate Figure 2: instruction-frequency reduction from eliminating
//! tag masking.

fn main() {
    let f = bench::unwrap_study(tagstudy::tables::figure2());
    print!("{}", tagstudy::report::render_figure2(&f));
}
