//! Regenerate Figure 2: instruction-frequency reduction from eliminating
//! tag masking.

fn main() {
    bench::reject_args("figure2");
    let mut session = bench::session();
    let f = bench::unwrap_study(tagstudy::tables::figure2_for(
        &mut session,
        &tagstudy::tables::default_programs(),
    ));
    print!("{}", tagstudy::report::render_figure2(&f));
    bench::report_session(&session);
}
