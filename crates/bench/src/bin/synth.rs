//! Mix-sweep study: checking overhead as a function of the operation mix.
//!
//! The paper's Table 1 spread — 6% overhead for list-heavy programs up to 88%
//! for arithmetic-heavy ones — is a statement about *op mixes*, sampled at
//! the ten fixed benchmarks. This study makes the claim continuous: it sweeps
//! a seeded generated workload (`synth`) along the list→arith axis by
//! interpolating the op-mix profile, measures every point with checking off
//! and on, and records the overhead curve as JSON.
//!
//! ```text
//! synth [--points N] [--seeds M] [--seed-base K]
//!       [--scheme high5|high6|low2|low3] [--hw plain|tagbr|genarith|maximal|spur]
//!       [--out PATH] [--smoke]
//! ```
//!
//! Every generated program is registered on the measurement
//! [`Session`](tagstudy::Session) as an inline source, so the sweep rides the
//! same memoizing engine (and the same `inline:<hash>` naming) as the daemon.
//!
//! The run fails (exit 1) unless the curve satisfies the two properties the
//! sweep exists to demonstrate:
//!
//! 1. overhead is monotone non-decreasing along the list→arith axis (within a
//!    small tolerance), and
//! 2. the arith-heavy end's overhead is at least 3× the list-heavy end's.
//!
//! `--smoke` shrinks the sweep (3 points × 2 seeds) for CI; determinism makes
//! even the small sweep reproducible bit-for-bit.

use bench::spec;
use synth::OpMix;
use tagstudy::{CheckingMode, Config, InlineProgram, Session};

/// Minimum arith-end : list-end overhead ratio the sweep must exhibit
/// (the paper's own spread is ~15×: 6% to 88%).
const MIN_SPAN: f64 = 3.0;
/// Relative tolerance for the monotonicity check: a point may dip below its
/// predecessor by at most this fraction of the predecessor's overhead.
const MONOTONE_TOLERANCE: f64 = 0.05;

fn usage() -> ! {
    eprintln!(
        "usage: synth [--points N] [--seeds M] [--seed-base K] \
         [--scheme high5|high6|low2|low3] [--hw plain|tagbr|genarith|maximal|spur] \
         [--out PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn next_arg(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

fn parse_or_usage<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|message| {
        eprintln!("{message}");
        usage()
    })
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {text:?}");
        usage()
    })
}

/// One measured point of the sweep.
struct Point {
    t: f64,
    mix: OpMix,
    none_cycles: u64,
    full_cycles: u64,
}

impl Point {
    /// Checking overhead at this point: extra cycles with checking on,
    /// relative to checking off, aggregated over the point's seeds.
    fn overhead(&self) -> f64 {
        (self.full_cycles as f64 - self.none_cycles as f64) / self.none_cycles as f64
    }
}

fn main() {
    let mut points = 9usize;
    let mut seeds = 6u64;
    let mut seed_base = 0u64;
    let mut scheme = tagword::TagScheme::HighTag5;
    let mut hw_name = spec::DEFAULT_HW.to_string();
    let mut out_path = "BENCH_synth_mix_sweep.json".to_string();

    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => points = parse_num(&next_arg(&mut args, "--points"), "--points"),
            "--seeds" => seeds = parse_num(&next_arg(&mut args, "--seeds"), "--seeds"),
            "--seed-base" => {
                seed_base = parse_num(&next_arg(&mut args, "--seed-base"), "--seed-base");
            }
            "--scheme" => {
                scheme = parse_or_usage(spec::parse_scheme(&next_arg(&mut args, "--scheme")));
            }
            "--hw" => hw_name = next_arg(&mut args, "--hw"),
            "--out" => out_path = next_arg(&mut args, "--out"),
            "--smoke" => {
                points = 3;
                seeds = 2;
            }
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage()
            }
        }
    }
    if points < 2 || seeds == 0 {
        eprintln!("need at least 2 points and 1 seed");
        usage();
    }
    let hw = parse_or_usage(spec::parse_hw(&hw_name, scheme));
    let config_none = Config::new(scheme, CheckingMode::None).with_hw(hw);
    let config_full = Config::new(scheme, CheckingMode::Full).with_hw(hw);

    let list_end = OpMix::list_heavy();
    let arith_end = OpMix::arith_heavy();
    let mut session = Session::new();

    let mut curve: Vec<Point> = Vec::with_capacity(points);
    for i in 0..points {
        let t = i as f64 / (points - 1) as f64;
        let mix = OpMix::lerp(&list_end, &arith_end, t);
        // Register every seed's program, then measure the whole point as one
        // deduplicated batch across both checking modes.
        let names: Vec<String> = (0..seeds)
            .map(|s| {
                let source = synth::render(&synth::generate(seed_base + s, &mix));
                let name = spec::inline_name(&source);
                session.register_source(&name, InlineProgram::new(source));
                name
            })
            .collect();
        let requests: Vec<(&str, Config)> = names
            .iter()
            .flat_map(|n| [(n.as_str(), config_none), (n.as_str(), config_full)])
            .collect();
        let measurements = bench::unwrap_study(session.measure_many(&requests));
        let mut point = Point {
            t,
            mix,
            none_cycles: 0,
            full_cycles: 0,
        };
        for m in &measurements {
            if m.config == config_none {
                point.none_cycles += m.stats.cycles;
            } else {
                point.full_cycles += m.stats.cycles;
            }
        }
        eprintln!(
            "[synth] t={t:.3} mix=({}) none={} full={} overhead={:+.1}%",
            point.mix,
            point.none_cycles,
            point.full_cycles,
            point.overhead() * 100.0
        );
        curve.push(point);
    }

    let first = curve.first().expect("at least 2 points").overhead();
    let last = curve.last().expect("at least 2 points").overhead();
    let span = last / first;
    let monotone = curve
        .windows(2)
        .all(|w| w[1].overhead() >= w[0].overhead() * (1.0 - MONOTONE_TOLERANCE));

    let json = render_json(&curve, scheme, &hw_name, seeds, seed_base, span, monotone);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });

    println!(
        "mix sweep: {} points x {} seeds, scheme {}, hw {}",
        points,
        seeds,
        scheme.name(),
        hw_name
    );
    println!(
        "overhead {:.1}% (list-heavy) -> {:.1}% (arith-heavy): span {span:.2}x, monotone: {monotone}",
        first * 100.0,
        last * 100.0
    );
    println!("wrote {out_path}");

    if !monotone || span < MIN_SPAN {
        eprintln!(
            "FAIL: expected a monotone overhead curve spanning >= {MIN_SPAN}x along the \
             list->arith axis (got span {span:.2}x, monotone {monotone})"
        );
        std::process::exit(1);
    }
}

/// Hand-rendered JSON document for the sweep (the workspace is std-only).
#[allow(clippy::too_many_arguments)]
fn render_json(
    curve: &[Point],
    scheme: tagword::TagScheme,
    hw_name: &str,
    seeds: u64,
    seed_base: u64,
    span: f64,
    monotone: bool,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"study\": \"synth_mix_sweep\",");
    let _ = writeln!(out, "  \"axis\": \"list_heavy -> arith_heavy\",");
    let _ = writeln!(out, "  \"scheme\": \"{}\",", scheme.name());
    let _ = writeln!(out, "  \"hw\": \"{hw_name}\",");
    let _ = writeln!(out, "  \"seeds_per_point\": {seeds},");
    let _ = writeln!(out, "  \"seed_base\": {seed_base},");
    let _ = writeln!(out, "  \"span_ratio\": {span:.4},");
    let _ = writeln!(out, "  \"monotone\": {monotone},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in curve.iter().enumerate() {
        let comma = if i + 1 < curve.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"t\": {:.4}, \"mix\": \"{}\", \"none_cycles\": {}, \"full_cycles\": {}, \
             \"overhead\": {:.4}}}{comma}",
            p.t,
            p.mix,
            p.none_cycles,
            p.full_cycles,
            p.overhead()
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
