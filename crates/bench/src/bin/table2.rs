//! Regenerate Table 2: % of cycles eliminated by each hardware/software
//! support level, including the §7 SPUR comparison.

fn main() {
    bench::reject_args("table2");
    let mut session = bench::session();
    let t = bench::unwrap_study(tagstudy::tables::table2_for(
        &mut session,
        &tagstudy::tables::default_programs(),
    ));
    print!("{}", tagstudy::report::render_table2(&t));
    bench::report_session(&session);
}
