//! Regenerate Table 2: % of cycles eliminated by each hardware/software
//! support level, including the §7 SPUR comparison.

fn main() {
    let t = bench::unwrap_study(tagstudy::tables::table2());
    print!("{}", tagstudy::report::render_table2(&t));
}
