//! Regenerate Table 1: % increase in execution time from full run-time checking.

fn main() {
    let t = bench::unwrap_study(tagstudy::tables::table1());
    print!("{}", tagstudy::report::render_table1(&t));
}
