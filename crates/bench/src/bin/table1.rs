//! Regenerate Table 1: % increase in execution time from full run-time checking.

fn main() {
    bench::reject_args("table1");
    let mut session = bench::session();
    let t = bench::unwrap_study(tagstudy::tables::table1_for(
        &mut session,
        &tagstudy::tables::default_programs(),
    ));
    print!("{}", tagstudy::report::render_table1(&t));
    bench::report_session(&session);
}
