//! Timing-realism study: re-run the scheme × checking × hardware grid under
//! the microarchitectural timing presets and report where stalls change the
//! paper's rankings.
//!
//! ```text
//! timing [--programs a,b,c] [--presets p1,p2] [--out PATH] [--smoke]
//! ```
//!
//! Every grid cell is measured under each preset through one
//! [`tagstudy::Session`], so the `ideal` column reuses exactly the
//! architectural measurements the tables are built from. For each non-ideal
//! cell the binary asserts, to the cycle, that the stall breakdown reconciles
//! (`timed = architectural + icache + dcache + mispredict + load-use`) and
//! that the classic and predecoded backends produce an identical breakdown
//! (sampled per program). It then ranks the schemes within each
//! (checking, hardware) group by total cycles — architectural vs timed — and
//! prints every group whose order changes: the "ranking flips" table.
//!
//! The whole measurement lands in `--out` (default `BENCH_timing_grid.json`)
//! for the benchmark trail. `--smoke` shrinks the workload list for CI; the
//! asserts all stay on.

use std::collections::BTreeMap;

use lisp::CheckingMode;
use mipsx::{Backend, HwConfig, StallCause, TimingConfig, ALL_STALL_CAUSES};
use tagstudy::{Config, Measurement};
use tagword::TagScheme;

/// Default workload list: all ten benchmarks, matching `all_experiments`.
const DEFAULT_PROGRAMS: &str = "inter,deduce,dedgc,rat,comp,opt,frl,boyer,brow,trav";
/// Smoke workload list: the cheapest pair that still exercises both a
/// list-heavy and an arithmetic-heavy op mix.
const SMOKE_PROGRAMS: &str = "frl,trav";
/// Default preset sweep. `ideal` must come first: it is the baseline the
/// flips table compares against.
const DEFAULT_PRESETS: &str = "ideal,classic5,modern";

fn usage() -> ! {
    eprintln!("usage: timing [--programs a,b,c] [--presets p1,p2] [--out PATH] [--smoke]");
    std::process::exit(2);
}

fn next_arg(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

/// The hardware levels of the grid, by spec-grammar name.
fn hw_levels(scheme: TagScheme) -> [(&'static str, HwConfig); 3] {
    [
        ("plain", HwConfig::plain()),
        ("tagbr", HwConfig::with_tag_branch()),
        ("maximal", HwConfig::maximal(scheme.tag_bits())),
    ]
}

/// One measured grid cell under one preset.
struct Cell {
    program: String,
    scheme: TagScheme,
    checking: CheckingMode,
    hw: &'static str,
    preset: &'static str,
    cycles: u64,
    timed_cycles: u64,
    stalls: [u64; 4],
    timing: Option<mipsx::TimingStats>,
}

/// Assert the acceptance criterion: the stall breakdown accounts for every
/// timed cycle, with nothing lost or invented.
fn assert_reconciles(m: &Measurement) -> (u64, [u64; 4]) {
    match &m.stats.timing {
        None => {
            assert!(
                m.config.timing.is_ideal(),
                "{}/{}: non-ideal timing produced no stall breakdown",
                m.program,
                m.config
            );
            (m.stats.cycles, [0; 4])
        }
        Some(t) => {
            let stalls: Vec<u64> = ALL_STALL_CAUSES.iter().map(|&c| t.stall(c)).collect();
            let timed = t.timed_cycles(m.stats.cycles);
            assert_eq!(
                timed,
                m.stats.cycles + stalls.iter().sum::<u64>(),
                "{}/{}: stall breakdown does not reconcile to the cycle",
                m.program,
                m.config
            );
            (timed, [stalls[0], stalls[1], stalls[2], stalls[3]])
        }
    }
}

/// Backend equivalence: the stall breakdown is a function of the retirement
/// stream, which every backend produces identically — so the full
/// `TimingStats` must match between the classic and predecoded executors.
fn assert_backend_equivalence(session: &tagstudy::Session, program: &str, config: Config) {
    let classic = session
        .measure_uncached(program, config.with_backend(Backend::Classic))
        .unwrap_or_else(|e| panic!("{program}: classic backend failed: {e}"));
    let fast = session
        .measure_uncached(program, config.with_backend(Backend::Fast))
        .unwrap_or_else(|e| panic!("{program}: fast backend failed: {e}"));
    assert_eq!(classic.stats.cycles, fast.stats.cycles, "{program}: cycles");
    assert_eq!(
        classic.stats.timing, fast.stats.timing,
        "{program} under {config}: backends disagree on the stall breakdown"
    );
}

/// A scheme ranking within one (checking, hardware) group: scheme names in
/// ascending order of total cycles across the measured programs.
fn rank_schemes(totals: &BTreeMap<&'static str, u64>) -> Vec<&'static str> {
    let mut order: Vec<(&'static str, u64)> = totals.iter().map(|(s, c)| (*s, *c)).collect();
    order.sort_by_key(|&(name, cycles)| (cycles, name));
    order.into_iter().map(|(name, _)| name).collect()
}

/// One ranking comparison: a (checking, hardware) group's scheme order under
/// ideal vs one timed preset.
struct Flip {
    preset: &'static str,
    checking: CheckingMode,
    hw: &'static str,
    ideal_order: Vec<&'static str>,
    timed_order: Vec<&'static str>,
}

fn main() {
    let mut program_list = DEFAULT_PROGRAMS.to_string();
    let mut preset_list = DEFAULT_PRESETS.to_string();
    let mut out_path = "BENCH_timing_grid.json".to_string();

    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--programs" => program_list = next_arg(&mut args, "--programs"),
            "--presets" => preset_list = next_arg(&mut args, "--presets"),
            "--out" => out_path = next_arg(&mut args, "--out"),
            "--smoke" => program_list = SMOKE_PROGRAMS.to_string(),
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage()
            }
        }
    }

    let programs: Vec<&str> = program_list.split(',').map(str::trim).collect();
    for name in &programs {
        if programs::by_name(name).is_none() {
            eprintln!("unknown benchmark {name:?}");
            usage();
        }
    }
    let mut presets: Vec<(&'static str, TimingConfig)> = Vec::new();
    for name in preset_list.split(',').map(str::trim) {
        let Some(config) = TimingConfig::preset(name) else {
            eprintln!(
                "unknown timing preset {name:?} (want one of: {})",
                mipsx::TIMING_PRESETS.join(", ")
            );
            usage()
        };
        presets.push((config.preset_name(), config));
    }
    if !presets.iter().any(|(name, _)| *name == "ideal") {
        // Without the architectural baseline there is nothing to diff the
        // timed rankings against.
        presets.insert(0, ("ideal", TimingConfig::ideal()));
    }

    let mut session = bench::session();
    let mut cells: Vec<Cell> = Vec::new();
    for &(preset, timing) in &presets {
        // One batch per preset so the session's worker pool sees the whole
        // grid at once.
        let mut requests: Vec<(&str, Config)> = Vec::new();
        for &program in &programs {
            for scheme in tagword::ALL_SCHEMES {
                for checking in [CheckingMode::None, CheckingMode::Full] {
                    for (_, hw) in hw_levels(scheme) {
                        let config = Config::new(scheme, checking)
                            .with_hw(hw)
                            .with_timing(timing);
                        requests.push((program, config));
                    }
                }
            }
        }
        let measured = bench::unwrap_study(session.measure_many(&requests));
        for m in measured {
            let (timed_cycles, stalls) = assert_reconciles(&m);
            let hw = hw_levels(m.config.scheme)
                .iter()
                .find(|(_, h)| *h == m.config.hw)
                .map(|(name, _)| *name)
                .expect("grid hardware level");
            cells.push(Cell {
                program: m.program.clone(),
                scheme: m.config.scheme,
                checking: m.config.checking,
                hw,
                preset,
                cycles: m.stats.cycles,
                timed_cycles,
                stalls,
                timing: m.stats.timing,
            });
        }
    }

    // Backend equivalence, sampled: every program once per non-ideal preset,
    // at the paper's baseline point.
    for &(preset, timing) in &presets {
        if timing.is_ideal() {
            continue;
        }
        for &program in &programs {
            let config = Config::baseline(CheckingMode::Full).with_timing(timing);
            assert_backend_equivalence(&session, program, config);
            eprintln!("[timing] {program}: classic/fast stall breakdowns identical under {preset}");
        }
    }

    // Per-preset scheme totals within each (checking, hw) group.
    type GroupKey = (&'static str, String, &'static str); // (preset, checking, hw)
    let mut totals: BTreeMap<GroupKey, BTreeMap<&'static str, u64>> = BTreeMap::new();
    for cell in &cells {
        let key = (cell.preset, format!("{:?}", cell.checking), cell.hw);
        *totals
            .entry(key)
            .or_default()
            .entry(cell.scheme.name())
            .or_default() += cell.timed_cycles;
    }

    let mut flips: Vec<Flip> = Vec::new();
    for &(preset, timing) in &presets {
        if timing.is_ideal() {
            continue;
        }
        for checking in [CheckingMode::None, CheckingMode::Full] {
            for (hw, _) in hw_levels(TagScheme::HighTag5) {
                let checking_name = format!("{checking:?}");
                let ideal = &totals[&("ideal", checking_name.clone(), hw)];
                let timed = &totals[&(preset, checking_name, hw)];
                let ideal_order = rank_schemes(ideal);
                let timed_order = rank_schemes(timed);
                if ideal_order != timed_order {
                    flips.push(Flip {
                        preset,
                        checking,
                        hw,
                        ideal_order,
                        timed_order,
                    });
                }
            }
        }
    }

    println!(
        "timing grid: {} programs x {} schemes x 2 checking x 3 hw x {} presets = {} cells",
        programs.len(),
        tagword::ALL_SCHEMES.len(),
        presets.len(),
        cells.len()
    );
    println!("every non-ideal cell's stall breakdown reconciles to the cycle");
    println!();
    if flips.is_empty() {
        println!(
            "ranking flips: none — the scheme order is robust to every measured timing model"
        );
    } else {
        println!("ranking flips (scheme order by total cycles, ideal -> timed):");
        for f in &flips {
            println!(
                "  {:<8} {:<4?}/{:<7}  {}  ->  {}",
                f.preset,
                f.checking,
                f.hw,
                f.ideal_order.join(" < "),
                f.timed_order.join(" < ")
            );
        }
    }

    let json = render_json(&programs, &presets, &cells, &flips);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!();
    println!("wrote {out_path}");
    bench::report_session(&session);
}

/// Hand-rendered JSON document for the study (the workspace is std-only).
fn render_json(
    programs: &[&str],
    presets: &[(&'static str, TimingConfig)],
    cells: &[Cell],
    flips: &[Flip],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"study\": \"timing_grid\",");
    let _ = writeln!(
        out,
        "  \"programs\": [{}],",
        programs
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"presets\": [{}],",
        presets
            .iter()
            .map(|(name, _)| format!("\"{name}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"ranking_flips\": [");
    for (i, f) in flips.iter().enumerate() {
        let comma = if i + 1 < flips.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"preset\": \"{}\", \"checking\": \"{:?}\", \"hw\": \"{}\", \
             \"ideal_order\": [{}], \"timed_order\": [{}]}}{comma}",
            f.preset,
            f.checking,
            f.hw,
            f.ideal_order
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(", "),
            f.timed_order
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let mut line = format!(
            "    {{\"program\": \"{}\", \"scheme\": \"{}\", \"checking\": \"{:?}\", \
             \"hw\": \"{}\", \"preset\": \"{}\", \"cycles\": {}, \"timed_cycles\": {}",
            c.program,
            c.scheme.name(),
            c.checking,
            c.hw,
            c.preset,
            c.cycles,
            c.timed_cycles
        );
        for (cause, stall) in ALL_STALL_CAUSES.iter().zip(c.stalls) {
            let _ = write!(line, ", \"stall_{}\": {stall}", json_cause(*cause));
        }
        if let Some(t) = &c.timing {
            let _ = write!(
                line,
                ", \"icache_misses\": {}, \"dcache_misses\": {}, \"l2_misses\": {}, \
                 \"branches\": {}, \"mispredicts\": {}",
                t.icache_misses, t.dcache_misses, t.l2_misses, t.branches, t.mispredicts
            );
        }
        let _ = writeln!(out, "{line}}}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Stable JSON field suffix for a stall cause.
fn json_cause(cause: StallCause) -> &'static str {
    match cause {
        StallCause::Icache => "icache",
        StallCause::Dcache => "dcache",
        StallCause::Mispredict => "mispredict",
        StallCause::LoadUse => "load_use",
    }
}
