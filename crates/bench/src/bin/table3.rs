//! Regenerate Table 3: static statistics of the ten benchmark programs.

fn main() {
    bench::reject_args("table3");
    let mut session = bench::session();
    let t = bench::unwrap_study(tagstudy::tables::table3_for(
        &mut session,
        &tagstudy::tables::default_programs(),
    ));
    print!("{}", tagstudy::report::render_table3(&t));
    bench::report_session(&session);
}
