//! Regenerate Table 3: static statistics of the ten benchmark programs.

fn main() {
    let t = bench::unwrap_study(tagstudy::tables::table3());
    print!("{}", tagstudy::report::render_table3(&t));
}
