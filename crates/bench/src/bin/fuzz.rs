//! In-process differential-fuzzing campaign: the fleet engine over
//! [`synth::fleet::LocalRunner`], without a daemon.
//!
//! ```text
//! fuzz [--smoke] [--seed-base K] [--axis-points N] [--per-cell N]
//!      [--max-programs N] [--witness-dir DIR] [--out PATH]
//! ```
//!
//! Every generated program fans across the full 24-configuration oracle
//! matrix × the classic and fast backends, and every column is diffed against
//! the reference evaluator. The run fails (exit 1) unless the campaign
//! saturates its coverage ledger with **zero divergences** — the executable
//! form of the paper's claim that all tagging schemes compute the same
//! values, differing only in cost.
//!
//! `--smoke` shrinks the campaign (3 cells × 2 programs) for CI; the seed
//! schedule is deterministic, so even the smoke campaign is reproducible
//! bit-for-bit. The campaign report lands as JSON at `--out` and the
//! coverage ledger persists under `--witness-dir` for artifact upload.

use std::path::PathBuf;

use store::fuzz::FuzzStore;
use synth::fleet::{run_campaign, CampaignSpec, LocalRunner};

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--smoke] [--seed-base K] [--axis-points N] [--per-cell N] \
         [--max-programs N] [--witness-dir DIR] [--out PATH]"
    );
    std::process::exit(2);
}

fn next_arg(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {text:?}");
        usage()
    })
}

fn main() {
    let mut spec = CampaignSpec::full();
    let mut witness_dir = PathBuf::from("witnesses");
    let mut out_path = "BENCH_fuzz_campaign.json".to_string();

    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                let full = std::mem::replace(&mut spec, CampaignSpec::smoke());
                spec.seed_base = full.seed_base;
            }
            "--seed-base" => {
                spec.seed_base = parse_num(&next_arg(&mut args, "--seed-base"), "--seed-base");
            }
            "--axis-points" => {
                spec.axis_points =
                    parse_num(&next_arg(&mut args, "--axis-points"), "--axis-points");
            }
            "--per-cell" => {
                spec.per_cell = parse_num(&next_arg(&mut args, "--per-cell"), "--per-cell");
            }
            "--max-programs" => {
                spec.max_programs = Some(parse_num(
                    &next_arg(&mut args, "--max-programs"),
                    "--max-programs",
                ));
            }
            "--witness-dir" => witness_dir = PathBuf::from(next_arg(&mut args, "--witness-dir")),
            "--out" => out_path = next_arg(&mut args, "--out"),
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage()
            }
        }
    }

    let store = FuzzStore::open(&witness_dir).unwrap_or_else(|e| {
        eprintln!("cannot open witness dir {}: {e}", witness_dir.display());
        std::process::exit(1);
    });
    let report = run_campaign(&spec, &store, &mut LocalRunner::default(), false, &mut |p| {
        eprintln!(
            "[fuzz] cell={} programs={} columns={} divergences={} coverage={:.1}%",
            p.cell, p.programs, p.columns_run, p.divergences, p.coverage_percent
        );
    })
    .unwrap_or_else(|why| {
        eprintln!("fuzz: {why}");
        std::process::exit(1);
    });

    let json = render_json(&report);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });

    println!("campaign: {}", report.campaign);
    println!(
        "programs={} columns={} divergences={} witnesses={} coverage={:.1}% complete={}",
        report.programs,
        report.columns_run,
        report.divergences,
        report.witnesses.len(),
        report.coverage_percent,
        report.complete
    );
    for key in &report.witnesses {
        println!("witness {key}");
    }
    println!("wrote {out_path}");

    if report.divergences != 0 || !report.complete {
        eprintln!(
            "FAIL: expected a saturated campaign with zero divergences \
             (got {} divergences, complete: {})",
            report.divergences, report.complete
        );
        std::process::exit(1);
    }
}

/// Hand-rendered JSON report (the workspace is std-only).
fn render_json(report: &synth::fleet::CampaignReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"study\": \"fuzz_campaign\",");
    let _ = writeln!(
        out,
        "  \"campaign\": {},",
        serve_free_json_string(&report.campaign)
    );
    let _ = writeln!(out, "  \"programs\": {},", report.programs);
    let _ = writeln!(out, "  \"columns_run\": {},", report.columns_run);
    let _ = writeln!(out, "  \"columns_skipped\": {},", report.columns_skipped);
    let _ = writeln!(out, "  \"divergences\": {},", report.divergences);
    let _ = writeln!(out, "  \"coverage_percent\": {:.4},", report.coverage_percent);
    let _ = writeln!(out, "  \"complete\": {},", report.complete);
    let _ = writeln!(
        out,
        "  \"witnesses\": [{}]",
        report
            .witnesses
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "}}");
    out
}

/// Minimal JSON string quoting (campaign ids contain no control characters,
/// but escape the structural two just in case).
fn serve_free_json_string(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
