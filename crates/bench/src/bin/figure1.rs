//! Regenerate Figure 1: % of time spent on each tag-handling operation.

fn main() {
    let f = bench::unwrap_study(tagstudy::tables::figure1());
    print!("{}", tagstudy::report::render_figure1(&f));
    let p = bench::unwrap_study(tagstudy::tables::preshift_study_for(
        &tagstudy::tables::default_programs(),
    ));
    print!("{}", tagstudy::report::render_preshift(&p));
}
