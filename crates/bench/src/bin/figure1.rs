//! Regenerate Figure 1: % of time spent on each tag-handling operation.

fn main() {
    bench::reject_args("figure1");
    let mut session = bench::session();
    let names = tagstudy::tables::default_programs();
    let f = bench::unwrap_study(tagstudy::tables::figure1_for(&mut session, &names));
    print!("{}", tagstudy::report::render_figure1(&f));
    // The preshift ablation reuses Figure 1's unchecked baseline from the cache.
    let p = bench::unwrap_study(tagstudy::tables::preshift_study_for(&mut session, &names));
    print!("{}", tagstudy::report::render_preshift(&p));
    bench::report_session(&session);
}
