//! Textual experiment specs, shared by every front end.
//!
//! One experiment point is written `program:scheme:checking:hw` with trailing
//! fields optional (`frl`, `frl:low2`, `frl:high5:full:tagbr`, …). The same
//! grammar — and the same flag vocabulary (`--scheme`, `--checking`, `--hw`)
//! — is understood by the `profile` binary, the `tagctl` client, and the
//! `tagstudyd` daemon's wire protocol, so a spec that works in one place works
//! everywhere.

use tagstudy::{CheckingMode, Config};

/// Defaults when a spec omits a field: the paper's measured configuration
/// (HighTag5, full checking, stock hardware).
pub const DEFAULT_SCHEME: &str = "high5";
/// Default checking mode name.
pub const DEFAULT_CHECKING: &str = "full";
/// Default hardware level name.
pub const DEFAULT_HW: &str = "plain";

/// The accepted hardware level names, for usage strings.
pub const HW_LEVELS: &[&str] = &["plain", "tagbr", "genarith", "maximal", "spur"];

/// One validated experiment point: a known benchmark and a full [`Config`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExperimentSpec {
    /// Benchmark name (validated against [`programs::names`]).
    pub program: String,
    /// The configuration to measure it under.
    pub config: Config,
}

impl ExperimentSpec {
    /// Render back to the canonical `program:scheme:checking:hw` form.
    pub fn to_spec_string(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.program,
            self.config.scheme.name(),
            match self.config.checking {
                CheckingMode::None => "none",
                CheckingMode::Full => "full",
            },
            hw_level_name(&self.config)
        )
    }
}

/// Name the hardware level of `config` (the inverse of [`parse_hw`] for the
/// levels the spec grammar can express; unrecognised combinations print as
/// `custom`).
pub fn hw_level_name(config: &Config) -> &'static str {
    let bits = config.scheme.tag_bits();
    let hw = config.hw;
    if hw == mipsx::HwConfig::plain() {
        "plain"
    } else if hw == mipsx::HwConfig::with_tag_branch() {
        "tagbr"
    } else if hw == mipsx::HwConfig::with_generic_arith() {
        "genarith"
    } else if hw == mipsx::HwConfig::maximal(bits) {
        "maximal"
    } else if hw == mipsx::HwConfig::spur(bits) {
        "spur"
    } else {
        "custom"
    }
}

/// Parse a tag-scheme name (`high5`, `high6`, `low2`, `low3`).
///
/// # Errors
///
/// A usage-ready message naming the accepted schemes.
pub fn parse_scheme(name: &str) -> Result<tagword::TagScheme, String> {
    tagword::ALL_SCHEMES
        .iter()
        .find(|s| s.name() == name)
        .copied()
        .ok_or_else(|| {
            let all: Vec<&str> = tagword::ALL_SCHEMES.iter().map(|s| s.name()).collect();
            format!("unknown scheme {name:?} (want one of: {})", all.join(", "))
        })
}

/// Parse a checking-mode name (`none` or `full`).
///
/// # Errors
///
/// A usage-ready message naming the accepted modes.
pub fn parse_checking(name: &str) -> Result<CheckingMode, String> {
    match name {
        "none" => Ok(CheckingMode::None),
        "full" => Ok(CheckingMode::Full),
        _ => Err(format!("unknown checking mode {name:?} (want none or full)")),
    }
}

/// Parse a hardware level name for `scheme` (the tag-dependent levels need the
/// scheme's tag width).
///
/// # Errors
///
/// A usage-ready message naming the accepted levels.
pub fn parse_hw(name: &str, scheme: tagword::TagScheme) -> Result<mipsx::HwConfig, String> {
    match name {
        "plain" => Ok(mipsx::HwConfig::plain()),
        "tagbr" => Ok(mipsx::HwConfig::with_tag_branch()),
        "genarith" => Ok(mipsx::HwConfig::with_generic_arith()),
        "maximal" => Ok(mipsx::HwConfig::maximal(scheme.tag_bits())),
        "spur" => Ok(mipsx::HwConfig::spur(scheme.tag_bits())),
        _ => Err(format!(
            "unknown hardware level {name:?} (want one of: {})",
            HW_LEVELS.join(", ")
        )),
    }
}

/// Parse one `program[:scheme[:checking[:hw]]]` spec, validating the benchmark
/// name against the registry.
///
/// # Errors
///
/// A usage-ready message for an unknown benchmark, unknown field value, or too
/// many `:`-separated fields.
pub fn parse_spec(text: &str) -> Result<ExperimentSpec, String> {
    let mut fields = text.split(':');
    let program = fields.next().unwrap_or_default();
    if programs::by_name(program).is_none() {
        return Err(format!(
            "unknown benchmark {program:?} (want one of: {})",
            programs::names().join(", ")
        ));
    }
    let scheme = parse_scheme(fields.next().unwrap_or(DEFAULT_SCHEME))?;
    let checking = parse_checking(fields.next().unwrap_or(DEFAULT_CHECKING))?;
    let hw = parse_hw(fields.next().unwrap_or(DEFAULT_HW), scheme)?;
    if let Some(extra) = fields.next() {
        return Err(format!(
            "trailing field {extra:?} in spec {text:?} (want program[:scheme[:checking[:hw]]])"
        ));
    }
    Ok(ExperimentSpec {
        program: program.to_string(),
        config: Config::new(scheme, checking).with_hw(hw),
    })
}

/// One line describing the spec grammar, for usage messages.
pub fn spec_grammar() -> String {
    let schemes: Vec<&str> = tagword::ALL_SCHEMES.iter().map(|s| s.name()).collect();
    format!(
        "spec: program[:scheme[:checking[:hw]]]  (schemes: {}; checking: none|full; hw: {})\n\
         benchmarks: {}",
        schemes.join("|"),
        HW_LEVELS.join("|"),
        programs::names().join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_full_form() {
        let s = parse_spec("frl").unwrap();
        assert_eq!(s.program, "frl");
        assert_eq!(s.config, Config::baseline(CheckingMode::Full));
        assert_eq!(s.to_spec_string(), "frl:high5:full:plain");

        let s = parse_spec("boyer:low2:none:tagbr").unwrap();
        assert_eq!(s.config.scheme, tagword::TagScheme::LowTag2);
        assert_eq!(s.config.checking, CheckingMode::None);
        assert_eq!(s.config.hw, mipsx::HwConfig::with_tag_branch());
        assert_eq!(s.to_spec_string(), "boyer:low2:none:tagbr");
    }

    #[test]
    fn every_hw_level_round_trips() {
        for hw in HW_LEVELS {
            let s = parse_spec(&format!("frl:high6:full:{hw}")).unwrap();
            assert_eq!(hw_level_name(&s.config), *hw);
            assert_eq!(parse_spec(&s.to_spec_string()).unwrap(), s);
        }
    }

    #[test]
    fn bad_specs_are_described() {
        assert!(parse_spec("nope").unwrap_err().contains("unknown benchmark"));
        assert!(parse_spec("frl:tag9").unwrap_err().contains("unknown scheme"));
        assert!(parse_spec("frl:high5:maybe").unwrap_err().contains("checking"));
        assert!(parse_spec("frl:high5:full:warp").unwrap_err().contains("hardware"));
        assert!(parse_spec("frl:high5:full:plain:x").unwrap_err().contains("trailing"));
    }
}
