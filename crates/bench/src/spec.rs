//! Textual experiment specs, shared by every front end.
//!
//! One experiment point is written `program:scheme:checking:hw` with trailing
//! fields optional (`frl`, `frl:low2`, `frl:high5:full:tagbr`, …). Trailing
//! `key=value` fields (in any order) refine the point: a
//! `backend=classic|fast|ref` field pins the simulator backend
//! (`frl:backend=ref`, `frl:low2:none:plain:backend=classic`); backends
//! produce identical results, so that key never enters cache identities. A
//! `timing=ideal|classic5|modern` field attaches a microarchitectural timing
//! model (`frl:low2:none:plain:timing=modern`) — unlike the backend, timing
//! **is** part of the point's identity, since it adds a stall breakdown to
//! the measured stats. The same grammar — and the same flag vocabulary (`--scheme`, `--checking`,
//! `--hw`) — is understood by the `profile` binary, the `tagctl` client, and
//! the `tagstudyd` daemon's wire protocol, so a spec that works in one place
//! works everywhere.

use tagstudy::{CheckingMode, Config};

/// Defaults when a spec omits a field: the paper's measured configuration
/// (HighTag5, full checking, stock hardware).
pub const DEFAULT_SCHEME: &str = "high5";
/// Default checking mode name.
pub const DEFAULT_CHECKING: &str = "full";
/// Default hardware level name.
pub const DEFAULT_HW: &str = "plain";

/// The accepted hardware level names, for usage strings.
pub const HW_LEVELS: &[&str] = &["plain", "tagbr", "genarith", "maximal", "spur"];

/// One validated experiment point: a program and a full [`Config`].
///
/// The program is usually one of the ten built-in benchmarks (validated
/// against [`programs::names`]); an *inline* spec instead carries its own
/// Lisp source and a content-derived `inline:<hash>` name (see
/// [`ExperimentSpec::inline`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExperimentSpec {
    /// Program name: a built-in benchmark, or `inline:<hash>` for an inline
    /// source.
    pub program: String,
    /// The configuration to measure it under.
    pub config: Config,
    /// The Lisp source for an inline spec; `None` for built-in benchmarks.
    pub source: Option<String>,
    /// Per-semispace heap override for an inline spec.
    pub heap_semi_bytes: Option<u32>,
}

/// The content-derived name of an inline source: `inline:` plus the 64-bit
/// FNV-1a hash of the source text. Two specs with the same source share a
/// name (and therefore a cache entry per [`Config`]); the `inline:`
/// namespace cannot collide with benchmark names, which never contain `:`.
pub fn inline_name(source: &str) -> String {
    format!("inline:{:016x}", store::fnv1a64(source.as_bytes()))
}

impl ExperimentSpec {
    /// An inline experiment: measure caller-supplied Lisp source under
    /// `config`. The program name is derived from the source content via
    /// [`inline_name`].
    pub fn inline(
        source: impl Into<String>,
        config: Config,
        heap_semi_bytes: Option<u32>,
    ) -> ExperimentSpec {
        let source = source.into();
        ExperimentSpec {
            program: inline_name(&source),
            config,
            source: Some(source),
            heap_semi_bytes,
        }
    }

    /// Render back to the canonical `program:scheme:checking:hw` form, with
    /// a `:timing=` key appended when a non-ideal timing model is part of
    /// the point's identity. (Inline specs render with their `inline:<hash>` name; the result
    /// identifies the point but is not re-parseable as a string spec, since
    /// inline sources only travel as objects.)
    pub fn to_spec_string(&self) -> String {
        let mut spec = format!(
            "{}:{}:{}:{}",
            self.program,
            self.config.scheme.name(),
            match self.config.checking {
                CheckingMode::None => "none",
                CheckingMode::Full => "full",
            },
            hw_level_name(&self.config)
        );
        if !self.config.timing.is_ideal() {
            spec.push_str(&format!(":timing={}", self.config.timing));
        }
        spec
    }
}

/// Name the hardware level of `config` (the inverse of [`parse_hw`] for the
/// levels the spec grammar can express; unrecognised combinations print as
/// `custom`).
pub fn hw_level_name(config: &Config) -> &'static str {
    let bits = config.scheme.tag_bits();
    let hw = config.hw;
    if hw == mipsx::HwConfig::plain() {
        "plain"
    } else if hw == mipsx::HwConfig::with_tag_branch() {
        "tagbr"
    } else if hw == mipsx::HwConfig::with_generic_arith() {
        "genarith"
    } else if hw == mipsx::HwConfig::maximal(bits) {
        "maximal"
    } else if hw == mipsx::HwConfig::spur(bits) {
        "spur"
    } else {
        "custom"
    }
}

/// Parse a tag-scheme name (`high5`, `high6`, `low2`, `low3`), ignoring ASCII
/// case.
///
/// # Errors
///
/// A usage-ready message naming the accepted schemes.
pub fn parse_scheme(name: &str) -> Result<tagword::TagScheme, String> {
    tagword::ALL_SCHEMES
        .iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .copied()
        .ok_or_else(|| {
            let all: Vec<&str> = tagword::ALL_SCHEMES.iter().map(|s| s.name()).collect();
            format!("unknown scheme {name:?} (want one of: {})", all.join(", "))
        })
}

/// Parse a checking-mode name (`none` or `full`), ignoring ASCII case.
///
/// # Errors
///
/// A usage-ready message naming the accepted modes.
pub fn parse_checking(name: &str) -> Result<CheckingMode, String> {
    match name.to_ascii_lowercase().as_str() {
        "none" => Ok(CheckingMode::None),
        "full" => Ok(CheckingMode::Full),
        _ => Err(format!(
            "unknown checking mode {name:?} (want none or full)"
        )),
    }
}

/// Parse an execution-backend name (`classic`, `fast`, or `ref`), ignoring
/// ASCII case.
///
/// # Errors
///
/// A usage-ready message naming the accepted backends.
pub fn parse_backend(name: &str) -> Result<mipsx::Backend, String> {
    mipsx::Backend::from_name(name)
        .ok_or_else(|| format!("unknown backend {name:?} (want classic, fast, or ref)"))
}

/// Parse a timing-preset name (`ideal`, `classic5`, or `modern`), ignoring
/// ASCII case.
///
/// # Errors
///
/// A usage-ready message naming the accepted presets.
pub fn parse_timing(name: &str) -> Result<mipsx::TimingConfig, String> {
    mipsx::TimingConfig::preset(&name.to_ascii_lowercase()).ok_or_else(|| {
        format!(
            "unknown timing preset {name:?} (want {})",
            mipsx::TIMING_PRESETS.join(", ")
        )
    })
}

/// Parse a hardware level name for `scheme` (the tag-dependent levels need the
/// scheme's tag width), ignoring ASCII case.
///
/// # Errors
///
/// A usage-ready message naming the accepted levels.
pub fn parse_hw(name: &str, scheme: tagword::TagScheme) -> Result<mipsx::HwConfig, String> {
    match name.to_ascii_lowercase().as_str() {
        "plain" => Ok(mipsx::HwConfig::plain()),
        "tagbr" => Ok(mipsx::HwConfig::with_tag_branch()),
        "genarith" => Ok(mipsx::HwConfig::with_generic_arith()),
        "maximal" => Ok(mipsx::HwConfig::maximal(scheme.tag_bits())),
        "spur" => Ok(mipsx::HwConfig::spur(scheme.tag_bits())),
        _ => Err(format!(
            "unknown hardware level {name:?} (want one of: {})",
            HW_LEVELS.join(", ")
        )),
    }
}

/// The one place every spec error is phrased: the reason, the offending spec,
/// and the grammar reminder, in that order.
fn spec_error(text: &str, why: impl std::fmt::Display) -> String {
    format!(
        "{why} in spec {text:?} (want program[:scheme[:checking[:hw]]]\
         [:backend=classic|fast|ref][:timing=ideal|classic5|modern])"
    )
}

/// Parse one `program[:scheme[:checking[:hw]]][:backend=B][:timing=T]` spec,
/// validating the benchmark name against the registry. Field values are
/// case-insensitive and whitespace around fields is ignored; the benchmark
/// name itself is exact. The optional trailing `key=value` fields (accepted
/// in either order) select the simulator backend — which never affects the
/// point's identity — and the timing model, which does (see [`Config`]).
///
/// # Errors
///
/// A usage-ready message — always phrased by the same canonical path — for an
/// empty spec or field, an unknown benchmark, an unknown field value, a
/// duplicated trailing key, or too many `:`-separated fields.
pub fn parse_spec(text: &str) -> Result<ExperimentSpec, String> {
    const FIELD_NAMES: [&str; 4] = ["benchmark", "scheme", "checking", "hw"];
    let mut fields: Vec<&str> = text.split(':').map(str::trim).collect();
    let mut backend = mipsx::Backend::default();
    let mut timing = mipsx::TimingConfig::ideal();
    let mut saw_backend = false;
    let mut saw_timing = false;
    // Pop trailing `key=value` fields; the keys may appear in either order,
    // each at most once. (A key in first position is a program name, not a
    // key — it falls through to the unknown-benchmark error.)
    while fields.len() >= 2 {
        let last: &str = fields.last().copied().unwrap_or("");
        let (key, prefix_len, seen) = if last
            .get(..8)
            .is_some_and(|p| p.eq_ignore_ascii_case("backend="))
        {
            ("backend", 8, &mut saw_backend)
        } else if last
            .get(..7)
            .is_some_and(|p| p.eq_ignore_ascii_case("timing="))
        {
            ("timing", 7, &mut saw_timing)
        } else {
            break;
        };
        if *seen {
            return Err(spec_error(text, format!("duplicate {key} field")));
        }
        *seen = true;
        let name = last[prefix_len..].trim();
        if name.is_empty() {
            return Err(spec_error(text, format!("empty {key} field")));
        }
        match key {
            "backend" => backend = parse_backend(name).map_err(|e| spec_error(text, e))?,
            _ => timing = parse_timing(name).map_err(|e| spec_error(text, e))?,
        }
        fields.pop();
    }
    if fields.len() > FIELD_NAMES.len() {
        return Err(spec_error(text, format!("trailing field {:?}", fields[4])));
    }
    if fields[0].is_empty() && fields.len() == 1 {
        return Err(spec_error(text, "empty spec"));
    }
    if let Some(i) = fields.iter().position(|f| f.is_empty()) {
        return Err(spec_error(text, format!("empty {} field", FIELD_NAMES[i])));
    }
    let program = fields[0];
    if programs::by_name(program).is_none() {
        return Err(spec_error(
            text,
            format!(
                "unknown benchmark {program:?} (want one of: {})",
                programs::names().join(", ")
            ),
        ));
    }
    let scheme = parse_scheme(fields.get(1).copied().unwrap_or(DEFAULT_SCHEME))
        .map_err(|e| spec_error(text, e))?;
    let checking = parse_checking(fields.get(2).copied().unwrap_or(DEFAULT_CHECKING))
        .map_err(|e| spec_error(text, e))?;
    let hw = parse_hw(fields.get(3).copied().unwrap_or(DEFAULT_HW), scheme)
        .map_err(|e| spec_error(text, e))?;
    Ok(ExperimentSpec {
        program: program.to_string(),
        config: Config::new(scheme, checking)
            .with_hw(hw)
            .with_backend(backend)
            .with_timing(timing),
        source: None,
        heap_semi_bytes: None,
    })
}

/// One line describing the spec grammar, for usage messages.
pub fn spec_grammar() -> String {
    let schemes: Vec<&str> = tagword::ALL_SCHEMES.iter().map(|s| s.name()).collect();
    format!(
        "spec: program[:scheme[:checking[:hw]]][:backend=B][:timing=T]  \
         (schemes: {}; checking: none|full; hw: {}; backend: classic|fast|ref; \
         timing: {})\n\
         benchmarks: {}",
        schemes.join("|"),
        HW_LEVELS.join("|"),
        mipsx::TIMING_PRESETS.join("|"),
        programs::names().join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_full_form() {
        let s = parse_spec("frl").unwrap();
        assert_eq!(s.program, "frl");
        assert_eq!(s.config, Config::baseline(CheckingMode::Full));
        assert_eq!(s.to_spec_string(), "frl:high5:full:plain");

        let s = parse_spec("boyer:low2:none:tagbr").unwrap();
        assert_eq!(s.config.scheme, tagword::TagScheme::LowTag2);
        assert_eq!(s.config.checking, CheckingMode::None);
        assert_eq!(s.config.hw, mipsx::HwConfig::with_tag_branch());
        assert_eq!(s.to_spec_string(), "boyer:low2:none:tagbr");
    }

    #[test]
    fn every_hw_level_round_trips() {
        for hw in HW_LEVELS {
            let s = parse_spec(&format!("frl:high6:full:{hw}")).unwrap();
            assert_eq!(hw_level_name(&s.config), *hw);
            assert_eq!(parse_spec(&s.to_spec_string()).unwrap(), s);
        }
    }

    #[test]
    fn bad_specs_are_described() {
        assert!(parse_spec("nope")
            .unwrap_err()
            .contains("unknown benchmark"));
        assert!(parse_spec("frl:tag9")
            .unwrap_err()
            .contains("unknown scheme"));
        assert!(parse_spec("frl:high5:maybe")
            .unwrap_err()
            .contains("checking"));
        assert!(parse_spec("frl:high5:full:warp")
            .unwrap_err()
            .contains("hardware"));
        assert!(parse_spec("frl:high5:full:plain:x")
            .unwrap_err()
            .contains("trailing"));
    }

    /// Every malformed shape goes through the one canonical error path: the
    /// message names the reason, quotes the spec, and restates the grammar.
    #[test]
    fn every_error_is_canonically_phrased() {
        let cases: &[(&str, &str)] = &[
            ("", "empty spec"),
            ("   ", "empty spec"),
            (":", "empty benchmark field"),
            (":high5", "empty benchmark field"),
            ("frl:", "empty scheme field"),
            ("frl::none", "empty scheme field"),
            ("frl:high5:", "empty checking field"),
            ("frl:high5::plain", "empty checking field"),
            ("frl:high5:full:", "empty hw field"),
            ("nope", "unknown benchmark"),
            ("frl:tag9", "unknown scheme"),
            ("frl:high5:maybe", "unknown checking mode"),
            ("frl:high5:full:warp", "unknown hardware level"),
            ("frl:high5:full:plain:x", "trailing field \"x\""),
            ("frl:high5:full:plain::", "trailing field"),
        ];
        for (text, reason) in cases {
            let err = parse_spec(text).unwrap_err();
            assert!(err.contains(reason), "{text:?}: {err}");
            assert!(
                err.contains(&format!("in spec {text:?}")),
                "{text:?}: error does not quote the spec: {err}"
            );
            assert!(
                err.contains("want program[:scheme[:checking[:hw]]]"),
                "{text:?}: error does not restate the grammar: {err}"
            );
        }
    }

    /// The trailing `backend=` key pins the simulator backend at any truncation
    /// point of the positional grammar, without changing the point's identity.
    #[test]
    fn backend_key_is_parsed_and_identity_free() {
        use mipsx::Backend;
        let cases = [
            ("frl:backend=classic", Backend::Classic),
            ("frl:backend=fast", Backend::Fast),
            ("frl:low2:backend=ref", Backend::Ref),
            ("frl:high5:full:plain:backend=ref", Backend::Ref),
            ("frl : BACKEND=Fast", Backend::Fast),
        ];
        for (text, want) in cases {
            let s = parse_spec(text).unwrap();
            assert_eq!(s.config.backend, want, "{text}");
            // The backend never reaches the cache identity or the canonical
            // rendered form.
            let plain = parse_spec(&s.to_spec_string()).unwrap();
            assert_eq!(s, plain, "{text}: backend must not split identity");
            assert!(!s.to_spec_string().contains("backend"), "{text}");
        }
        assert_eq!(
            parse_spec("frl").unwrap().config.backend,
            Backend::default(),
            "omitted key means the default backend"
        );
    }

    /// Unknown or empty backend values go through the canonical error path.
    #[test]
    fn bad_backend_values_are_canonically_phrased() {
        for (text, reason) in [
            ("frl:backend=turbo", "unknown backend \"turbo\""),
            ("frl:backend=", "empty backend field"),
            ("frl:high5:full:plain:backend=x", "unknown backend"),
        ] {
            let err = parse_spec(text).unwrap_err();
            assert!(err.contains(reason), "{text:?}: {err}");
            assert!(
                err.contains(&format!("in spec {text:?}")),
                "{text:?}: error does not quote the spec: {err}"
            );
            assert!(
                err.contains("want program[:scheme[:checking[:hw]]]"),
                "{text:?}: error does not restate the grammar: {err}"
            );
        }
        // A backend key anywhere but last is not recognized as a key.
        assert!(parse_spec("frl:backend=fast:low2")
            .unwrap_err()
            .contains("unknown scheme"));
    }

    /// The trailing `timing=` key attaches a timing preset — which, unlike
    /// the backend, IS identity and round-trips through the rendered form.
    #[test]
    fn timing_key_is_parsed_and_is_identity() {
        use mipsx::TimingConfig;
        let cases = [
            ("frl:timing=ideal", TimingConfig::ideal()),
            ("frl:timing=classic5", TimingConfig::classic5()),
            ("frl:low2:timing=modern", TimingConfig::modern()),
            ("frl:high5:full:plain:timing=classic5", TimingConfig::classic5()),
            ("frl : TIMING=Modern", TimingConfig::modern()),
        ];
        for (text, want) in cases {
            let s = parse_spec(text).unwrap();
            assert_eq!(s.config.timing, want, "{text}");
            // Unlike backend, a non-ideal timing model renders and re-parses:
            // the spec string IS the identity.
            let rendered = s.to_spec_string();
            assert_eq!(parse_spec(&rendered).unwrap(), s, "{text} via {rendered}");
            assert_eq!(rendered.contains("timing="), !want.is_ideal(), "{text}");
        }
        assert!(
            parse_spec("frl").unwrap().config.timing.is_ideal(),
            "omitted key means the ideal model"
        );
        // Ideal and non-ideal are different points.
        assert_ne!(
            parse_spec("frl").unwrap(),
            parse_spec("frl:timing=modern").unwrap()
        );
    }

    /// Backend and timing keys compose in either order; bad or duplicate
    /// values go through the canonical error path.
    #[test]
    fn trailing_keys_compose_and_fail_canonically() {
        for text in [
            "frl:low2:none:tagbr:backend=ref:timing=modern",
            "frl:low2:none:tagbr:timing=modern:backend=ref",
        ] {
            let s = parse_spec(text).unwrap();
            assert_eq!(s.config.backend, mipsx::Backend::Ref, "{text}");
            assert_eq!(s.config.timing, mipsx::TimingConfig::modern(), "{text}");
            assert_eq!(s.to_spec_string(), "frl:low2:none:tagbr:timing=modern");
        }
        for (text, reason) in [
            ("frl:timing=warp", "unknown timing preset \"warp\""),
            ("frl:timing=", "empty timing field"),
            ("frl:timing=ideal:timing=modern", "duplicate timing field"),
            ("frl:backend=ref:backend=fast", "duplicate backend field"),
            ("frl:high5:full:plain:timing=x", "unknown timing preset"),
        ] {
            let err = parse_spec(text).unwrap_err();
            assert!(err.contains(reason), "{text:?}: {err}");
            assert!(
                err.contains(&format!("in spec {text:?}")),
                "{text:?}: error does not quote the spec: {err}"
            );
            assert!(
                err.contains("want program[:scheme[:checking[:hw]]]"),
                "{text:?}: error does not restate the grammar: {err}"
            );
        }
        // A timing key anywhere but trailing is not recognized as a key.
        assert!(parse_spec("frl:timing=modern:low2")
            .unwrap_err()
            .contains("unknown scheme"));
    }

    /// Scheme, checking, and hw names are case-insensitive and tolerate
    /// surrounding whitespace; the benchmark name stays exact.
    #[test]
    fn field_values_are_case_insensitive() {
        let canonical = parse_spec("frl:low2:none:tagbr").unwrap();
        assert_eq!(parse_spec("frl:LOW2:None:TagBr").unwrap(), canonical);
        assert_eq!(
            parse_spec(" frl : Low2 : NONE : TAGBR ").unwrap(),
            canonical
        );
        assert!(parse_spec("FRL").unwrap_err().contains("unknown benchmark"));
    }

    /// Inline specs: content-derived name, carried source, heap override, and
    /// a rendered spec string that identifies the point.
    #[test]
    fn inline_specs_are_content_addressed() {
        let cfg = Config::baseline(CheckingMode::Full);
        let a = ExperimentSpec::inline("(print 1)", cfg, None);
        let b = ExperimentSpec::inline("(print 1)", cfg, None);
        let c = ExperimentSpec::inline("(print 2)", cfg, Some(64 << 10));
        assert_eq!(a.program, b.program, "same source, same name");
        assert_ne!(a.program, c.program, "different source, different name");
        assert!(a.program.starts_with("inline:"), "{}", a.program);
        assert_eq!(a.source.as_deref(), Some("(print 1)"));
        assert_eq!(c.heap_semi_bytes, Some(64 << 10));
        assert_eq!(
            a.to_spec_string(),
            format!("{}:high5:full:plain", a.program)
        );
        assert_eq!(a.program, inline_name("(print 1)"));
    }
}
