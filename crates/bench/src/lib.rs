//! Shared helpers for the table/figure regeneration binaries and Criterion
//! benches. The binaries (`table1`, `table2`, `table3`, `figure1`, `figure2`,
//! `generic_arith`, `all_experiments`) print the paper's tables next to the
//! measured values; the Criterion benches time the underlying simulations.

#![deny(missing_docs)]

/// Exit with a readable message on measurement failure.
pub fn unwrap_study<T>(r: Result<T, tagstudy::StudyError>) -> T {
    match r {
        Ok(t) => t,
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    }
}
