//! Shared helpers for the table/figure regeneration binaries and Criterion
//! benches. The binaries (`table1`, `table2`, `table3`, `figure1`, `figure2`,
//! `generic_arith`, `all_experiments`) print the paper's tables next to the
//! measured values; the Criterion benches time the underlying simulations.
//!
//! Every binary drives one [`Session`]: [`session`] wires up a live progress
//! feed on stderr, and [`report_session`] prints the cache/timing summary at
//! exit. Tables go to stdout, telemetry to stderr, so redirecting stdout
//! still captures exactly the paper's tables.

#![deny(missing_docs)]

use tagstudy::{Progress, Session};

/// Exit with a readable message on measurement failure.
pub fn unwrap_study<T>(r: Result<T, tagstudy::StudyError>) -> T {
    match r {
        Ok(t) => t,
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    }
}

/// A session wired for the command-line binaries: default parallelism, live
/// per-measurement status on stderr (stdout stays table-only).
pub fn session() -> Session {
    Session::new().with_progress(|p| {
        if let Progress::Finished {
            program,
            config,
            timing,
        } = p
        {
            eprintln!(
                "[session] {program}/{config}: compile {:.1?}, simulate {:.1?}",
                timing.compile, timing.simulate
            );
        }
    })
}

/// Print the session's cache/timing summary to stderr. Call on exit from every
/// bench binary.
pub fn report_session(session: &Session) {
    eprint!("{}", session.summary());
}
