//! Shared helpers for the table/figure regeneration binaries and Criterion
//! benches. The binaries (`table1`, `table2`, `table3`, `figure1`, `figure2`,
//! `generic_arith`, `all_experiments`, `profile`) print the paper's tables
//! next to the measured values; the Criterion benches time the underlying
//! simulations.
//!
//! Every binary drives one [`Session`]: [`session`] wires up a live progress
//! feed on stderr, and [`report_session`] prints the cache/timing summary at
//! exit. Tables go to stdout, telemetry to stderr, so redirecting stdout
//! still captures exactly the paper's tables.
//!
//! [`profile_report`] renders the per-function cycle-attribution report the
//! `profile` binary prints — shared with the golden-snapshot test
//! (`tests/profiler.rs` at the workspace root) so the two cannot drift.

#![deny(missing_docs)]

pub mod spec;

use tagstudy::{Measurement, Progress, Session};

/// Guard for the no-argument binaries (`table1`, …, `all_experiments`): any
/// command-line argument is a mistake, so print usage and exit 2 instead of
/// silently ignoring it.
pub fn reject_args(binary: &str) {
    let extra: Vec<String> = std::env::args().skip(1).collect();
    if !extra.is_empty() {
        eprintln!(
            "usage: {binary} (takes no arguments; got {extra:?})\n\
             tables and figures go to stdout, session telemetry to stderr"
        );
        std::process::exit(2);
    }
}

/// Exit with a readable message on measurement failure.
pub fn unwrap_study<T>(r: Result<T, tagstudy::StudyError>) -> T {
    match r {
        Ok(t) => t,
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    }
}

/// A session wired for the command-line binaries: default parallelism, live
/// per-measurement status on stderr (stdout stays table-only).
pub fn session() -> Session {
    Session::new().with_progress(|p| {
        if let Progress::Finished {
            program,
            config,
            timing,
        } = p
        {
            eprintln!(
                "[session] {program}/{config}: compile {:.1?}, simulate {:.1?}",
                timing.compile, timing.simulate
            );
        }
    })
}

/// Print the session's cache/timing summary to stderr. Call on exit from every
/// bench binary.
pub fn report_session(session: &Session) {
    eprint!("{}", session.summary());
}

/// Render the per-function cycle-attribution report for one profiled run:
/// a header identifying the measured point, the whole-program reconciliation
/// line, and the profiler's hot-spot tables. Deterministic for a given
/// `(program, config)` — the golden-snapshot test pins this output.
///
/// # Panics
///
/// If the profiler's books do not reconcile exactly with the measurement's
/// [`mipsx::Stats`] — that would mean the attribution lost or invented
/// cycles, which is a bug, not a degraded report.
pub fn profile_report(measurement: &Measurement, profiler: &mipsx::Profiler) -> String {
    use std::fmt::Write as _;
    profiler
        .reconcile(&measurement.stats)
        .expect("profiler books reconcile with Stats");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} under {} — {} cycles, {} retired, {} tag cycles (reconciled exactly)",
        measurement.program,
        measurement.config,
        measurement.stats.cycles,
        measurement.stats.committed,
        measurement.stats.total_tag_cycles(),
    );
    let _ = writeln!(out);
    out.push_str(&profiler.report());
    out
}

/// Render the per-function *stall* attribution of a timing-model run: the
/// microarchitectural counterpart of [`profile_report`]. Functions are listed
/// in descending order of total stall cycles (ties broken by name); the
/// header reconciles the per-function books against the run's whole-program
/// stall breakdown.
///
/// # Panics
///
/// If the measurement carries no stall breakdown, or the per-function stalls
/// do not sum to it exactly — either would mean the attribution lost or
/// invented cycles.
pub fn stall_report(measurement: &Measurement, stalls: &[mipsx::FuncStalls]) -> String {
    use std::fmt::Write as _;
    let timing = measurement
        .stats
        .timing
        .as_ref()
        .expect("stall report needs a timed measurement");
    let mut per_cause = [0u64; 4];
    for f in stalls {
        for (total, s) in per_cause.iter_mut().zip(f.stalls) {
            *total += s;
        }
    }
    assert_eq!(
        per_cause,
        [
            timing.stall_icache,
            timing.stall_dcache,
            timing.stall_mispredict,
            timing.stall_load_use
        ],
        "per-function stalls reconcile with the whole-program breakdown"
    );
    let total = timing.total_stalls();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "stalls: {} under {} — {} architectural + {} stall = {} timed cycles (reconciled exactly)",
        measurement.program,
        measurement.config,
        measurement.stats.cycles,
        total,
        timing.timed_cycles(measurement.stats.cycles),
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "function", "icache", "dcache", "mispred", "load-use", "total", "share"
    );
    let mut rows: Vec<&mipsx::FuncStalls> = stalls.iter().filter(|f| f.total() > 0).collect();
    rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.name.cmp(&b.name)));
    for f in rows {
        let share = if total == 0 {
            0.0
        } else {
            100.0 * f.total() as f64 / total as f64
        };
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6.1}%",
            f.name, f.stalls[0], f.stalls[1], f.stalls[2], f.stalls[3], f.total(), share
        );
    }
    out
}
