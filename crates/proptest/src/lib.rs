//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this workspace
//! vendors the *subset* of proptest's API its property tests use: [`Strategy`]
//! with `prop_map`/`prop_recursive`/`boxed`, [`BoxedStrategy`], [`Just`],
//! [`any`], integer-range strategies, tuple strategies, `prop::sample::select`,
//! `prop::collection::vec`, the [`proptest!`] runner macro and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - **Deterministic**: every test function derives its RNG seed from its own
//!   module path, so a failure reproduces on every run (there is no persistence
//!   file; there is also no shrinking — the failing input is printed instead).
//! - **Rejection budget**: `prop_assume!` retries are capped at 16× the case
//!   count, after which the test panics, mirroring proptest's give-up behaviour.

#![deny(missing_docs)]

use std::ops::Range;
use std::rc::Rc;

// ===========================================================================
// RNG
// ===========================================================================

/// A small, fast, deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (stable across runs and platforms).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n.max(1)
    }

    /// True with probability `num / den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

// ===========================================================================
// Strategy
// ===========================================================================

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `expand` turns
    /// a strategy for subtrees into a strategy for branches. `depth` bounds the
    /// recursion; the size hints are accepted for API compatibility and
    /// ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            base: self.boxed(),
            expand: Rc::new(move |inner| expand(inner).boxed()),
            depth,
        }
    }

    /// Erase the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            expand: Rc::clone(&self.expand),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Stop at the depth bound, and stop early 1 time in 4 so generated
        // trees have a spread of sizes rather than all hugging the bound.
        if self.depth == 0 || rng.ratio(1, 4) {
            self.base.generate(rng)
        } else {
            let inner = Recursive {
                base: self.base.clone(),
                expand: Rc::clone(&self.expand),
                depth: self.depth - 1,
            }
            .boxed();
            (self.expand)(inner).generate(rng)
        }
    }
}

/// Uniform choice between strategies (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Whole-domain strategies for primitive types (the engine behind [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Submodules mirroring proptest's `prop::` namespace.
pub mod prop {
    /// Strategies that pick from explicit value sets.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from a vector of values.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// A strategy choosing uniformly among `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select over an empty set");
            Select(items)
        }
    }

    /// Strategies for collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy for vectors with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

// ===========================================================================
// Runner
// ===========================================================================

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` that runs the body over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            // Build each strategy once; generate per case.
            $(let $arg = $strat;)+
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(16).saturating_add(100),
                    "prop_assume! rejected too many cases"
                );
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                // A rejected assumption `continue`s here, skipping the count.
                {
                    let __case_guard = $crate::CaseGuard::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        accepted,
                    );
                    $body
                    let _ = &__case_guard;
                }
                accepted += 1;
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Reports which case failed if the test body panics.
pub struct CaseGuard {
    test: &'static str,
    case: u32,
}

impl CaseGuard {
    /// Arm a guard for one case of `test`.
    pub fn new(test: &'static str, case: u32) -> CaseGuard {
        CaseGuard { test, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stub: {} failed on accepted case #{} \
                 (deterministic seed; rerun reproduces it)",
                self.test, self.case
            );
        }
    }
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skip cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The usual `use proptest::prelude::*` surface.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Uniform choice among strategy expressions producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let s = -5i32..7;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((-5..7).contains(&v));
        }
    }

    #[test]
    fn select_and_vec_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = prop::collection::vec(prop::sample::select(vec![1u8, 2, 3]), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (1..=3).contains(x)));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        let s = (0i32..10)
            .prop_map(|_| T::Leaf)
            .prop_recursive(4, 16, 3, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(T::Node)
            });
        let mut rng = TestRng::deterministic("recursion");
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&s.generate(&mut rng)));
        }
        assert!(max >= 1, "recursion must actually branch");
        assert!(max <= 4, "depth bound respected");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_runs_and_assumes(v in any::<i32>(), w in 0u8..4) {
            prop_assume!(v != 0);
            prop_assert!(v != 0);
            prop_assert_eq!(u64::from(w) * 2 / 2, u64::from(w));
        }
    }
}
