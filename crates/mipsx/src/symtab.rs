//! Symbol tables: attributing program counters to named code regions.
//!
//! The code generator names every routine it emits ([`crate::Asm::here`] /
//! [`crate::Asm::name_label`]): compiled Lisp functions (`fn:append`), the
//! program entry (`main`), and the runtime routines (`gc_collect`,
//! `generic_add`, the error stops). [`crate::Asm::finish`] turns those names
//! into a [`SymbolTable`]: the named positions, sorted, become half-open PC
//! ranges — each routine extends to the start of the next one — plus the
//! statically resolvable call sites (`jal` instructions whose target is a
//! named entry).
//!
//! The table is carried on [`crate::Program`] so that listings can show where
//! calls go and so the [`profiler`](crate::profile) can attribute cycles from
//! the retirement stream to functions in O(1) per retired instruction.

use std::collections::HashMap;

use crate::insn::Insn;

/// One named code region: a compiled Lisp function or a runtime routine.
///
/// The range is half-open (`start..end`); slow-path blocks a function defers
/// to the space between its epilogue and the next routine still attribute to
/// the function that owns them, which is exactly what a profiler wants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSym {
    /// The symbol name (`main`, `fn:append`, `gc_collect`, …).
    pub name: String,
    /// First instruction index of the region.
    pub start: usize,
    /// One past the last instruction index of the region.
    pub end: usize,
}

/// A statically resolvable call site: a `jal` whose target is a named entry.
///
/// Indirect calls (`jalr`, used by `funcall`) are not listed here — their
/// targets only exist at run time, where the [`profiler`](crate::profile)
/// resolves them from the retirement stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Instruction index of the `jal`.
    pub pc: usize,
    /// Index (into [`SymbolTable::functions`]) of the calling region.
    pub caller: usize,
    /// Index of the called region.
    pub callee: usize,
}

/// PC-range → function attribution for one [`crate::Program`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    funcs: Vec<FuncSym>,
    call_sites: Vec<CallSite>,
}

impl SymbolTable {
    /// Build the table from an assembler's resolved name map and the final
    /// instruction stream. Every named position starts a region; regions run
    /// to the next named position (or the end of the program). When several
    /// names share a position the lexicographically first wins (deterministic,
    /// and in practice names are unique).
    pub fn build(symbols: &HashMap<String, usize>, insns: &[Insn]) -> SymbolTable {
        let mut named: Vec<(usize, &str)> = symbols
            .iter()
            .filter(|(_, pos)| **pos < insns.len())
            .map(|(name, pos)| (*pos, name.as_str()))
            .collect();
        named.sort_unstable();
        named.dedup_by_key(|(pos, _)| *pos);

        let mut funcs = Vec::with_capacity(named.len());
        for (i, (start, name)) in named.iter().enumerate() {
            let end = named.get(i + 1).map_or(insns.len(), |(next, _)| *next);
            funcs.push(FuncSym {
                name: (*name).to_string(),
                start: *start,
                end,
            });
        }

        let mut table = SymbolTable {
            funcs,
            call_sites: Vec::new(),
        };
        for (pc, insn) in insns.iter().enumerate() {
            if let Insn::Jal(target, _) = insn {
                let Some(callee) = table.entry_at(*target as usize) else {
                    continue;
                };
                let Some(caller) = table.index_of(pc) else {
                    continue;
                };
                table.call_sites.push(CallSite { pc, caller, callee });
            }
        }
        table
    }

    /// All regions, sorted by start position.
    pub fn functions(&self) -> &[FuncSym] {
        &self.funcs
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the table has no regions at all.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// All statically resolved call sites, in program order.
    pub fn call_sites(&self) -> &[CallSite] {
        &self.call_sites
    }

    /// Index of the region containing `pc`, if any (instructions before the
    /// first named position belong to no region).
    pub fn index_of(&self, pc: usize) -> Option<usize> {
        match self.funcs.binary_search_by(|f| f.start.cmp(&pc)) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => (pc < self.funcs[i - 1].end).then_some(i - 1),
        }
    }

    /// The region containing `pc`, if any.
    pub fn function_at(&self, pc: usize) -> Option<&FuncSym> {
        self.index_of(pc).map(|i| &self.funcs[i])
    }

    /// Index of the region *starting exactly at* `pc`, if any. This is what
    /// distinguishes a call landing on an entry from ordinary control flow.
    pub fn entry_at(&self, pc: usize) -> Option<usize> {
        self.funcs.binary_search_by(|f| f.start.cmp(&pc)).ok()
    }

    /// Region name by index.
    pub fn name(&self, index: usize) -> &str {
        &self.funcs[index].name
    }

    /// Human-readable position: `name+offset` inside a region, `pc N` outside.
    pub fn locate(&self, pc: usize) -> String {
        match self.function_at(pc) {
            Some(f) if pc == f.start => f.name.clone(),
            Some(f) => format!("{}+{}", f.name, pc - f.start),
            None => format!("pc {pc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn table() -> SymbolTable {
        // 0..3 = main, 3..5 = fn:a, 5..8 = fn:b; jal at 1 targets fn:a.
        let symbols: HashMap<String, usize> = [
            ("main".to_string(), 0),
            ("fn:a".to_string(), 3),
            ("fn:b".to_string(), 5),
        ]
        .into_iter()
        .collect();
        let insns = vec![
            Insn::Nop,
            Insn::Jal(3, Reg::Link),
            Insn::Nop,
            Insn::Nop,
            Insn::Jr(Reg::Link),
            Insn::Nop,
            Insn::Nop,
            Insn::Halt(Reg::Zero),
        ];
        SymbolTable::build(&symbols, &insns)
    }

    #[test]
    fn ranges_cover_the_program() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.functions()[0].name, "main");
        assert_eq!((t.functions()[0].start, t.functions()[0].end), (0, 3));
        assert_eq!((t.functions()[2].start, t.functions()[2].end), (5, 8));
        assert_eq!(t.index_of(0), Some(0));
        assert_eq!(t.index_of(2), Some(0));
        assert_eq!(t.index_of(3), Some(1));
        assert_eq!(t.index_of(7), Some(2));
        assert_eq!(t.index_of(8), None, "past the end");
    }

    #[test]
    fn entries_and_locations() {
        let t = table();
        assert_eq!(t.entry_at(3), Some(1));
        assert_eq!(t.entry_at(4), None);
        assert_eq!(t.locate(0), "main");
        assert_eq!(t.locate(4), "fn:a+1");
        assert_eq!(t.locate(99), "pc 99");
    }

    #[test]
    fn static_call_sites_resolve() {
        let t = table();
        assert_eq!(
            t.call_sites(),
            &[CallSite {
                pc: 1,
                caller: 0,
                callee: 1
            }]
        );
    }

    #[test]
    fn unnamed_prefix_belongs_to_no_region() {
        let symbols: HashMap<String, usize> = [("f".to_string(), 2)].into_iter().collect();
        let insns = vec![Insn::Nop, Insn::Nop, Insn::Nop, Insn::Halt(Reg::Zero)];
        let t = SymbolTable::build(&symbols, &insns);
        assert_eq!(t.index_of(0), None);
        assert_eq!(t.index_of(1), None);
        assert_eq!(t.index_of(2), Some(0));
        assert_eq!(t.locate(1), "pc 1");
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::default();
        assert!(t.is_empty());
        assert_eq!(t.index_of(0), None);
        assert_eq!(t.entry_at(0), None);
    }
}
