//! Execution statistics: cycles decomposed by instruction class and tag operation.

use std::collections::HashMap;
use std::ops::AddAssign;

use crate::annot::{Annot, CheckCat, Provenance, TagOpKind};
use crate::insn::Insn;

/// Instruction classes counted for Figure 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnClass {
    /// Generic ALU (add/sub/xor/or/slt/shift/immediate forms, excluding the
    /// classes broken out below).
    Alu,
    /// `and`/`andi` — the masking instructions Figure 2 tracks.
    And,
    /// Register moves.
    Move,
    /// Constant loads.
    Li,
    /// Loads.
    Load,
    /// Stores.
    Store,
    /// Conditional branches (including tag branches).
    Branch,
    /// Unconditional jumps, calls and returns.
    Jump,
    /// No-ops that executed (delay-slot padding, load-delay padding).
    Nop,
    /// Multiply/divide/remainder.
    MulDiv,
    /// Checked loads/stores (parallel-check hardware).
    CheckedMem,
    /// Hardware generic arithmetic.
    GenericArith,
    /// Output instructions.
    Write,
    /// Halt.
    Halt,
}

/// All instruction classes, in report order.
pub const ALL_CLASSES: [InsnClass; 14] = [
    InsnClass::Alu,
    InsnClass::And,
    InsnClass::Move,
    InsnClass::Li,
    InsnClass::Load,
    InsnClass::Store,
    InsnClass::Branch,
    InsnClass::Jump,
    InsnClass::Nop,
    InsnClass::MulDiv,
    InsnClass::CheckedMem,
    InsnClass::GenericArith,
    InsnClass::Write,
    InsnClass::Halt,
];

impl InsnClass {
    /// Classify an instruction.
    pub fn of(insn: Insn) -> InsnClass {
        match insn {
            Insn::And(..) | Insn::Andi(..) => InsnClass::And,
            Insn::Mov(..) => InsnClass::Move,
            Insn::Li(..) => InsnClass::Li,
            Insn::Add(..)
            | Insn::Sub(..)
            | Insn::Or(..)
            | Insn::Xor(..)
            | Insn::Slt(..)
            | Insn::Addi(..)
            | Insn::Ori(..)
            | Insn::Xori(..)
            | Insn::Sll(..)
            | Insn::Srl(..)
            | Insn::Sra(..) => InsnClass::Alu,
            Insn::Mul(..) | Insn::Div(..) | Insn::Rem(..) | Insn::Fop(..) => InsnClass::MulDiv,
            Insn::Ld(..) => InsnClass::Load,
            Insn::St { .. } => InsnClass::Store,
            Insn::Br { .. } | Insn::Bri { .. } | Insn::TagBr { .. } => InsnClass::Branch,
            Insn::J(_) | Insn::Jal(..) | Insn::Jr(_) | Insn::Jalr(..) => InsnClass::Jump,
            Insn::LdChk { .. } | Insn::StChk { .. } => InsnClass::CheckedMem,
            Insn::AddG { .. } | Insn::SubG { .. } => InsnClass::GenericArith,
            Insn::Nop => InsnClass::Nop,
            Insn::Write(..) => InsnClass::Write,
            Insn::Halt(_) => InsnClass::Halt,
        }
    }

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InsnClass::Alu => "alu",
            InsnClass::And => "and",
            InsnClass::Move => "move",
            InsnClass::Li => "li",
            InsnClass::Load => "load",
            InsnClass::Store => "store",
            InsnClass::Branch => "branch",
            InsnClass::Jump => "jump",
            InsnClass::Nop => "noop",
            InsnClass::MulDiv => "muldiv",
            InsnClass::CheckedMem => "chkmem",
            InsnClass::GenericArith => "addg",
            InsnClass::Write => "write",
            InsnClass::Halt => "halt",
        }
    }
}

/// Aggregated execution statistics from one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions that executed and committed (excludes squashed slots).
    pub committed: u64,
    /// Delay-slot instructions whose effects were cancelled (cycles still spent).
    pub squashed: u64,
    /// Cycles spent in trap penalties.
    pub trap_cycles: u64,
    /// Number of traps taken (checked-memory or generic-arith failures).
    pub traps: u64,
    /// Committed-instruction counts per class.
    pub class_counts: HashMap<InsnClass, u64>,
    /// Cycles per (tag operation, provenance).
    pub tag_cycles: HashMap<(TagOpKind, Provenance), u64>,
    /// Cycles per (checking category, tag op present) for checking-added work.
    pub check_cat_cycles: HashMap<CheckCat, u64>,
    /// Microarchitectural stall breakdown, present only when a
    /// [`TimingModel`](crate::timing::TimingModel) was attached to the run.
    /// Purely additive: `cycles` above stays the architectural count, and the
    /// timed total is `cycles + timing.total_stalls()`.
    pub timing: Option<crate::timing::TimingStats>,
}

impl Stats {
    /// Record `cycles` for an instruction of `class` with annotation `annot`
    /// that committed.
    ///
    /// Public so a conformance harness can rebuild a `Stats` from a retirement
    /// trace and compare it against the simulator's own accounting.
    pub fn record(&mut self, class: InsnClass, annot: Annot, cycles: u64) {
        self.cycles += cycles;
        self.committed += 1;
        *self.class_counts.entry(class).or_insert(0) += 1;
        if let Some(op) = annot.tag_op {
            *self.tag_cycles.entry((op, annot.prov)).or_insert(0) += cycles;
        }
        if annot.prov == Provenance::Checking {
            *self.check_cat_cycles.entry(annot.cat).or_insert(0) += cycles;
        }
    }

    /// Record a squashed delay-slot instruction: one wasted cycle attributed to the
    /// *branch's* annotation (the paper charges unused slots to the checking
    /// operation that owns the branch).
    pub fn record_squashed(&mut self, branch_annot: Annot) {
        self.cycles += 1;
        self.squashed += 1;
        if let Some(op) = branch_annot.tag_op {
            *self.tag_cycles.entry((op, branch_annot.prov)).or_insert(0) += 1;
        }
        if branch_annot.prov == Provenance::Checking {
            *self.check_cat_cycles.entry(branch_annot.cat).or_insert(0) += 1;
        }
    }

    /// Record a trap: the penalty cycles, attributed to `annot`.
    pub fn record_trap(&mut self, annot: Annot, penalty: u64) {
        self.cycles += penalty;
        self.trap_cycles += penalty;
        self.traps += 1;
        if let Some(op) = annot.tag_op {
            *self.tag_cycles.entry((op, annot.prov)).or_insert(0) += penalty;
        }
        if annot.prov == Provenance::Checking {
            *self.check_cat_cycles.entry(annot.cat).or_insert(0) += penalty;
        }
    }

    /// Cycles attributed to tag operation `op`, over both provenances.
    pub fn tag_op_cycles(&self, op: TagOpKind) -> u64 {
        self.tag_cycles
            .iter()
            .filter(|((o, _), _)| *o == op)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Cycles attributed to tag operation `op` restricted to `prov`.
    pub fn tag_op_cycles_by(&self, op: TagOpKind, prov: Provenance) -> u64 {
        self.tag_cycles.get(&(op, prov)).copied().unwrap_or(0)
    }

    /// All cycles attributed to any tag operation.
    pub fn total_tag_cycles(&self) -> u64 {
        self.tag_cycles.values().sum()
    }

    /// Cycles of checking-added work in category `cat`.
    pub fn checking_cycles(&self, cat: CheckCat) -> u64 {
        self.check_cat_cycles.get(&cat).copied().unwrap_or(0)
    }

    /// Committed-instruction count in class `class`.
    pub fn class_count(&self, class: InsnClass) -> u64 {
        self.class_counts.get(&class).copied().unwrap_or(0)
    }

    /// Fraction of total cycles in `op`, as a percentage.
    pub fn tag_op_percent(&self, op: TagOpKind) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.tag_op_cycles(op) as f64 / self.cycles as f64
        }
    }
}

impl AddAssign<&Stats> for Stats {
    fn add_assign(&mut self, rhs: &Stats) {
        self.cycles += rhs.cycles;
        self.committed += rhs.committed;
        self.squashed += rhs.squashed;
        self.trap_cycles += rhs.trap_cycles;
        self.traps += rhs.traps;
        for (k, v) in &rhs.class_counts {
            *self.class_counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &rhs.tag_cycles {
            *self.tag_cycles.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &rhs.check_cat_cycles {
            *self.check_cat_cycles.entry(*k).or_insert(0) += v;
        }
        if let Some(t) = &rhs.timing {
            *self.timing.get_or_insert_with(Default::default) += t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn classification() {
        assert_eq!(
            InsnClass::of(Insn::And(Reg::A0, Reg::A0, Reg::Mask)),
            InsnClass::And
        );
        assert_eq!(
            InsnClass::of(Insn::Andi(Reg::A0, Reg::A0, 3)),
            InsnClass::And
        );
        assert_eq!(InsnClass::of(Insn::Mov(Reg::A0, Reg::A1)), InsnClass::Move);
        assert_eq!(InsnClass::of(Insn::Nop), InsnClass::Nop);
        assert_eq!(
            InsnClass::of(Insn::St {
                src: Reg::A0,
                base: Reg::Sp,
                disp: 0
            }),
            InsnClass::Store
        );
    }

    #[test]
    fn record_accumulates() {
        let mut s = Stats::default();
        s.record(InsnClass::And, Annot::base(TagOpKind::Remove), 1);
        s.record(
            InsnClass::Alu,
            Annot::checking(TagOpKind::Check, CheckCat::List),
            1,
        );
        s.record_squashed(Annot::checking(TagOpKind::Check, CheckCat::List));
        assert_eq!(s.cycles, 3);
        assert_eq!(s.committed, 2);
        assert_eq!(s.squashed, 1);
        assert_eq!(s.tag_op_cycles(TagOpKind::Remove), 1);
        assert_eq!(s.tag_op_cycles(TagOpKind::Check), 2);
        assert_eq!(s.checking_cycles(CheckCat::List), 2);
        assert_eq!(
            s.tag_op_cycles_by(TagOpKind::Check, Provenance::Checking),
            2
        );
        assert_eq!(s.total_tag_cycles(), 3);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = Stats::default();
        a.record(InsnClass::Alu, Annot::NONE, 1);
        let mut b = Stats::default();
        b.record(InsnClass::Alu, Annot::NONE, 2);
        b.record_trap(Annot::base(TagOpKind::Generic), 20);
        a += &b;
        assert_eq!(a.cycles, 23);
        assert_eq!(a.traps, 1);
        assert_eq!(a.class_count(InsnClass::Alu), 2);
    }

    #[test]
    fn class_names_unique() {
        let mut names: Vec<_> = ALL_CLASSES.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_CLASSES.len());
    }
}
