//! The instruction set.

use std::fmt;

use crate::reg::Reg;

/// Condition codes for compare-and-branch instructions (signed comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
}

impl Cond {
    /// Evaluate the condition on two register values (signed).
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (a, b) = (a as i32, b as i32);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
        }
    }
}

/// A bit-field specification for tag-aware instructions: the tag value of a word is
/// `(word >> shift) & mask`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TagField {
    /// Right-shift amount to bring the tag to bit 0.
    pub shift: u8,
    /// Mask applied after shifting.
    pub mask: u32,
}

impl TagField {
    /// Extract the tag value of `word`.
    pub fn extract(self, word: u32) -> u32 {
        (word >> self.shift) & self.mask
    }
}

/// The hardware integer test used by generic-arithmetic instructions.
///
/// High-tag schemes identify an integer by sign-extending the data field and
/// comparing with the original; low-tag schemes test the low bits for zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntTest {
    /// Sign-extend the low `bits` and compare with the original word.
    SignExt(u8),
    /// The low `bits` must be zero.
    LowBitsZero(u8),
}

impl IntTest {
    /// Whether `word` passes the integer test.
    pub fn is_int(self, word: u32) -> bool {
        match self {
            IntTest::SignExt(bits) => {
                let shift = 32 - u32::from(bits);
                ((((word << shift) as i32) >> shift) as u32) == word
            }
            IntTest::LowBitsZero(bits) => word & ((1 << bits) - 1) == 0,
        }
    }
}

/// Floating-point operations for [`Insn::Fop`], over f32 bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `rd = (rs < rt) ? 1 : 0`.
    Lt,
    /// `rd = f32(rs as i32)` — integer-to-float conversion (rt ignored).
    FromInt,
}

impl FpOp {
    /// Apply the operation to two f32 bit patterns, producing a result bit
    /// pattern (or a 0/1 flag for comparisons).
    pub fn apply(self, a: u32, b: u32) -> u32 {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        match self {
            FpOp::Add => (x + y).to_bits(),
            FpOp::Sub => (x - y).to_bits(),
            FpOp::Mul => (x * y).to_bits(),
            FpOp::Div => (x / y).to_bits(),
            FpOp::Lt => u32::from(x < y),
            FpOp::FromInt => (a as i32 as f32).to_bits(),
        }
    }
}

/// Output channel selector for the [`Insn::Write`] debug/IO instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteKind {
    /// Append the register's low byte as a character.
    Char,
    /// Append the register value formatted as a signed decimal integer.
    Int,
}

/// One machine instruction.
///
/// Branch and jump `target`s are label ids while a program is being assembled and
/// instruction indices afterwards; [`crate::Asm::finish`] resolves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    // --- ALU, register-register ---
    /// `rd = rs + rt` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs - rt` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs & rt`.
    And(Reg, Reg, Reg),
    /// `rd = rs | rt`.
    Or(Reg, Reg, Reg),
    /// `rd = rs ^ rt`.
    Xor(Reg, Reg, Reg),
    /// `rd = (rs < rt) ? 1 : 0`, signed.
    Slt(Reg, Reg, Reg),

    // --- ALU, immediate ---
    /// `rd = rs + imm` (wrapping).
    Addi(Reg, Reg, i32),
    /// `rd = rs & imm` (imm zero-extended).
    Andi(Reg, Reg, u32),
    /// `rd = rs | imm`.
    Ori(Reg, Reg, u32),
    /// `rd = rs ^ imm`.
    Xori(Reg, Reg, u32),
    /// `rd = rs << sh`, logical.
    Sll(Reg, Reg, u8),
    /// `rd = rs >> sh`, logical.
    Srl(Reg, Reg, u8),
    /// `rd = rs >> sh`, arithmetic.
    Sra(Reg, Reg, u8),
    /// Load a 32-bit constant. One cycle (MIPS-X builds most constants in one
    /// instruction; we do not charge extra for wide ones — masks and tags are kept
    /// in registers by the code generator anyway).
    Li(Reg, i32),
    /// Register move (assembles to `or rd, rs, r0`; counted in the `move` class
    /// for Figure 2).
    Mov(Reg, Reg),

    // --- multi-cycle arithmetic ---
    /// Floating-point op on f32 bit patterns; multi-cycle. MIPS-X used an external
    /// FP coprocessor; we model FP as fixed-cost instructions because the paper's
    /// workloads are integer-dominated and only the generic-arithmetic dispatch
    /// experiments touch floats.
    Fop(FpOp, Reg, Reg, Reg),
    /// `rd = rs * rt` (wrapping); multi-cycle.
    Mul(Reg, Reg, Reg),
    /// `rd = rs / rt` (signed, trapping-free: x/0 = 0); multi-cycle.
    Div(Reg, Reg, Reg),
    /// `rd = rs % rt` (signed, x%0 = 0); multi-cycle.
    Rem(Reg, Reg, Reg),

    // --- memory ---
    /// `rd = mem[rs + disp]`. One load-delay slot.
    Ld(Reg, Reg, i32),
    /// `mem[base + disp] = src`.
    St {
        /// Value register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i32,
    },

    // --- control ---
    /// Compare-and-branch with two delay slots. `squash` cancels the slots when
    /// the branch does not go.
    Br {
        /// Condition code.
        cond: Cond,
        /// Left operand register.
        rs: Reg,
        /// Right operand register.
        rt: Reg,
        /// Label id (pre-resolution) / instruction index (post-resolution).
        target: u32,
        /// Squashing branch: delay slots execute only when taken.
        squash: bool,
    },
    /// Compare-register-with-small-immediate and branch, with two delay slots.
    /// Tag values and small constants fit the immediate; full-width words (e.g.
    /// the tagged NIL) must be compared register-register with [`Insn::Br`].
    Bri {
        /// Condition code.
        cond: Cond,
        /// Register operand.
        rs: Reg,
        /// Immediate operand (17-bit signed on MIPS-X; unchecked here).
        imm: i32,
        /// Branch target.
        target: u32,
        /// Squashing behaviour, as for [`Insn::Br`].
        squash: bool,
    },
    /// Tag-field compare-and-branch (paper §6.1 hardware): branches on
    /// `field(rs) == value` (or `!=` when `neq`), with the same delay-slot
    /// behaviour as [`Insn::Br`]. Requires [`crate::HwConfig::tag_branch`].
    TagBr {
        /// Register whose tag field is inspected.
        rs: Reg,
        /// Where the tag field lives.
        field: TagField,
        /// Expected tag value.
        value: u32,
        /// Branch when the field differs instead.
        neq: bool,
        /// Branch target.
        target: u32,
        /// Squashing behaviour, as for [`Insn::Br`].
        squash: bool,
    },
    /// Unconditional jump; one delay slot.
    J(u32),
    /// Jump and link: `link = return index`; one delay slot.
    Jal(u32, Reg),
    /// Jump to register (returns, tail calls); one delay slot.
    Jr(Reg),
    /// Jump to register and link; one delay slot.
    Jalr(Reg, Reg),

    // --- tag-checking hardware (paper §6.2) ---
    /// Checked load: `rd = mem[base + disp]`, testing `field(base) == expect`
    /// during address calculation; on mismatch, control transfers to `on_fail`
    /// after the trap penalty. Requires [`crate::HwConfig::parallel_check`].
    LdChk {
        /// Destination register.
        rd: Reg,
        /// Base address register (tagged).
        base: Reg,
        /// Byte displacement.
        disp: i32,
        /// Tag-field location.
        field: TagField,
        /// Expected tag value.
        expect: u32,
        /// Trap target on tag mismatch.
        on_fail: u32,
    },
    /// Checked store; see [`Insn::LdChk`].
    StChk {
        /// Value register.
        src: Reg,
        /// Base address register (tagged).
        base: Reg,
        /// Byte displacement.
        disp: i32,
        /// Tag-field location.
        field: TagField,
        /// Expected tag value.
        expect: u32,
        /// Trap target on tag mismatch.
        on_fail: u32,
    },
    /// Generic add (paper §6.2.2, SPUR-style): `rd = rs + rt` in one cycle if both
    /// operands pass the integer test and the result neither overflows nor fails
    /// the test; otherwise transfers to `on_fail` after the trap penalty without
    /// writing `rd`. Requires [`crate::HwConfig::generic_arith`].
    AddG {
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
        /// The hardware integer test (scheme-dependent).
        int_test: IntTest,
        /// Trap target for the non-integer / overflow path.
        on_fail: u32,
    },
    /// Generic subtract; see [`Insn::AddG`].
    SubG {
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
        /// The hardware integer test (scheme-dependent).
        int_test: IntTest,
        /// Trap target for the non-integer / overflow path.
        on_fail: u32,
    },

    // --- miscellany ---
    /// No operation (delay-slot filler).
    Nop,
    /// Append to the simulated output stream (validation/debugging aid).
    Write(Reg, WriteKind),
    /// Stop the simulation; the register value is the exit code.
    Halt(Reg),
}

impl Insn {
    /// Whether this instruction transfers control (and therefore owns delay slots).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Insn::Br { .. }
                | Insn::Bri { .. }
                | Insn::TagBr { .. }
                | Insn::J(_)
                | Insn::Jal(..)
                | Insn::Jr(_)
                | Insn::Jalr(..)
        )
    }

    /// Number of delay slots following this instruction (0 for non-control).
    pub fn delay_slots(self) -> usize {
        match self {
            Insn::Br { .. } | Insn::Bri { .. } | Insn::TagBr { .. } => 2,
            Insn::J(_) | Insn::Jal(..) | Insn::Jr(_) | Insn::Jalr(..) => 1,
            _ => 0,
        }
    }

    /// Whether this instruction can trap to an `on_fail` target (checked memory
    /// access or generic arithmetic). Trapping instructions redirect control and
    /// so are as illegal in delay slots as explicit control transfers.
    pub fn can_trap(self) -> bool {
        matches!(
            self,
            Insn::LdChk { .. } | Insn::StChk { .. } | Insn::AddG { .. } | Insn::SubG { .. }
        )
    }

    /// The register this instruction writes, if any.
    pub fn def(self) -> Option<Reg> {
        let r = match self {
            Insn::Add(rd, ..)
            | Insn::Sub(rd, ..)
            | Insn::And(rd, ..)
            | Insn::Or(rd, ..)
            | Insn::Xor(rd, ..)
            | Insn::Slt(rd, ..)
            | Insn::Addi(rd, ..)
            | Insn::Andi(rd, ..)
            | Insn::Ori(rd, ..)
            | Insn::Xori(rd, ..)
            | Insn::Sll(rd, ..)
            | Insn::Srl(rd, ..)
            | Insn::Sra(rd, ..)
            | Insn::Li(rd, _)
            | Insn::Mov(rd, _)
            | Insn::Fop(_, rd, ..)
            | Insn::Mul(rd, ..)
            | Insn::Div(rd, ..)
            | Insn::Rem(rd, ..)
            | Insn::Ld(rd, ..)
            | Insn::LdChk { rd, .. }
            | Insn::AddG { rd, .. }
            | Insn::SubG { rd, .. } => rd,
            Insn::Jal(_, link) | Insn::Jalr(_, link) => link,
            _ => return None,
        };
        if r == Reg::Zero {
            None // writes to r0 are discarded
        } else {
            Some(r)
        }
    }

    /// The registers this instruction reads (up to two), `Reg::Zero` excluded.
    pub fn uses(self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        let mut push = |r: Reg| {
            if r != Reg::Zero && !v.contains(&r) {
                v.push(r);
            }
        };
        match self {
            Insn::Add(_, a, b)
            | Insn::Sub(_, a, b)
            | Insn::And(_, a, b)
            | Insn::Or(_, a, b)
            | Insn::Xor(_, a, b)
            | Insn::Slt(_, a, b)
            | Insn::Fop(_, _, a, b)
            | Insn::Mul(_, a, b)
            | Insn::Div(_, a, b)
            | Insn::Rem(_, a, b) => {
                push(a);
                push(b);
            }
            Insn::Addi(_, a, _)
            | Insn::Andi(_, a, _)
            | Insn::Ori(_, a, _)
            | Insn::Xori(_, a, _)
            | Insn::Sll(_, a, _)
            | Insn::Srl(_, a, _)
            | Insn::Sra(_, a, _)
            | Insn::Mov(_, a)
            | Insn::Ld(_, a, _) => push(a),
            Insn::St { src, base, .. } => {
                push(src);
                push(base);
            }
            Insn::Br { rs, rt, .. } => {
                push(rs);
                push(rt);
            }
            Insn::Bri { rs, .. } | Insn::TagBr { rs, .. } => push(rs),
            Insn::Jr(r) | Insn::Jalr(r, _) => push(r),
            Insn::LdChk { base, .. } => push(base),
            Insn::StChk { src, base, .. } => {
                push(src);
                push(base);
            }
            Insn::AddG { rs, rt, .. } | Insn::SubG { rs, rt, .. } => {
                push(rs);
                push(rt);
            }
            Insn::Write(r, _) | Insn::Halt(r) => push(r),
            Insn::Li(..) | Insn::J(_) | Insn::Jal(..) | Insn::Nop => {}
        }
        v
    }

    /// Rewrite the branch/jump/trap target through `f` (used by the assembler to
    /// resolve labels to instruction indices).
    pub(crate) fn map_target(self, f: &mut impl FnMut(u32) -> u32) -> Insn {
        match self {
            Insn::Br {
                cond,
                rs,
                rt,
                target,
                squash,
            } => Insn::Br {
                cond,
                rs,
                rt,
                target: f(target),
                squash,
            },
            Insn::Bri {
                cond,
                rs,
                imm,
                target,
                squash,
            } => Insn::Bri {
                cond,
                rs,
                imm,
                target: f(target),
                squash,
            },
            Insn::TagBr {
                rs,
                field,
                value,
                neq,
                target,
                squash,
            } => Insn::TagBr {
                rs,
                field,
                value,
                neq,
                target: f(target),
                squash,
            },
            Insn::J(t) => Insn::J(f(t)),
            Insn::Jal(t, l) => Insn::Jal(f(t), l),
            Insn::LdChk {
                rd,
                base,
                disp,
                field,
                expect,
                on_fail,
            } => Insn::LdChk {
                rd,
                base,
                disp,
                field,
                expect,
                on_fail: f(on_fail),
            },
            Insn::StChk {
                src,
                base,
                disp,
                field,
                expect,
                on_fail,
            } => Insn::StChk {
                src,
                base,
                disp,
                field,
                expect,
                on_fail: f(on_fail),
            },
            Insn::AddG {
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            } => Insn::AddG {
                rd,
                rs,
                rt,
                int_test,
                on_fail: f(on_fail),
            },
            Insn::SubG {
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            } => Insn::SubG {
                rd,
                rs,
                rt,
                int_test,
                on_fail: f(on_fail),
            },
            other => other,
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Insn::Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            Insn::And(d, a, b) => write!(f, "and {d}, {a}, {b}"),
            Insn::Or(d, a, b) => write!(f, "or {d}, {a}, {b}"),
            Insn::Xor(d, a, b) => write!(f, "xor {d}, {a}, {b}"),
            Insn::Slt(d, a, b) => write!(f, "slt {d}, {a}, {b}"),
            Insn::Addi(d, a, i) => write!(f, "addi {d}, {a}, {i}"),
            Insn::Andi(d, a, i) => write!(f, "andi {d}, {a}, {i:#x}"),
            Insn::Ori(d, a, i) => write!(f, "ori {d}, {a}, {i:#x}"),
            Insn::Xori(d, a, i) => write!(f, "xori {d}, {a}, {i:#x}"),
            Insn::Sll(d, a, s) => write!(f, "sll {d}, {a}, {s}"),
            Insn::Srl(d, a, s) => write!(f, "srl {d}, {a}, {s}"),
            Insn::Sra(d, a, s) => write!(f, "sra {d}, {a}, {s}"),
            Insn::Li(d, i) => write!(f, "li {d}, {i}"),
            Insn::Mov(d, a) => write!(f, "mov {d}, {a}"),
            Insn::Fop(op, d, a, b) => write!(f, "f{op:?} {d}, {a}, {b}"),
            Insn::Mul(d, a, b) => write!(f, "mul {d}, {a}, {b}"),
            Insn::Div(d, a, b) => write!(f, "div {d}, {a}, {b}"),
            Insn::Rem(d, a, b) => write!(f, "rem {d}, {a}, {b}"),
            Insn::Ld(d, a, i) => write!(f, "ld {d}, {i}({a})"),
            Insn::St { src, base, disp } => write!(f, "st {src}, {disp}({base})"),
            Insn::Br {
                cond,
                rs,
                rt,
                target,
                squash,
            } => {
                write!(
                    f,
                    "b{:?}{} {rs}, {rt}, L{target}",
                    cond,
                    if squash { ".sq" } else { "" }
                )
            }
            Insn::Bri {
                cond,
                rs,
                imm,
                target,
                squash,
            } => {
                write!(
                    f,
                    "b{:?}i{} {rs}, {imm}, L{target}",
                    cond,
                    if squash { ".sq" } else { "" }
                )
            }
            Insn::TagBr {
                rs,
                value,
                neq,
                target,
                squash,
                ..
            } => write!(
                f,
                "tagb{}{} {rs}, {value}, L{target}",
                if neq { "ne" } else { "eq" },
                if squash { ".sq" } else { "" }
            ),
            Insn::J(t) => write!(f, "j L{t}"),
            Insn::Jal(t, l) => write!(f, "jal L{t}, {l}"),
            Insn::Jr(r) => write!(f, "jr {r}"),
            Insn::Jalr(r, l) => write!(f, "jalr {r}, {l}"),
            Insn::LdChk {
                rd,
                base,
                disp,
                expect,
                on_fail,
                ..
            } => {
                write!(f, "ldchk {rd}, {disp}({base}) tag={expect} fail=L{on_fail}")
            }
            Insn::StChk {
                src,
                base,
                disp,
                expect,
                on_fail,
                ..
            } => {
                write!(
                    f,
                    "stchk {src}, {disp}({base}) tag={expect} fail=L{on_fail}"
                )
            }
            Insn::AddG {
                rd,
                rs,
                rt,
                on_fail,
                ..
            } => {
                write!(f, "addg {rd}, {rs}, {rt} fail=L{on_fail}")
            }
            Insn::SubG {
                rd,
                rs,
                rt,
                on_fail,
                ..
            } => {
                write!(f, "subg {rd}, {rs}, {rt} fail=L{on_fail}")
            }
            Insn::Nop => write!(f, "nop"),
            Insn::Write(r, WriteKind::Char) => write!(f, "putc {r}"),
            Insn::Write(r, WriteKind::Int) => write!(f, "puti {r}"),
            Insn::Halt(r) => write!(f, "halt {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_and_negate() {
        assert!(Cond::Lt.eval((-1i32) as u32, 0));
        assert!(!Cond::Lt.eval(0, (-1i32) as u32));
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt] {
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 3)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn tag_field_extract() {
        let hi5 = TagField {
            shift: 27,
            mask: 0x1F,
        };
        assert_eq!(hi5.extract(0x0800_0001), 1);
        let lo2 = TagField {
            shift: 0,
            mask: 0b11,
        };
        assert_eq!(lo2.extract(0x1003), 3);
    }

    #[test]
    fn int_tests() {
        assert!(IntTest::SignExt(27).is_int(5));
        assert!(IntTest::SignExt(27).is_int((-5i32) as u32));
        assert!(!IntTest::SignExt(27).is_int(0x0800_0000));
        assert!(IntTest::LowBitsZero(2).is_int(8));
        assert!(!IntTest::LowBitsZero(2).is_int(9));
    }

    #[test]
    fn def_use_basics() {
        let i = Insn::Add(Reg::A0, Reg::A1, Reg::A2);
        assert_eq!(i.def(), Some(Reg::A0));
        assert_eq!(i.uses(), vec![Reg::A1, Reg::A2]);
        let st = Insn::St {
            src: Reg::T0,
            base: Reg::Sp,
            disp: 4,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![Reg::T0, Reg::Sp]);
        // writes to r0 are discarded
        assert_eq!(Insn::Li(Reg::Zero, 3).def(), None);
        // duplicated sources reported once
        assert_eq!(Insn::Add(Reg::A0, Reg::T1, Reg::T1).uses(), vec![Reg::T1]);
    }

    #[test]
    fn delay_slots() {
        let br = Insn::Br {
            cond: Cond::Eq,
            rs: Reg::A0,
            rt: Reg::Zero,
            target: 0,
            squash: false,
        };
        assert_eq!(br.delay_slots(), 2);
        assert_eq!(Insn::J(0).delay_slots(), 1);
        assert_eq!(Insn::Nop.delay_slots(), 0);
        assert!(br.is_control());
        assert!(!Insn::Nop.is_control());
    }
}
