//! Optional microarchitectural timing model: pipeline hazards, caches, and
//! branch prediction layered *behind* the [`Executor`] trait.
//!
//! The paper's cost model equates cycles with retired instruction count — a
//! fair approximation of the 1987 MIPS-X, whose exposed delay slots and
//! single-cycle memory made the architectural count *be* the timing. On any
//! later machine that stops being true: tag checks load words (stressing the
//! data cache), checking branches stress the predictor, and inline checks
//! grow the code (stressing the instruction cache). This module measures
//! those effects without touching architectural results.
//!
//! # Design
//!
//! [`TimingModel`] is an [`Observer`]: it consumes the retirement stream
//! (retired instructions *and* squashed delay slots — each is one issue slot)
//! and charges **stall cycles** on top of the architectural cycle count,
//! split by cause:
//!
//! - **icache** — every issue slot fetches `pc`; an L1-I miss stalls for the
//!   L2 (or memory) latency.
//! - **dcache** — every load/store probes L1-D; a miss stalls likewise.
//! - **mispredict** — conditional branches are predicted by the configured
//!   direction predictor, indirect jumps (`jr`/`jalr`) by a BTB; a wrong
//!   prediction charges the front-end redirect penalty. Direct `j`/`jal` are
//!   free (the target is available at decode).
//! - **load-use** — when the configured load latency exceeds the one
//!   architectural delay slot, a consumer that arrives too early waits for
//!   the remainder.
//!
//! Because the model only *reads* the stream, architectural `Stats`, halt
//! codes, output, and store content addresses are byte-identical whether or
//! not a timing model is attached — and because the stream itself is proven
//! identical across backends (the `conformance` crate), so is the timing.
//!
//! The invariant `timed_cycles = cycles + Σ stalls` holds *to the cycle*:
//! every stall is charged through one bookkeeping point that simultaneously
//! feeds the per-cause totals and the per-pc attribution used for
//! per-function reports, so the two views always reconcile exactly.
//!
//! [`Executor`]: crate::exec::Executor
//! [`Observer`]: crate::trace::Observer

use std::ops::ControlFlow;

use crate::annot::Annot;
use crate::insn::Insn;
use crate::symtab::SymbolTable;
use crate::trace::{Observer, Retirement};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Geometry and latency of one cache level.
///
/// Hits in L1 are free (fully pipelined); the cost of a miss is decided by
/// the level below. `size = 0` disables the level (every access misses
/// through it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Total capacity in bytes (must be `ways * line * 2^k`; 0 = no cache).
    pub size: u32,
    /// Associativity (1 = direct-mapped).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
}

impl CacheParams {
    /// A disabled level.
    pub const NONE: CacheParams = CacheParams {
        size: 0,
        ways: 1,
        line: 16,
    };
}

/// Conditional-branch direction predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Statically predict every conditional branch not-taken.
    NotTaken,
    /// Per-pc table of 2-bit saturating counters.
    Bimodal,
    /// Global-history-xor-pc indexed 2-bit counters (McFarling).
    Gshare,
}

/// Full timing-model configuration. `Copy`, hashable, and — unlike the
/// executor backend — **part of a measurement's identity**: two runs under
/// different timing configs are different experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingConfig {
    /// Master switch: `false` is the `ideal` model (no stalls, nothing
    /// recorded, measurements byte-identical to a run with no model at all).
    pub enabled: bool,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2 (`size = 0` for machines without one).
    pub l2: CacheParams,
    /// Stall cycles for an L1 miss that hits in L2.
    pub l2_latency: u32,
    /// Stall cycles for a miss that goes to memory.
    pub mem_latency: u32,
    /// Direction predictor for conditional branches.
    pub predictor: PredictorKind,
    /// log2 of the direction-predictor table size.
    pub predictor_bits: u8,
    /// log2 of the BTB size (indirect-jump target prediction).
    pub btb_bits: u8,
    /// Front-end redirect cost of a mispredicted branch or indirect jump.
    pub mispredict_penalty: u32,
    /// Total load-to-use latency in cycles. The ISA already exposes one load
    /// delay slot, so consumers stall only for `load_latency - 2` cycles
    /// beyond it (2 = classic pipeline, no stall ever).
    pub load_latency: u32,
}

/// The preset names the spec grammar and daemon accept, in display order.
pub const TIMING_PRESETS: [&str; 3] = ["ideal", "classic5", "modern"];

impl TimingConfig {
    /// No timing model at all: the paper's cost model (cycles = architectural
    /// count). This is the default everywhere.
    pub fn ideal() -> TimingConfig {
        TimingConfig {
            enabled: false,
            ..TimingConfig::classic5()
        }
    }

    /// A 1987 MIPS-X-like core: 5-stage pipeline, small on-chip caches, no
    /// L2, short memory, **no** dynamic prediction — the two exposed delay
    /// slots are the whole branch cost, so mispredict stalls are zero by
    /// construction (that cost is already in the architectural count).
    pub fn classic5() -> TimingConfig {
        TimingConfig {
            enabled: true,
            l1i: CacheParams {
                size: 2048,
                ways: 2,
                line: 16,
            },
            l1d: CacheParams {
                size: 2048,
                ways: 1,
                line: 16,
            },
            l2: CacheParams::NONE,
            l2_latency: 0,
            mem_latency: 8,
            predictor: PredictorKind::NotTaken,
            predictor_bits: 0,
            btb_bits: 0,
            mispredict_penalty: 0,
            load_latency: 2,
        }
    }

    /// A deep modern core: large multi-way L1s, a unified L2, long memory,
    /// gshare + BTB front end with a real redirect penalty, and a 4-cycle
    /// load pipeline (2 cycles beyond the architectural slot).
    pub fn modern() -> TimingConfig {
        TimingConfig {
            enabled: true,
            l1i: CacheParams {
                size: 32 * 1024,
                ways: 4,
                line: 64,
            },
            l1d: CacheParams {
                size: 32 * 1024,
                ways: 4,
                line: 64,
            },
            l2: CacheParams {
                size: 256 * 1024,
                ways: 8,
                line: 64,
            },
            l2_latency: 12,
            mem_latency: 200,
            predictor: PredictorKind::Gshare,
            predictor_bits: 12,
            btb_bits: 9,
            mispredict_penalty: 12,
            load_latency: 4,
        }
    }

    /// Look a preset up by name (`ideal` / `classic5` / `modern`).
    pub fn preset(name: &str) -> Option<TimingConfig> {
        match name {
            "ideal" => Some(TimingConfig::ideal()),
            "classic5" => Some(TimingConfig::classic5()),
            "modern" => Some(TimingConfig::modern()),
            _ => None,
        }
    }

    /// The preset this config equals, if any (`"custom"` otherwise).
    pub fn preset_name(&self) -> &'static str {
        for name in TIMING_PRESETS {
            if TimingConfig::preset(name).is_some_and(|p| p == *self) {
                return name;
            }
        }
        "custom"
    }

    /// `true` when no timing model should be attached.
    pub fn is_ideal(&self) -> bool {
        !self.enabled
    }
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig::ideal()
    }
}

impl std::fmt::Display for TimingConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.preset_name())
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// Stall causes, in report order. Indexes into per-pc attribution rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Instruction-fetch miss.
    Icache,
    /// Data-access miss.
    Dcache,
    /// Branch / indirect-jump misprediction redirect.
    Mispredict,
    /// Load result consumed before the load pipeline delivered it.
    LoadUse,
}

/// Every stall cause, in report order.
pub const ALL_STALL_CAUSES: [StallCause; 4] = [
    StallCause::Icache,
    StallCause::Dcache,
    StallCause::Mispredict,
    StallCause::LoadUse,
];

impl StallCause {
    /// Stable lowercase name (used in reports and the store codec).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Icache => "icache",
            StallCause::Dcache => "dcache",
            StallCause::Mispredict => "mispredict",
            StallCause::LoadUse => "load_use",
        }
    }
}

/// The timing model's verdict on one run: stall cycles by cause plus the
/// event counts behind them. Purely additive to the architectural
/// [`Stats`](crate::Stats) — `timed_cycles = stats.cycles + total_stalls()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Stall cycles from instruction-fetch misses.
    pub stall_icache: u64,
    /// Stall cycles from data-access misses.
    pub stall_dcache: u64,
    /// Stall cycles from branch mispredictions.
    pub stall_mispredict: u64,
    /// Stall cycles from load-use interlocks.
    pub stall_load_use: u64,
    /// Instruction-fetch probes (one per issue slot, squashed or not).
    pub icache_accesses: u64,
    /// L1-I misses.
    pub icache_misses: u64,
    /// Data probes (one per load/store).
    pub dcache_accesses: u64,
    /// L1-D misses.
    pub dcache_misses: u64,
    /// L2 probes (every L1 miss, both sides).
    pub l2_accesses: u64,
    /// L2 misses (went to memory).
    pub l2_misses: u64,
    /// Predicted control transfers (conditional branches + indirect jumps).
    pub branches: u64,
    /// Wrong predictions among them.
    pub mispredicts: u64,
}

impl TimingStats {
    /// Total stall cycles across all causes.
    pub fn total_stalls(&self) -> u64 {
        self.stall_icache + self.stall_dcache + self.stall_mispredict + self.stall_load_use
    }

    /// Timed cycle count: architectural cycles plus all stalls.
    pub fn timed_cycles(&self, arch_cycles: u64) -> u64 {
        arch_cycles + self.total_stalls()
    }

    /// The stall total for one cause.
    pub fn stall(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::Icache => self.stall_icache,
            StallCause::Dcache => self.stall_dcache,
            StallCause::Mispredict => self.stall_mispredict,
            StallCause::LoadUse => self.stall_load_use,
        }
    }
}

impl std::ops::AddAssign<&TimingStats> for TimingStats {
    fn add_assign(&mut self, rhs: &TimingStats) {
        self.stall_icache += rhs.stall_icache;
        self.stall_dcache += rhs.stall_dcache;
        self.stall_mispredict += rhs.stall_mispredict;
        self.stall_load_use += rhs.stall_load_use;
        self.icache_accesses += rhs.icache_accesses;
        self.icache_misses += rhs.icache_misses;
        self.dcache_accesses += rhs.dcache_accesses;
        self.dcache_misses += rhs.dcache_misses;
        self.l2_accesses += rhs.l2_accesses;
        self.l2_misses += rhs.l2_misses;
        self.branches += rhs.branches;
        self.mispredicts += rhs.mispredicts;
    }
}

/// Per-function stall attribution row (from [`TimingModel::by_function`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncStalls {
    /// Function name (or `<toplevel>` for pcs outside any symbol).
    pub name: String,
    /// Stall cycles by cause, in [`ALL_STALL_CAUSES`] order.
    pub stalls: [u64; 4],
}

impl FuncStalls {
    /// Total stall cycles attributed to this function.
    pub fn total(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Caches
// ---------------------------------------------------------------------------

/// One set-associative LRU cache level. Tags are full line addresses; each
/// set is kept in MRU-first order (associativity is small).
#[derive(Debug, Clone)]
struct Cache {
    line_shift: u32,
    set_mask: u64,
    ways: usize,
    /// `sets[i]` holds up to `ways` line tags, most-recently-used first.
    sets: Vec<Vec<u64>>,
}

impl Cache {
    /// Build from params; `None` when the level is disabled.
    fn new(p: CacheParams) -> Option<Cache> {
        if p.size == 0 {
            return None;
        }
        assert!(p.line.is_power_of_two(), "cache line must be a power of two");
        assert!(p.ways >= 1, "cache needs at least one way");
        let n_sets = (p.size / (p.line * p.ways)).max(1);
        assert!(
            n_sets.is_power_of_two(),
            "cache sets must be a power of two (size / (line * ways))"
        );
        Some(Cache {
            line_shift: p.line.trailing_zeros(),
            set_mask: u64::from(n_sets - 1),
            ways: p.ways as usize,
            sets: vec![Vec::new(); n_sets as usize],
        })
    }

    /// Probe (and fill on miss). Returns `true` on hit.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            return true;
        }
        if set.len() == self.ways {
            set.pop();
        }
        set.insert(0, line);
        false
    }
}

// ---------------------------------------------------------------------------
// Branch prediction
// ---------------------------------------------------------------------------

/// Direction predictor state (2-bit saturating counters, weakly-not-taken
/// initial state, 12-bit global history for gshare).
#[derive(Debug, Clone)]
struct Predictor {
    kind: PredictorKind,
    mask: u64,
    table: Vec<u8>,
    history: u64,
}

const GSHARE_HISTORY_BITS: u32 = 12;

impl Predictor {
    fn new(kind: PredictorKind, bits: u8) -> Predictor {
        let entries = match kind {
            PredictorKind::NotTaken => 0,
            _ => 1usize << bits,
        };
        Predictor {
            kind,
            mask: entries.saturating_sub(1) as u64,
            table: vec![1; entries], // weakly not-taken
            history: 0,
        }
    }

    fn index(&self, pc: usize) -> usize {
        let pc = pc as u64;
        let ix = match self.kind {
            PredictorKind::NotTaken => 0,
            PredictorKind::Bimodal => pc,
            PredictorKind::Gshare => pc ^ self.history,
        };
        (ix & self.mask) as usize
    }

    fn predict(&self, pc: usize) -> bool {
        match self.kind {
            PredictorKind::NotTaken => false,
            _ => self.table[self.index(pc)] >= 2,
        }
    }

    fn update(&mut self, pc: usize, taken: bool) {
        if self.kind != PredictorKind::NotTaken {
            let ix = self.index(pc);
            let c = &mut self.table[ix];
            *c = if taken { (*c + 1).min(3) } else { c.saturating_sub(1) };
        }
        if self.kind == PredictorKind::Gshare {
            self.history =
                ((self.history << 1) | u64::from(taken)) & ((1 << GSHARE_HISTORY_BITS) - 1);
        }
    }
}

/// Branch target buffer for indirect jumps: direct-mapped, tagged by full pc.
#[derive(Debug, Clone)]
struct Btb {
    mask: u64,
    entries: Vec<Option<(usize, usize)>>, // (pc tag, target)
}

impl Btb {
    fn new(bits: u8) -> Btb {
        let n = 1usize << bits;
        Btb {
            mask: (n - 1) as u64,
            entries: vec![None; n],
        }
    }

    fn predict(&self, pc: usize) -> Option<usize> {
        match self.entries[(pc as u64 & self.mask) as usize] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    fn update(&mut self, pc: usize, target: usize) {
        self.entries[(pc as u64 & self.mask) as usize] = Some((pc, target));
    }
}

// ---------------------------------------------------------------------------
// The model
// ---------------------------------------------------------------------------

/// A control transfer whose outcome is not yet known: the MIPS-X delay slots
/// retire first, and the first retirement *after* them reveals where control
/// actually went. Delay slots cannot contain control or trapping
/// instructions (the verifier enforces it), so at most one transfer is ever
/// pending.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Conditional branch: resolved taken iff the post-slot pc equals the
    /// encoded target.
    Cond {
        pc: usize,
        target: usize,
        fallthrough: usize,
        predicted_taken: bool,
    },
    /// Indirect jump: resolved against the BTB's predicted target.
    Indirect { pc: usize, predicted: Option<usize> },
}

/// The timing model proper: an [`Observer`] that watches one run and
/// accumulates [`TimingStats`] plus per-pc stall attribution.
///
/// Deterministic by construction — its only input is the retirement stream,
/// and every structure (LRU stacks, counters, history, BTB) updates
/// deterministically — so identical streams (any backend, any host) produce
/// identical stats.
#[derive(Debug, Clone)]
pub struct TimingModel {
    config: TimingConfig,
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    l2: Option<Cache>,
    predictor: Predictor,
    btb: Btb,
    /// The unresolved control transfer plus how many delay slots remain.
    pending: Option<(Pending, u8)>,
    /// Cycle (in *timed* time) at which each register's pending load value
    /// becomes available; 0 = no pending load.
    load_ready: [u64; 32],
    /// Upper bound over `load_ready`: lets the common no-load-in-flight case
    /// skip the operand scan (which allocates) entirely.
    max_load_ready: u64,
    stats: TimingStats,
    /// Per-pc stall cycles by cause (grown on demand).
    per_pc: Vec<[u64; 4]>,
}

/// Address-space bit separating instruction lines from data lines in the
/// unified L2 (the simulator's instruction indexes and data byte addresses
/// otherwise overlap).
const ISPACE: u64 = 1 << 40;

impl TimingModel {
    /// Build a model for `config`. Callers should skip construction entirely
    /// when [`TimingConfig::is_ideal`] — an ideal model would observe the run
    /// (costing time) and report all-zero stats.
    pub fn new(config: TimingConfig) -> TimingModel {
        TimingModel {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            predictor: Predictor::new(config.predictor, config.predictor_bits),
            btb: Btb::new(config.btb_bits),
            pending: None,
            load_ready: [0; 32],
            max_load_ready: 0,
            stats: TimingStats::default(),
            per_pc: Vec::new(),
        }
    }

    /// The config the model was built with.
    pub fn config(&self) -> TimingConfig {
        self.config
    }

    /// The accumulated stats (also available any time mid-run).
    pub fn finish(&self) -> TimingStats {
        self.stats
    }

    /// Per-pc stall attribution rows ([`ALL_STALL_CAUSES`] order). Indexed by
    /// instruction pc; pcs never stalled may be absent (short vector).
    pub fn per_pc_stalls(&self) -> &[[u64; 4]] {
        &self.per_pc
    }

    /// Fold per-pc attribution into per-function rows using `symtab`,
    /// sorted by total stall cycles descending. The sum over rows equals the
    /// per-cause totals in [`TimingStats`] exactly.
    pub fn by_function(&self, symtab: &SymbolTable) -> Vec<FuncStalls> {
        let mut rows: Vec<[u64; 4]> = vec![[0; 4]; symtab.len() + 1];
        for (pc, stalls) in self.per_pc.iter().enumerate() {
            let row = symtab.index_of(pc).map_or(symtab.len(), |i| i);
            for c in 0..4 {
                rows[row][c] += stalls[c];
            }
        }
        let mut out: Vec<FuncStalls> = rows
            .into_iter()
            .enumerate()
            .filter(|(_, stalls)| stalls.iter().any(|&s| s > 0))
            .map(|(i, stalls)| FuncStalls {
                name: if i == symtab.len() {
                    "<toplevel>".to_string()
                } else {
                    symtab.name(i).to_string()
                },
                stalls,
            })
            .collect();
        out.sort_by(|a, b| b.total().cmp(&a.total()).then(a.name.cmp(&b.name)));
        out
    }

    /// The single stall bookkeeping point: totals and attribution move
    /// together, so they cannot drift apart.
    fn charge(&mut self, pc: usize, cause: StallCause, cycles: u64) {
        if cycles == 0 {
            return;
        }
        match cause {
            StallCause::Icache => self.stats.stall_icache += cycles,
            StallCause::Dcache => self.stats.stall_dcache += cycles,
            StallCause::Mispredict => self.stats.stall_mispredict += cycles,
            StallCause::LoadUse => self.stats.stall_load_use += cycles,
        }
        if pc >= self.per_pc.len() {
            self.per_pc.resize(pc + 1, [0; 4]);
        }
        let slot = match cause {
            StallCause::Icache => 0,
            StallCause::Dcache => 1,
            StallCause::Mispredict => 2,
            StallCause::LoadUse => 3,
        };
        self.per_pc[pc][slot] += cycles;
    }

    /// Miss cost below L1: probe L2 (if present), then memory.
    fn miss_cost(&mut self, addr: u64) -> u64 {
        match &mut self.l2 {
            Some(l2) => {
                self.stats.l2_accesses += 1;
                if l2.access(addr) {
                    u64::from(self.config.l2_latency)
                } else {
                    self.stats.l2_misses += 1;
                    u64::from(self.config.mem_latency)
                }
            }
            None => u64::from(self.config.mem_latency),
        }
    }

    /// Instruction fetch for the issue slot at `pc` (retired or squashed).
    fn fetch(&mut self, pc: usize) {
        self.stats.icache_accesses += 1;
        let addr = (pc as u64) << 2;
        let hit = match &mut self.l1i {
            Some(c) => c.access(addr),
            None => false,
        };
        if !hit {
            self.stats.icache_misses += 1;
            let cost = self.miss_cost(addr | ISPACE);
            self.charge(pc, StallCause::Icache, cost);
        }
    }

    /// A slot event (retire or squash) while a transfer is pending: consume
    /// a delay slot, or resolve against the post-slot pc.
    fn step_pending(&mut self, retired_pc: Option<usize>) {
        let Some((pending, slots_left)) = self.pending else {
            return;
        };
        if slots_left > 0 {
            self.pending = Some((pending, slots_left - 1));
            return;
        }
        // Post-slot event. Squashes cannot appear here (only delay slots are
        // squashed), so `retired_pc` is present; be lenient if not.
        let Some(actual) = retired_pc else { return };
        self.pending = None;
        self.stats.branches += 1;
        let (bpc, correct) = match pending {
            Pending::Cond {
                pc,
                target,
                fallthrough,
                predicted_taken,
            } => {
                // Taken iff control reached the target rather than falling
                // through. (A branch whose target *is* the fallthrough is
                // resolved taken; either way the front end is right.)
                let taken = actual == target || actual != fallthrough;
                self.predictor.update(pc, taken);
                (pc, taken == predicted_taken)
            }
            Pending::Indirect { pc, predicted } => {
                self.btb.update(pc, actual);
                (pc, predicted == Some(actual))
            }
        };
        if !correct {
            self.stats.mispredicts += 1;
            let penalty = u64::from(self.config.mispredict_penalty);
            self.charge(bpc, StallCause::Mispredict, penalty);
        }
    }

    /// Current position on the *timed* clock.
    fn now(&self, cycle: u64) -> u64 {
        cycle + self.stats.total_stalls()
    }
}

impl Observer for TimingModel {
    fn retire(&mut self, ev: &Retirement, _annot: Annot, cycle: u64) -> ControlFlow<()> {
        // 1. This retirement is the post-slot instruction of any pending
        //    transfer — resolve (and charge the branch) first.
        self.step_pending(Some(ev.pc));

        // 2. Fetch.
        self.fetch(ev.pc);

        // 3. Load-use interlock: stall until every consumed register's
        //    pending load has delivered. The operand scan only runs while a
        //    load could still be in flight.
        let now = self.now(cycle);
        if self.max_load_ready > now {
            let mut ready = 0u64;
            for r in ev.insn.uses() {
                ready = ready.max(self.load_ready[r as usize]);
            }
            if ready > now {
                self.charge(ev.pc, StallCause::LoadUse, ready - now);
            }
        }

        // 4. Data access.
        if let Some(mem) = ev.mem {
            self.stats.dcache_accesses += 1;
            let addr = u64::from(mem.addr);
            let hit = match &mut self.l1d {
                Some(c) => c.access(addr),
                None => false,
            };
            if !hit {
                self.stats.dcache_misses += 1;
                let cost = self.miss_cost(addr);
                self.charge(ev.pc, StallCause::Dcache, cost);
            }
        }

        // 5. A consumer may issue `load_latency` cycles after the load; the
        //    ISA's one delay slot plus the next issue covers 2 of them, so
        //    only configs with `load_latency > 2` ever interlock. (A register
        //    write clears any stale entry.)
        if let Some((rd, _)) = ev.write {
            let is_load = matches!(ev.insn, Insn::Ld(..) | Insn::LdChk { .. });
            self.load_ready[rd as usize] = if is_load && self.config.load_latency > 2 {
                // `now` is re-read: the dcache stall above already waited.
                let ready = self.now(cycle) + u64::from(self.config.load_latency);
                self.max_load_ready = self.max_load_ready.max(ready);
                ready
            } else {
                0
            };
        }

        // 6. New control transfer?
        match ev.insn {
            Insn::Br { target, .. } | Insn::Bri { target, .. } | Insn::TagBr { target, .. } => {
                let predicted_taken = self.predictor.predict(ev.pc);
                self.pending = Some((
                    Pending::Cond {
                        pc: ev.pc,
                        target: target as usize,
                        fallthrough: ev.pc + 3,
                        predicted_taken,
                    },
                    2,
                ));
            }
            Insn::Jr(_) | Insn::Jalr(..) => {
                let predicted = self.btb.predict(ev.pc);
                self.pending = Some((Pending::Indirect { pc: ev.pc, predicted }, 1));
            }
            // Direct jumps are free; traps redirect but their drain cost is
            // already architectural (`trap_penalty`).
            _ => {}
        }
        ControlFlow::Continue(())
    }

    fn squash(&mut self, pc: usize, _branch_annot: Annot, _cycle: u64) {
        // A squashed delay slot still occupies fetch.
        self.step_pending(None);
        self.fetch(pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::cpu::Cpu;
    use crate::exec::Executor;
    use crate::hw::HwConfig;
    use crate::insn::Cond;
    use crate::reg::Reg;

    fn run_timed(asm: Asm, config: TimingConfig) -> (crate::Stats, TimingStats, TimingModel) {
        let prog = asm.finish().unwrap();
        crate::verify::verify(&prog).unwrap();
        let mut model = TimingModel::new(config);
        let o = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run_observed(1_000_000, &mut model)
            .unwrap();
        (o.stats, model.finish(), model)
    }

    /// A loop body with a load feeding an add, plus a backward branch.
    fn loop_program(iters: i32) -> Asm {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::T0, 0x100);
        asm.li(Reg::T1, 7);
        asm.st(Reg::T1, Reg::T0, 0);
        asm.li(Reg::S0, 0);
        asm.li(Reg::S1, iters);
        let top = asm.new_label();
        asm.bind(top);
        asm.ld(Reg::T2, Reg::T0, 0);
        asm.nop(); // architectural load delay slot
        asm.emit(Insn::Add(Reg::S0, Reg::S0, Reg::T2));
        asm.emit(Insn::Addi(Reg::S1, Reg::S1, -1));
        asm.br(Cond::Ne, Reg::S1, Reg::Zero, top);
        asm.halt(Reg::S0);
        asm
    }

    #[test]
    fn reconciliation_is_exact() {
        let (stats, t, model) = run_timed(loop_program(50), TimingConfig::modern());
        assert_eq!(
            t.timed_cycles(stats.cycles),
            stats.cycles
                + t.stall_icache
                + t.stall_dcache
                + t.stall_mispredict
                + t.stall_load_use
        );
        // Per-pc attribution reconciles with the per-cause totals exactly.
        let mut sums = [0u64; 4];
        for row in model.per_pc_stalls() {
            for c in 0..4 {
                sums[c] += row[c];
            }
        }
        for (i, cause) in ALL_STALL_CAUSES.iter().enumerate() {
            assert_eq!(sums[i], t.stall(*cause), "{cause:?} attribution drifted");
        }
    }

    #[test]
    fn ideal_is_ideal_and_presets_resolve() {
        assert!(TimingConfig::ideal().is_ideal());
        assert!(!TimingConfig::classic5().is_ideal());
        assert_eq!(TimingConfig::default(), TimingConfig::ideal());
        for name in TIMING_PRESETS {
            let p = TimingConfig::preset(name).unwrap();
            assert_eq!(p.preset_name(), name);
        }
        assert!(TimingConfig::preset("nope").is_none());
    }

    #[test]
    fn caches_warm_up() {
        let (_, t, _) = run_timed(loop_program(100), TimingConfig::classic5());
        // First iteration misses, later iterations hit: far fewer misses
        // than accesses on both sides.
        assert!(t.icache_misses > 0);
        assert!(t.icache_misses * 10 < t.icache_accesses, "{t:?}");
        assert!(t.dcache_misses * 10 < t.dcache_accesses, "{t:?}");
        assert_eq!(t.l2_accesses, 0, "classic5 has no L2");
    }

    #[test]
    fn classic5_has_no_mispredict_or_load_use_stalls() {
        let (_, t, _) = run_timed(loop_program(100), TimingConfig::classic5());
        assert_eq!(t.stall_mispredict, 0);
        assert_eq!(t.stall_load_use, 0);
        assert!(t.total_stalls() > 0, "cold misses must show up");
    }

    #[test]
    fn modern_predicts_the_loop_branch() {
        let (_, t, _) = run_timed(loop_program(200), TimingConfig::modern());
        assert!(t.branches >= 200);
        // gshare learns the loop quickly: only a handful of mispredicts.
        assert!(t.mispredicts * 10 < t.branches, "{t:?}");
        // The un-covered load->add latency shows up as load-use stalls: the
        // consumer sits one slot after the load, latency 4 needs two more.
        assert!(t.stall_load_use > 0, "{t:?}");
    }

    #[test]
    fn not_taken_predictor_pays_for_taken_branches() {
        let mut config = TimingConfig::classic5();
        config.predictor = PredictorKind::NotTaken;
        config.mispredict_penalty = 3;
        let (_, t, _) = run_timed(loop_program(100), config);
        // The loop branch is taken ~99 times; every one is a mispredict.
        assert!(t.mispredicts >= 99, "{t:?}");
        assert_eq!(t.stall_mispredict, t.mispredicts * 3);
    }

    #[test]
    fn determinism_across_runs() {
        let a = run_timed(loop_program(100), TimingConfig::modern());
        let b = run_timed(loop_program(100), TimingConfig::modern());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn architectural_results_are_untouched() {
        let (with_model, _, _) = run_timed(loop_program(100), TimingConfig::modern());
        let prog = loop_program(100).finish().unwrap();
        let bare = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run(1_000_000)
            .unwrap();
        assert_eq!(with_model, bare.stats);
    }

    #[test]
    fn lru_evicts_correctly() {
        let mut c = Cache::new(CacheParams {
            size: 64,
            ways: 2,
            line: 16,
        })
        .unwrap();
        // Two sets of two ways; lines A, B, C map to set 0 (stride 32).
        assert!(!c.access(0)); // A miss
        assert!(!c.access(32)); // B miss
        assert!(c.access(0)); // A hit (now MRU)
        assert!(!c.access(64)); // C miss, evicts LRU = B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(32)); // B was evicted
    }
}
