//! The simulated data memory.

/// Word-organised data memory with byte addressing.
///
/// Addresses are byte addresses; accesses are word-aligned (the CPU masks the low
/// two bits before calling in, mirroring MIPS-X's word-aligned memory system).
#[derive(Debug, Clone)]
pub struct Mem {
    words: Vec<u32>,
}

impl Mem {
    /// A zeroed memory of `bytes` bytes (rounded up to a whole word).
    pub fn new(bytes: usize) -> Self {
        Mem {
            words: vec![0; bytes.div_ceil(4)],
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.words.len() * 4
    }

    /// Read the word at byte address `addr` (low two bits ignored).
    ///
    /// Returns `None` when the address is outside memory.
    pub fn load(&self, addr: u32) -> Option<u32> {
        self.words.get((addr >> 2) as usize).copied()
    }

    /// Write the word at byte address `addr` (low two bits ignored).
    ///
    /// Returns `false` when the address is outside memory.
    pub fn store(&mut self, addr: u32, value: u32) -> bool {
        match self.words.get_mut((addr >> 2) as usize) {
            Some(w) => {
                *w = value;
                true
            }
            None => false,
        }
    }

    /// Direct word-indexed view (for test assertions and heap dumps).
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_alignment() {
        let mut m = Mem::new(64);
        assert!(m.store(8, 0xdead_beef));
        assert_eq!(m.load(8), Some(0xdead_beef));
        // low bits ignored
        assert_eq!(m.load(9), Some(0xdead_beef));
        assert_eq!(m.load(11), Some(0xdead_beef));
    }

    #[test]
    fn out_of_range() {
        let mut m = Mem::new(8);
        assert_eq!(m.load(8), None);
        assert!(!m.store(100, 1));
    }

    #[test]
    fn size_rounds_up() {
        assert_eq!(Mem::new(5).size(), 8);
        assert_eq!(Mem::new(0).size(), 0);
    }
}
