//! Register file names and software conventions.

use std::fmt;

/// One of the 32 general-purpose registers.
///
/// `Zero` is wired to zero, as on MIPS-X. The remaining names encode the software
/// conventions the Lisp system uses; the simulator itself treats them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // the variant meanings are described in the table below
pub enum Reg {
    /// Hardwired zero.
    Zero = 0,
    /// Stack pointer (grows down).
    Sp = 1,
    /// Heap allocation pointer.
    Hp = 2,
    /// Heap limit.
    Hl = 3,
    /// The tagged NIL constant.
    Nil = 4,
    /// Tag-removal mask constant (scheme-dependent).
    Mask = 5,
    /// Return-address (link) register.
    Link = 6,
    /// The tagged T (true) constant.
    TrueR = 7,
    // Argument / result registers.
    A0 = 8,
    A1 = 9,
    A2 = 10,
    A3 = 11,
    A4 = 12,
    A5 = 13,
    // Caller-saved temporaries.
    T0 = 14,
    T1 = 15,
    T2 = 16,
    T3 = 17,
    T4 = 18,
    T5 = 19,
    T6 = 20,
    T7 = 21,
    T8 = 22,
    T9 = 23,
    // Callee-saved.
    S0 = 24,
    S1 = 25,
    S2 = 26,
    S3 = 27,
    /// Globals base pointer.
    Gp = 28,
    /// Runtime scratch (trap/support routines).
    X0 = 29,
    /// Runtime scratch (trap/support routines).
    X1 = 30,
    /// Preshifted list-tag constant (paper §3.1 ablation) / extra scratch.
    Pt = 31,
}

/// All registers in index order.
pub const ALL_REGS: [Reg; 32] = [
    Reg::Zero,
    Reg::Sp,
    Reg::Hp,
    Reg::Hl,
    Reg::Nil,
    Reg::Mask,
    Reg::Link,
    Reg::TrueR,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T7,
    Reg::T8,
    Reg::T9,
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::Gp,
    Reg::X0,
    Reg::X1,
    Reg::Pt,
];

impl Reg {
    /// The register-file index, `0..32`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Look a register up by index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn from_index(i: usize) -> Reg {
        ALL_REGS[i]
    }

    /// The six argument/result registers, in order.
    pub const ARGS: [Reg; 6] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];

    /// The ten caller-saved temporaries, in order.
    pub const TEMPS: [Reg; 10] = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::T7,
        Reg::T8,
        Reg::T9,
    ];
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, r) in ALL_REGS.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
    }

    #[test]
    fn display_uses_machine_name() {
        assert_eq!(Reg::Zero.to_string(), "r0");
        assert_eq!(Reg::Pt.to_string(), "r31");
    }
}
