//! The instruction-level simulator.

use std::fmt;

use crate::annot::Annot;
use crate::exec::Executor;
use crate::hw::{HwConfig, ParallelCheck};
use crate::insn::{Insn, WriteKind};
use crate::mem::Mem;
use crate::program::Program;
use crate::reg::Reg;
use crate::stats::{InsnClass, Stats};
use crate::trace::{MemOp, Observer, Retirement};

/// Simulation failures. These indicate bugs in generated code (or an exhausted
/// cycle budget), never ordinary program behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget ran out before `halt`.
    OutOfFuel {
        /// Cycles executed when the budget expired.
        cycles: u64,
    },
    /// A memory access fell outside the simulated memory.
    MemFault {
        /// Faulting effective byte address.
        addr: u32,
        /// Instruction index.
        pc: usize,
    },
    /// The program counter left the code.
    PcOutOfRange {
        /// The bad instruction index.
        pc: usize,
    },
    /// An instruction requiring absent hardware support was executed.
    MissingHardware {
        /// Instruction index.
        pc: usize,
        /// Which feature was missing.
        feature: &'static str,
    },
    /// A control-transfer instruction appeared in a delay slot.
    ControlInSlot {
        /// Slot instruction index.
        pc: usize,
    },
    /// The instruction after a load read the loaded register.
    LoadDelayViolation {
        /// Offending instruction index.
        pc: usize,
        /// The register read too early.
        reg: Reg,
    },
    /// The [`Observer`] asked the simulation to stop (never produced by
    /// [`Cpu::run`], whose observer cannot break).
    Stopped {
        /// Cycles executed when the observer broke.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfFuel { cycles } => write!(f, "cycle budget exhausted after {cycles}"),
            SimError::MemFault { addr, pc } => {
                write!(f, "memory fault at address {addr:#x} (pc {pc})")
            }
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} outside code"),
            SimError::MissingHardware { pc, feature } => {
                write!(f, "instruction at pc {pc} needs absent hardware: {feature}")
            }
            SimError::ControlInSlot { pc } => {
                write!(f, "control transfer in delay slot at pc {pc}")
            }
            SimError::LoadDelayViolation { pc, reg } => {
                write!(
                    f,
                    "instruction at pc {pc} reads {reg} during its load delay"
                )
            }
            SimError::Stopped { cycles } => {
                write!(f, "stopped by the observer after {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The result of a completed simulation.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Exit code passed to `halt`.
    pub halt_code: i32,
    /// Everything the program wrote with [`Insn::Write`].
    pub output: String,
    /// Cycle and attribution statistics.
    pub stats: Stats,
}

enum Flow {
    Next,
    Halt(i32),
    Trap { target: usize },
}

/// The simulator: a register file, data memory, and the fetch-execute loop.
#[derive(Debug)]
pub struct Cpu<'p> {
    prog: &'p Program,
    hw: HwConfig,
    regs: [u32; 32],
    mem: Mem,
    pc: usize,
    stats: Stats,
    output: String,
    pending_load: Option<Reg>,
}

impl<'p> Cpu<'p> {
    /// Build a CPU for `prog` with `hw` support and `mem_bytes` of data memory,
    /// applying the program's initial data image.
    ///
    /// # Panics
    ///
    /// If `prog.annots` is not parallel to `prog.insns` — the assembler
    /// guarantees this; hand-built programs must supply one [`Annot`] per
    /// instruction (a shorter array would silently misattribute cycles).
    pub fn new(prog: &'p Program, hw: HwConfig, mem_bytes: usize) -> Self {
        assert_eq!(
            prog.annots.len(),
            prog.insns.len(),
            "program annots must parallel insns (one Annot per instruction)"
        );
        let mut mem = Mem::new(mem_bytes);
        for &(addr, word) in &prog.data {
            assert!(
                mem.store(addr, word),
                "data image outside memory: {addr:#x}"
            );
        }
        Cpu {
            prog,
            hw,
            regs: [0; 32],
            mem,
            pc: prog.entry,
            stats: Stats::default(),
            output: String::new(),
            pending_load: None,
        }
    }

    /// Read a register (r0 reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::Zero {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Write a register (writes to r0 are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::Zero {
            self.regs[r.index()] = v;
        }
    }

    /// The data memory (for post-run inspection in tests).
    pub fn mem(&self) -> &Mem {
        &self.mem
    }

    /// The register file (for post-run comparison against a reference run).
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    fn fetch(&self, pc: usize) -> Result<(Insn, Annot), SimError> {
        match self.prog.insns.get(pc) {
            // annots is parallel to insns (asserted in `new`), so index directly
            // instead of silently substituting Annot::NONE on a mismatch.
            Some(i) => Ok((*i, self.prog.annots[pc])),
            None => Err(SimError::PcOutOfRange { pc }),
        }
    }

    fn check_load_delay(&self, pc: usize, insn: Insn) -> Result<(), SimError> {
        if let Some(r) = self.pending_load {
            if insn.uses().contains(&r) {
                return Err(SimError::LoadDelayViolation { pc, reg: r });
            }
        }
        Ok(())
    }

    fn ea(&self, base: Reg, disp: i32) -> u32 {
        (self.reg(base).wrapping_add(disp as u32)) & self.hw.address_mask()
    }

    /// Effective address for checked accesses: the hardware drops the tag-field
    /// bits of the (tagged) base pointer during address calculation (paper §6.2.1:
    /// "no tag removal would be required").
    fn ea_untagged(&self, word: u32, field: crate::insn::TagField, disp: i32) -> u32 {
        let untagged = word & !(field.mask << field.shift);
        untagged.wrapping_add(disp as u32) & self.hw.address_mask()
    }

    fn load(&self, addr: u32, pc: usize) -> Result<u32, SimError> {
        self.mem.load(addr).ok_or(SimError::MemFault { addr, pc })
    }

    fn store(&mut self, addr: u32, v: u32, pc: usize) -> Result<(), SimError> {
        if self.mem.store(addr, v) {
            Ok(())
        } else {
            Err(SimError::MemFault { addr, pc })
        }
    }

    /// Report a trapping checked instruction to the observer and redirect.
    fn emit_trap<O: Observer>(
        &mut self,
        obs: &mut O,
        pc: usize,
        insn: Insn,
        annot: Annot,
        target: usize,
    ) -> Result<Flow, SimError> {
        if O::ENABLED {
            let ev = Retirement {
                pc,
                insn,
                write: None,
                mem: None,
                trap: Some(target),
            };
            if obs.retire(&ev, annot, self.stats.cycles).is_break() {
                return Err(SimError::Stopped {
                    cycles: self.stats.cycles,
                });
            }
        }
        Ok(Flow::Trap { target })
    }

    /// Execute one non-control instruction, recording its cycles.
    fn exec_simple<O: Observer>(
        &mut self,
        pc: usize,
        insn: Insn,
        annot: Annot,
        obs: &mut O,
    ) -> Result<Flow, SimError> {
        debug_assert!(!insn.is_control());
        self.check_load_delay(pc, insn)?;
        let class = InsnClass::of(insn);
        let mut next_pending = None;
        let mut cycles = 1u64;
        let mut memop: Option<MemOp> = None;
        let flow = match insn {
            Insn::Add(d, a, b) => {
                let v = self.reg(a).wrapping_add(self.reg(b));
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Sub(d, a, b) => {
                let v = self.reg(a).wrapping_sub(self.reg(b));
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::And(d, a, b) => {
                let v = self.reg(a) & self.reg(b);
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Or(d, a, b) => {
                let v = self.reg(a) | self.reg(b);
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Xor(d, a, b) => {
                let v = self.reg(a) ^ self.reg(b);
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Slt(d, a, b) => {
                let v = ((self.reg(a) as i32) < (self.reg(b) as i32)) as u32;
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Addi(d, a, i) => {
                let v = self.reg(a).wrapping_add(i as u32);
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Andi(d, a, i) => {
                let v = self.reg(a) & i;
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Ori(d, a, i) => {
                let v = self.reg(a) | i;
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Xori(d, a, i) => {
                let v = self.reg(a) ^ i;
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Sll(d, a, s) => {
                let v = self.reg(a) << (s & 31);
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Srl(d, a, s) => {
                let v = self.reg(a) >> (s & 31);
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Sra(d, a, s) => {
                let v = ((self.reg(a) as i32) >> (s & 31)) as u32;
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Li(d, i) => {
                self.set_reg(d, i as u32);
                Flow::Next
            }
            Insn::Mov(d, a) => {
                let v = self.reg(a);
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Fop(op, d, a, b) => {
                cycles = u64::from(self.hw.fp_cycles);
                let v = op.apply(self.reg(a), self.reg(b));
                self.set_reg(d, v);
                Flow::Next
            }
            Insn::Mul(d, a, b) => {
                cycles = u64::from(self.hw.mul_cycles);
                let v = (self.reg(a) as i32).wrapping_mul(self.reg(b) as i32);
                self.set_reg(d, v as u32);
                Flow::Next
            }
            Insn::Div(d, a, b) => {
                cycles = u64::from(self.hw.div_cycles);
                let bb = self.reg(b) as i32;
                let v = if bb == 0 {
                    0
                } else {
                    (self.reg(a) as i32).wrapping_div(bb)
                };
                self.set_reg(d, v as u32);
                Flow::Next
            }
            Insn::Rem(d, a, b) => {
                cycles = u64::from(self.hw.div_cycles);
                let bb = self.reg(b) as i32;
                let v = if bb == 0 {
                    0
                } else {
                    (self.reg(a) as i32).wrapping_rem(bb)
                };
                self.set_reg(d, v as u32);
                Flow::Next
            }
            Insn::Ld(d, base, disp) => {
                let addr = self.ea(base, disp);
                let v = self.load(addr, pc)?;
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: false,
                    });
                }
                self.set_reg(d, v);
                next_pending = Some(d);
                Flow::Next
            }
            Insn::St { src, base, disp } => {
                let addr = self.ea(base, disp);
                let v = self.reg(src);
                self.store(addr, v, pc)?;
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: true,
                    });
                }
                Flow::Next
            }
            Insn::LdChk {
                rd,
                base,
                disp,
                field,
                expect,
                on_fail,
            } => {
                if self.hw.parallel_check == ParallelCheck::None {
                    return Err(SimError::MissingHardware {
                        pc,
                        feature: "parallel tag check",
                    });
                }
                let word = self.reg(base);
                if field.extract(word) != expect {
                    self.stats
                        .record_trap(annot, u64::from(self.hw.trap_penalty));
                    self.pending_load = None;
                    return self.emit_trap(obs, pc, insn, annot, on_fail as usize);
                }
                let addr = self.ea_untagged(word, field, disp);
                let v = self.load(addr, pc)?;
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: false,
                    });
                }
                self.set_reg(rd, v);
                next_pending = Some(rd);
                Flow::Next
            }
            Insn::StChk {
                src,
                base,
                disp,
                field,
                expect,
                on_fail,
            } => {
                if self.hw.parallel_check == ParallelCheck::None {
                    return Err(SimError::MissingHardware {
                        pc,
                        feature: "parallel tag check",
                    });
                }
                let word = self.reg(base);
                if field.extract(word) != expect {
                    self.stats
                        .record_trap(annot, u64::from(self.hw.trap_penalty));
                    self.pending_load = None;
                    return self.emit_trap(obs, pc, insn, annot, on_fail as usize);
                }
                let addr = self.ea_untagged(word, field, disp);
                let v = self.reg(src);
                self.store(addr, v, pc)?;
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: true,
                    });
                }
                Flow::Next
            }
            Insn::AddG {
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            }
            | Insn::SubG {
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            } => {
                if !self.hw.generic_arith {
                    return Err(SimError::MissingHardware {
                        pc,
                        feature: "generic arithmetic",
                    });
                }
                let a = self.reg(rs);
                let b = self.reg(rt);
                let sub = matches!(insn, Insn::SubG { .. });
                let result = if sub {
                    (a as i32).checked_sub(b as i32)
                } else {
                    (a as i32).checked_add(b as i32)
                };
                let ok = int_test.is_int(a)
                    && int_test.is_int(b)
                    && result.map(|r| int_test.is_int(r as u32)).unwrap_or(false);
                if !ok {
                    // The trap is generic-arithmetic dispatch work regardless of
                    // how the instruction's fast path is annotated.
                    let trap_annot = Annot {
                        tag_op: Some(crate::annot::TagOpKind::Generic),
                        cat: crate::annot::CheckCat::Arith,
                        prov: crate::annot::Provenance::Checking,
                    };
                    let _ = annot;
                    self.stats
                        .record_trap(trap_annot, u64::from(self.hw.trap_penalty));
                    self.pending_load = None;
                    return self.emit_trap(obs, pc, insn, trap_annot, on_fail as usize);
                }
                self.set_reg(rd, result.expect("checked above") as u32);
                Flow::Next
            }
            Insn::Nop => Flow::Next,
            Insn::Write(r, kind) => {
                let v = self.reg(r);
                match kind {
                    WriteKind::Char => self.output.push((v & 0xFF) as u8 as char),
                    WriteKind::Int => {
                        use std::fmt::Write as _;
                        let _ = write!(self.output, "{}", v as i32);
                    }
                }
                Flow::Next
            }
            Insn::Halt(r) => Flow::Halt(self.reg(r) as i32),
            Insn::Br { .. }
            | Insn::Bri { .. }
            | Insn::TagBr { .. }
            | Insn::J(_)
            | Insn::Jal(..)
            | Insn::Jr(_)
            | Insn::Jalr(..) => unreachable!("control handled by the main loop"),
        };
        self.stats.record(class, annot, cycles);
        self.pending_load = next_pending;
        if O::ENABLED {
            let ev = Retirement {
                pc,
                insn,
                write: insn.def().map(|r| (r, self.reg(r))),
                mem: memop,
                trap: None,
            };
            if obs.retire(&ev, annot, self.stats.cycles).is_break() {
                return Err(SimError::Stopped {
                    cycles: self.stats.cycles,
                });
            }
        }
        Ok(flow)
    }

    /// Execute one delay-slot instruction (must not be a control transfer).
    fn exec_slot<O: Observer>(&mut self, pc: usize, obs: &mut O) -> Result<Flow, SimError> {
        let (insn, annot) = self.fetch(pc)?;
        if insn.is_control() {
            return Err(SimError::ControlInSlot { pc });
        }
        self.exec_simple(pc, insn, annot, obs)
    }
}

impl Executor for Cpu<'_> {
    /// The classic one-pass drive loop: fetch, hardware-gate, classify, and
    /// attribute on every step. See [`crate::FastCpu`] for the predecoded
    /// equivalent; the two produce byte-identical results.
    fn run_observed<O: Observer>(
        &mut self,
        max_cycles: u64,
        obs: &mut O,
    ) -> Result<Outcome, SimError> {
        loop {
            if self.stats.cycles >= max_cycles {
                return Err(SimError::OutOfFuel {
                    cycles: self.stats.cycles,
                });
            }
            let pc = self.pc;
            let (insn, annot) = self.fetch(pc)?;
            if !insn.is_control() {
                match self.exec_simple(pc, insn, annot, obs)? {
                    Flow::Next => self.pc = pc + 1,
                    Flow::Halt(code) => {
                        return Ok(Outcome {
                            halt_code: code,
                            output: std::mem::take(&mut self.output),
                            stats: self.stats.clone(),
                        })
                    }
                    Flow::Trap { target } => self.pc = target,
                }
                continue;
            }

            // Control transfer. Charge the branch/jump cycle itself.
            self.check_load_delay(pc, insn)?;
            self.stats.record(InsnClass::of(insn), annot, 1);
            self.pending_load = None;

            let (taken, target, squash, slots, link): (bool, usize, bool, usize, Option<Reg>) =
                match insn {
                    Insn::Br {
                        cond,
                        rs,
                        rt,
                        target,
                        squash,
                    } => {
                        let t = cond.eval(self.reg(rs), self.reg(rt));
                        (t, target as usize, squash, 2, None)
                    }
                    Insn::Bri {
                        cond,
                        rs,
                        imm,
                        target,
                        squash,
                    } => {
                        let t = cond.eval(self.reg(rs), imm as u32);
                        (t, target as usize, squash, 2, None)
                    }
                    Insn::TagBr {
                        rs,
                        field,
                        value,
                        neq,
                        target,
                        squash,
                    } => {
                        if !self.hw.tag_branch {
                            return Err(SimError::MissingHardware {
                                pc,
                                feature: "tag branch",
                            });
                        }
                        let eq = field.extract(self.reg(rs)) == value;
                        let t = if neq { !eq } else { eq };
                        (t, target as usize, squash, 2, None)
                    }
                    Insn::J(t) => (true, t as usize, false, 1, None),
                    Insn::Jal(t, link) => (true, t as usize, false, 1, Some(link)),
                    Insn::Jr(r) => (true, self.reg(r) as usize, false, 1, None),
                    Insn::Jalr(r, link) => (true, self.reg(r) as usize, false, 1, Some(link)),
                    _ => unreachable!(),
                };

            if let Some(link) = link {
                self.set_reg(link, (pc + 1 + slots) as u32);
            }

            if O::ENABLED {
                let ev = Retirement {
                    pc,
                    insn,
                    write: insn.def().map(|r| (r, self.reg(r))),
                    mem: None,
                    trap: None,
                };
                if obs.retire(&ev, annot, self.stats.cycles).is_break() {
                    return Err(SimError::Stopped {
                        cycles: self.stats.cycles,
                    });
                }
            }

            let mut halted = None;
            for s in 1..=slots {
                let spc = pc + s;
                if taken || !squash {
                    match self.exec_slot(spc, obs)? {
                        Flow::Next => {}
                        Flow::Halt(code) => {
                            halted = Some(code);
                            break;
                        }
                        Flow::Trap { .. } => {
                            // Checked instructions are never placed in delay slots
                            // by the code generator (verify.rs enforces it).
                            return Err(SimError::ControlInSlot { pc: spc });
                        }
                    }
                } else {
                    // Squashed: cycle wasted, attributed to the branch.
                    self.stats.record_squashed(annot);
                    self.pending_load = None;
                    if O::ENABLED {
                        obs.squash(spc, annot, self.stats.cycles);
                    }
                }
            }
            if let Some(code) = halted {
                return Ok(Outcome {
                    halt_code: code,
                    output: std::mem::take(&mut self.output),
                    stats: self.stats.clone(),
                });
            }

            self.pc = if taken { target } else { pc + 1 + slots };
        }
    }

    fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    fn mem(&self) -> &Mem {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::{Cond, IntTest, TagField};

    fn run(asm: Asm, hw: HwConfig) -> Outcome {
        let prog = asm.finish().expect("assembles");
        Cpu::new(&prog, hw, 1 << 16).run(1_000_000).expect("runs")
    }

    fn entry(asm: &mut Asm) {
        let e = asm.here("entry");
        asm.set_entry(e);
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::A0, 40);
        asm.li(Reg::A1, 2);
        asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::A1));
        asm.halt(Reg::A0);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.halt_code, 42);
        assert_eq!(o.stats.cycles, 4);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::Zero, 7);
        asm.emit(Insn::Add(Reg::A0, Reg::Zero, Reg::Zero));
        asm.halt(Reg::A0);
        assert_eq!(run(asm, HwConfig::plain()).halt_code, 0);
    }

    #[test]
    fn taken_branch_executes_slots_and_jumps() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let target = asm.new_label();
        asm.li(Reg::A0, 1);
        asm.beq(Reg::A0, Reg::A0, target); // always taken; 2 nop slots
        asm.li(Reg::A0, 99); // skipped
        asm.bind(target);
        asm.halt(Reg::A0);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.halt_code, 1);
        // li + br + 2 slots + halt
        assert_eq!(o.stats.cycles, 5);
    }

    #[test]
    fn squashing_branch_cancels_slots_when_not_taken() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let target = asm.new_label();
        asm.li(Reg::A0, 1);
        asm.br_raw(Cond::Eq, Reg::A0, Reg::Zero, target, true); // not taken, squash
        asm.li(Reg::A0, 50); // slot 1: squashed
        asm.li(Reg::A0, 60); // slot 2: squashed
        asm.halt(Reg::A0);
        asm.bind(target);
        asm.halt(Reg::Zero);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.halt_code, 1, "squashed writes must not commit");
        assert_eq!(o.stats.squashed, 2);
    }

    #[test]
    fn non_squashing_branch_commits_slots_when_not_taken() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let target = asm.new_label();
        asm.li(Reg::A0, 1);
        asm.br_raw(Cond::Eq, Reg::A0, Reg::Zero, target, false); // not taken
        asm.li(Reg::A1, 50); // slot 1: commits
        asm.nop(); // slot 2
        asm.halt(Reg::A1);
        asm.bind(target);
        asm.halt(Reg::Zero);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.halt_code, 50);
        assert_eq!(o.stats.squashed, 0);
    }

    #[test]
    fn call_and_return() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let f = asm.new_label();
        asm.jal(f, Reg::Link);
        asm.halt(Reg::A0);
        asm.bind(f);
        asm.li(Reg::A0, 7);
        asm.jr(Reg::Link);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.halt_code, 7);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::T0, 0x100);
        asm.li(Reg::T1, 1234);
        asm.st(Reg::T1, Reg::T0, 8);
        asm.ld(Reg::A0, Reg::T0, 8);
        asm.nop(); // load delay
        asm.halt(Reg::A0);
        assert_eq!(run(asm, HwConfig::plain()).halt_code, 1234);
    }

    #[test]
    fn load_delay_violation_detected() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::T0, 0x100);
        asm.ld(Reg::A0, Reg::T0, 0);
        asm.emit(Insn::Add(Reg::A1, Reg::A0, Reg::Zero)); // reads A0 too early
        asm.halt(Reg::A1);
        let prog = asm.finish().unwrap();
        let err = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run(1000)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::LoadDelayViolation { reg: Reg::A0, .. }
        ));
    }

    #[test]
    fn address_drop_masks_high_bits() {
        let mut asm = Asm::new();
        entry(&mut asm);
        // Address with a 5-bit "tag" in the top bits.
        asm.li(Reg::T0, (0b01011u32 << 27) as i32 | 0x40);
        asm.li(Reg::T1, 77);
        asm.st(Reg::T1, Reg::T0, 0);
        asm.ld(Reg::A0, Reg::T0, 0);
        asm.nop();
        asm.halt(Reg::A0);
        let o = run(asm, HwConfig::with_address_drop(5));
        assert_eq!(o.halt_code, 77);
    }

    #[test]
    fn tagged_address_without_drop_faults() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::T0, (0b01011u32 << 27) as i32 | 0x40);
        asm.st(Reg::T0, Reg::T0, 0);
        asm.halt(Reg::Zero);
        let prog = asm.finish().unwrap();
        let err = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run(1000)
            .unwrap_err();
        assert!(matches!(err, SimError::MemFault { .. }));
    }

    #[test]
    fn tag_branch_requires_hardware() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let t = asm.new_label();
        asm.emit(Insn::TagBr {
            rs: Reg::A0,
            field: TagField {
                shift: 27,
                mask: 0x1F,
            },
            value: 0,
            neq: false,
            target: t.0,
            squash: false,
        });
        asm.nop();
        asm.nop();
        asm.bind(t);
        asm.halt(Reg::Zero);
        let prog = asm.finish().unwrap();
        let err = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run(1000)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::MissingHardware {
                feature: "tag branch",
                ..
            }
        ));
        let ok = Cpu::new(&prog, HwConfig::with_tag_branch(), 1 << 16)
            .run(1000)
            .unwrap();
        assert_eq!(ok.halt_code, 0);
    }

    #[test]
    fn tag_branch_compares_field() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let is_pair = asm.new_label();
        // tag 1 (pair) in top 5 bits
        asm.li(Reg::A0, (1u32 << 27) as i32 | 0x123);
        asm.emit(Insn::TagBr {
            rs: Reg::A0,
            field: TagField {
                shift: 27,
                mask: 0x1F,
            },
            value: 1,
            neq: false,
            target: is_pair.0,
            squash: false,
        });
        asm.nop();
        asm.nop();
        asm.halt(Reg::Zero); // not reached
        asm.bind(is_pair);
        asm.li(Reg::A1, 1);
        asm.halt(Reg::A1);
        let o = run(asm, HwConfig::with_tag_branch());
        assert_eq!(o.halt_code, 1);
    }

    #[test]
    fn checked_load_passes_and_traps() {
        let field = TagField {
            shift: 27,
            mask: 0x1F,
        };
        let mk = |tag: u32| -> i32 { ((tag << 27) | 0x80) as i32 };
        let build = |tag: u32| {
            let mut asm = Asm::new();
            entry(&mut asm);
            let fail = asm.new_label();
            asm.li(Reg::T0, mk(tag));
            asm.li(Reg::T1, 55);
            asm.st(Reg::T1, Reg::T0, 0); // plain store faults on tagged addr...
            asm.emit(Insn::LdChk {
                rd: Reg::A0,
                base: Reg::T0,
                disp: 0,
                field,
                expect: 1,
                on_fail: fail.0,
            });
            asm.nop();
            asm.halt(Reg::A0);
            asm.bind(fail);
            asm.li(Reg::A0, -1);
            asm.halt(Reg::A0);
            asm.finish().unwrap()
        };
        // Use address-drop hardware so the plain store works through a tagged ptr.
        let hw = HwConfig {
            parallel_check: ParallelCheck::All,
            drop_high_address_bits: 5,
            ..HwConfig::plain()
        };
        let prog = build(1);
        let o = Cpu::new(&prog, hw, 1 << 16).run(1000).unwrap();
        assert_eq!(o.halt_code, 55, "matching tag loads normally");
        assert_eq!(o.stats.traps, 0);
        let prog = build(3);
        let o = Cpu::new(&prog, hw, 1 << 16).run(1000).unwrap();
        assert_eq!(o.halt_code, -1, "mismatch traps to on_fail");
        assert_eq!(o.stats.traps, 1);
        assert_eq!(o.stats.trap_cycles, u64::from(hw.trap_penalty));
    }

    #[test]
    fn generic_add_fast_path_and_trap() {
        let test = IntTest::SignExt(27);
        let build = |a: i32, b: i32| {
            let mut asm = Asm::new();
            entry(&mut asm);
            let fail = asm.new_label();
            asm.li(Reg::A0, a);
            asm.li(Reg::A1, b);
            asm.emit(Insn::AddG {
                rd: Reg::A2,
                rs: Reg::A0,
                rt: Reg::A1,
                int_test: test,
                on_fail: fail.0,
            });
            asm.halt(Reg::A2);
            asm.bind(fail);
            asm.li(Reg::A2, -999);
            asm.halt(Reg::A2);
            asm.finish().unwrap()
        };
        let hw = HwConfig::with_generic_arith();
        let prog = build(20, 22);
        assert_eq!(
            Cpu::new(&prog, hw, 1 << 16).run(1000).unwrap().halt_code,
            42
        );
        // Overflow of the 27-bit fixnum range traps.
        let prog = build((1 << 26) - 1, 1);
        assert_eq!(
            Cpu::new(&prog, hw, 1 << 16).run(1000).unwrap().halt_code,
            -999
        );
        // Non-integer operand traps.
        let prog = build((3u32 << 27) as i32, 1);
        assert_eq!(
            Cpu::new(&prog, hw, 1 << 16).run(1000).unwrap().halt_code,
            -999
        );
    }

    #[test]
    fn write_output() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::A0, 'h' as i32);
        asm.write(Reg::A0, WriteKind::Char);
        asm.li(Reg::A0, -42);
        asm.write(Reg::A0, WriteKind::Int);
        asm.halt(Reg::Zero);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.output, "h-42");
    }

    #[test]
    fn out_of_fuel() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let l = asm.here("loop");
        asm.j(l);
        let prog = asm.finish().unwrap();
        let err = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run(100)
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfFuel { .. }));
    }

    #[test]
    fn mul_div_cost_and_semantics() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::A0, -6);
        asm.li(Reg::A1, 7);
        asm.emit(Insn::Mul(Reg::A2, Reg::A0, Reg::A1));
        asm.halt(Reg::A2);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.halt_code, -42);
        assert_eq!(
            o.stats.cycles,
            2 + u64::from(HwConfig::plain().mul_cycles) + 1
        );
        // division by zero yields 0 (runtime checks divisors itself)
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::A0, 5);
        asm.emit(Insn::Div(Reg::A2, Reg::A0, Reg::Zero));
        asm.halt(Reg::A2);
        assert_eq!(run(asm, HwConfig::plain()).halt_code, 0);
    }

    #[test]
    fn control_in_slot_is_an_error() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let t = asm.new_label();
        asm.br_raw(Cond::Eq, Reg::Zero, Reg::Zero, t, false);
        asm.emit(Insn::J(t.0)); // illegal: control in slot
        asm.nop();
        asm.bind(t);
        asm.halt(Reg::Zero);
        let prog = asm.finish().unwrap();
        let err = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run(1000)
            .unwrap_err();
        assert!(matches!(err, SimError::ControlInSlot { .. }));
    }

    #[test]
    fn bri_compares_against_immediate() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let hit = asm.new_label();
        asm.li(Reg::A0, -3);
        asm.bri(Cond::Lt, Reg::A0, 0, hit); // signed comparison with immediate
        asm.halt(Reg::Zero);
        asm.bind(hit);
        asm.li(Reg::A1, 1);
        asm.halt(Reg::A1);
        assert_eq!(run(asm, HwConfig::plain()).halt_code, 1);
    }

    #[test]
    fn fop_semantics_and_cost() {
        use crate::insn::FpOp;
        let hw = HwConfig::plain();
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::A0, 2.5f32.to_bits() as i32);
        asm.li(Reg::A1, 0.5f32.to_bits() as i32);
        asm.emit(Insn::Fop(FpOp::Mul, Reg::A2, Reg::A0, Reg::A1));
        asm.emit(Insn::Fop(FpOp::Lt, Reg::A3, Reg::A1, Reg::A2));
        asm.halt(Reg::A3);
        let o = run(asm, hw);
        assert_eq!(o.halt_code, 1, "0.5 < 1.25");
        assert_eq!(o.stats.cycles, 2 + 2 * u64::from(hw.fp_cycles) + 1);
        // integer conversion
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.li(Reg::A0, -7);
        asm.emit(Insn::Fop(FpOp::FromInt, Reg::A1, Reg::A0, Reg::Zero));
        asm.halt(Reg::A1);
        let o = run(asm, hw);
        assert_eq!(f32::from_bits(o.halt_code as u32), -7.0);
    }

    #[test]
    fn checked_store_traps_on_mismatch() {
        use crate::insn::TagField;
        let field = TagField {
            shift: 27,
            mask: 0x1F,
        };
        let hw = HwConfig {
            parallel_check: ParallelCheck::All,
            ..HwConfig::plain()
        };
        let mut asm = Asm::new();
        entry(&mut asm);
        let fail = asm.new_label();
        asm.li(Reg::T0, ((3u32 << 27) | 0x80) as i32); // wrong tag
        asm.li(Reg::T1, 9);
        asm.emit(Insn::StChk {
            src: Reg::T1,
            base: Reg::T0,
            disp: 0,
            field,
            expect: 1,
            on_fail: fail.0,
        });
        asm.halt(Reg::Zero);
        asm.bind(fail);
        asm.li(Reg::A0, -7);
        asm.halt(Reg::A0);
        let prog = asm.finish().unwrap();
        let o = Cpu::new(&prog, hw, 1 << 16).run(1000).unwrap();
        assert_eq!(o.halt_code, -7);
        assert_eq!(o.stats.traps, 1);
    }

    /// Regression: a `Program` whose `annots` is shorter than `insns` used to
    /// be accepted, with missing entries silently read as `Annot::NONE` —
    /// misattributing every affected cycle. Construction now rejects it.
    #[test]
    #[should_panic(expected = "annots must parallel insns")]
    fn mismatched_annots_are_rejected_at_construction() {
        let prog = Program {
            insns: vec![Insn::Nop, Insn::Halt(Reg::Zero)],
            annots: vec![Annot::NONE], // one short
            ..Program::default()
        };
        let _ = Cpu::new(&prog, HwConfig::plain(), 1 << 12);
    }

    #[test]
    fn jal_links_past_slot() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let f = asm.new_label();
        asm.jal(f, Reg::Link); // emits jal + 1 slot nop
        asm.li(Reg::A1, 5); // return lands here
        asm.halt(Reg::A1);
        asm.bind(f);
        asm.jr(Reg::Link);
        let o = run(asm, HwConfig::plain());
        assert_eq!(o.halt_code, 5);
    }
}
