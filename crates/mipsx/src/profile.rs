//! The cycle-attribution profiler: a streaming [`Observer`] that turns the
//! retirement stream into per-function, per-PC and per-call-site cycle
//! accounting.
//!
//! The paper reports tag costs only as whole-program aggregates (Tables 1–2);
//! this module answers the question those tables cannot: *where* does tag
//! handling concentrate? A [`Profiler`] attaches to any observed run
//! ([`crate::Cpu::run_observed`]) and attributes every cycle — including
//! squashed delay slots and trap penalties — to the instruction that spent it,
//! the function that contains it (via the program's
//! [`SymbolTable`](crate::SymbolTable)), and the tag operation /
//! checking category its [`Annot`] names.
//!
//! Attribution is exact by construction: the observer receives cumulative
//! cycle counts, so successive deltas partition the run's total cycles, and
//! each delta is filed under the same annotation the simulator's own
//! [`Stats`] charged. [`Profiler::reconcile`] checks the resulting equalities
//! (total cycles, the full `(tag op, provenance)` map, checking categories,
//! squash and trap counts) against a [`Stats`] and reports the first
//! discrepancy — the per-function tables provably *are* the whole-program
//! figures, redistributed.
//!
//! Beyond flat tables the profiler keeps an inferred call stack (calls are
//! retirements landing on a named entry right after a `jal`/`jalr`; returns
//! are retirements at the recorded return address) and accumulates cycles per
//! distinct stack, exported by [`Profiler::folded`] in the standard
//! folded-stack format (`frame;frame;frame count` per line) that flamegraph
//! tools consume directly.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::ops::ControlFlow;

use crate::annot::{Annot, CheckCat, Provenance, TagOpKind, ALL_CHECK_CATS, ALL_TAG_OPS};
use crate::insn::Insn;
use crate::program::Program;
use crate::stats::Stats;
use crate::symtab::SymbolTable;
use crate::trace::{Observer, Retirement};

/// Sentinel function index: the PC lies outside every named region.
const NO_FUNC: u32 = u32::MAX;
/// Sentinel frame in folded stacks: frames elided by [`FOLD_DEPTH`].
const TRUNCATED: u32 = u32::MAX - 1;
/// Maximum frames kept per folded-stack bucket; deeper stacks collapse their
/// tail into a `...` frame so recursive workloads cannot explode the output.
const FOLD_DEPTH: usize = 48;

#[inline]
fn op_index(op: TagOpKind) -> usize {
    // Must match ALL_TAG_OPS order (asserted by the `index_order` test).
    match op {
        TagOpKind::Insert => 0,
        TagOpKind::Remove => 1,
        TagOpKind::Extract => 2,
        TagOpKind::Check => 3,
        TagOpKind::Generic => 4,
    }
}

#[inline]
fn cat_index(cat: CheckCat) -> usize {
    // Must match ALL_CHECK_CATS order (asserted by the `index_order` test).
    match cat {
        CheckCat::NotChecking => 0,
        CheckCat::Arith => 1,
        CheckCat::Vector => 2,
        CheckCat::List => 3,
    }
}

#[inline]
fn prov_index(p: Provenance) -> usize {
    match p {
        Provenance::Base => 0,
        Provenance::Checking => 1,
    }
}

/// Cycle accounting for one function (one [`SymbolTable`] region).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncProfile {
    /// Total cycles spent at PCs of this function, including squashed slots
    /// and trap penalties charged there.
    pub cycles: u64,
    /// Retired instructions (committed, including trapping retirements).
    pub retired: u64,
    /// Times this function was entered by a call.
    pub calls: u64,
    /// Squashed delay slots at PCs of this function.
    pub squashes: u64,
    /// Cycles wasted in those squashed slots.
    pub squash_cycles: u64,
    /// Traps taken by checked instructions of this function.
    pub traps: u64,
    /// Trap-penalty cycles charged here.
    pub trap_cycles: u64,
    /// Cycles per `[tag operation][provenance]`, indexed in
    /// [`ALL_TAG_OPS`] / `[Base, Checking]` order.
    pub tag_cycles: [[u64; 2]; 5],
    /// Checking-added cycles per category, indexed in [`ALL_CHECK_CATS`] order.
    pub check_cycles: [u64; 4],
}

impl FuncProfile {
    /// All cycles attributed to any tag operation in this function.
    pub fn tag_total(&self) -> u64 {
        self.tag_cycles.iter().flatten().sum()
    }

    /// Cycles in tag operation `op` (both provenances).
    pub fn tag_op(&self, op: TagOpKind) -> u64 {
        self.tag_cycles[op_index(op)].iter().sum()
    }

    /// Checking-added cycles in category `cat`.
    pub fn checking(&self, cat: CheckCat) -> u64 {
        self.check_cycles[cat_index(cat)]
    }
}

/// Cycle accounting for one instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcProfile {
    /// Cycles spent at this PC (execution, squashes, trap penalties).
    pub cycles: u64,
    /// Events at this PC: retirements plus squashes.
    pub count: u64,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    ret_pc: u32,
}

/// The streaming profiler. See the [module docs](self).
///
/// Build one per observed run with [`Profiler::new`] (it snapshots the
/// program's instructions and symbol table, so it outlives the run) and pass
/// it to [`crate::Cpu::run_observed`].
#[derive(Debug, Clone)]
pub struct Profiler {
    symtab: SymbolTable,
    insns: Vec<Insn>,
    /// pc → function index (`NO_FUNC` outside every region).
    func_of: Vec<u32>,
    /// pc → function index when pc is a region entry, else `NO_FUNC`.
    entry_of: Vec<u32>,
    /// Parallel to `symtab.functions()`, plus one trailing `<unknown>` bucket.
    funcs: Vec<FuncProfile>,
    pcs: Vec<PcProfile>,
    /// (call-site pc, callee function) → dynamic call count. Includes
    /// `jalr` sites the symbol table cannot resolve statically.
    calls: HashMap<(u32, u32), u64>,
    folded: HashMap<Vec<u32>, u64>,
    stack: Vec<Frame>,
    /// Cycles accumulated on the current stack, not yet in `folded`.
    pending: u64,
    last_cycle: u64,
    /// Set while a retired `jal`/`jalr` may still land on an entry:
    /// `(call pc, retirements of grace left)` — the one delay slot retires
    /// between the call and its target.
    pending_call: Option<(u32, u8)>,
}

impl Profiler {
    /// A profiler for `program`, using its embedded symbol table.
    pub fn new(program: &Program) -> Profiler {
        let symtab = program.symtab.clone();
        let n = program.insns.len();
        let mut func_of = vec![NO_FUNC; n];
        let mut entry_of = vec![NO_FUNC; n];
        for (i, f) in symtab.functions().iter().enumerate() {
            entry_of[f.start] = i as u32;
            func_of[f.start..f.end].fill(i as u32);
        }
        Profiler {
            insns: program.insns.clone(),
            funcs: vec![FuncProfile::default(); symtab.len() + 1],
            pcs: vec![PcProfile::default(); n],
            symtab,
            func_of,
            entry_of,
            calls: HashMap::new(),
            folded: HashMap::new(),
            stack: Vec::new(),
            pending: 0,
            last_cycle: 0,
            pending_call: None,
        }
    }

    /// The bucket index for `pc` (the trailing bucket for unnamed regions).
    #[inline]
    fn bucket(&self, pc: usize) -> usize {
        match self.func_of.get(pc).copied() {
            Some(f) if f != NO_FUNC => f as usize,
            _ => self.funcs.len() - 1,
        }
    }

    /// Name of bucket `i` (`<unknown>` for the trailing bucket).
    pub fn bucket_name(&self, i: usize) -> &str {
        if i < self.symtab.len() {
            self.symtab.name(i)
        } else {
            "<unknown>"
        }
    }

    /// Move the cycles accumulated on the current stack into their folded
    /// bucket. Called whenever the stack is about to change.
    fn flush_folded(&mut self) {
        if self.pending == 0 {
            return;
        }
        let depth = self.stack.len().min(FOLD_DEPTH);
        // Borrow-friendly lookup by slice; clone the key only on first use.
        let mut key: Vec<u32> = self.stack[..depth].iter().map(|f| f.func).collect();
        if self.stack.len() > FOLD_DEPTH {
            key.push(TRUNCATED);
        }
        *self.folded.entry(key).or_insert(0) += self.pending;
        self.pending = 0;
    }

    /// Keep the inferred call stack consistent with a retirement at `pc`
    /// in function bucket `f` (which may be `NO_FUNC`).
    fn track_stack(&mut self, pc: usize, f: u32) {
        // A call lands when a retired jal/jalr is followed (after its delay
        // slot) by a retirement at a named entry — this also catches direct
        // recursion, which never changes the current function.
        if let Some((call_pc, grace)) = self.pending_call {
            let entry = self.entry_of.get(pc).copied().unwrap_or(NO_FUNC);
            if entry != NO_FUNC {
                *self.calls.entry((call_pc, entry)).or_insert(0) += 1;
                self.flush_folded();
                self.stack.push(Frame {
                    func: entry,
                    ret_pc: call_pc + 2,
                });
                self.funcs[entry as usize].calls += 1;
                self.pending_call = None;
                return;
            }
            self.pending_call = if grace == 0 {
                None
            } else {
                Some((call_pc, grace - 1))
            };
        } else if let Some(top) = self.stack.last() {
            // A return lands exactly on the recorded return address
            // (call pc + 1 delay slot + 1), covering same-function
            // (recursive) returns the range check below cannot see.
            if pc as u32 == top.ret_pc {
                self.flush_folded();
                self.stack.pop();
            }
        }
        // Resynchronize on anything else that moved between functions
        // without a call or return: tail jumps to error stops, trap
        // redirects, and the very first retirement.
        match self.stack.last() {
            Some(top) if top.func == f => {}
            _ => {
                if self.stack.iter().any(|fr| fr.func == f) {
                    self.flush_folded();
                    while self.stack.last().map(|fr| fr.func) != Some(f) {
                        self.stack.pop();
                    }
                } else {
                    self.flush_folded();
                    self.stack.pop();
                    self.stack.push(Frame {
                        func: f,
                        ret_pc: u32::MAX,
                    });
                }
            }
        }
    }

    #[inline]
    fn attribute(&mut self, bucket: usize, pc: usize, delta: u64, annot: Annot) {
        let fp = &mut self.funcs[bucket];
        fp.cycles += delta;
        if let Some(op) = annot.tag_op {
            fp.tag_cycles[op_index(op)][prov_index(annot.prov)] += delta;
        }
        if annot.prov == Provenance::Checking {
            fp.check_cycles[cat_index(annot.cat)] += delta;
        }
        if let Some(p) = self.pcs.get_mut(pc) {
            p.cycles += delta;
            p.count += 1;
        }
        self.pending += delta;
    }

    // --- results ----------------------------------------------------------

    /// Total cycles observed so far (equals `Stats::cycles` after a run).
    pub fn total_cycles(&self) -> u64 {
        self.last_cycle
    }

    /// All cycles attributed to any tag operation, summed over functions.
    pub fn total_tag_cycles(&self) -> u64 {
        self.funcs.iter().map(FuncProfile::tag_total).sum()
    }

    /// Per-function profiles as `(name, profile)`, hottest first (ties broken
    /// by name), functions that never ran omitted.
    pub fn hot_functions(&self) -> Vec<(&str, &FuncProfile)> {
        let mut v: Vec<(&str, &FuncProfile)> = self
            .funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.cycles > 0 || f.calls > 0)
            .map(|(i, f)| (self.bucket_name(i), f))
            .collect();
        v.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
        v
    }

    /// Per-PC counters (indexed by instruction index).
    pub fn pc_profiles(&self) -> &[PcProfile] {
        &self.pcs
    }

    /// Dynamic call counts per `(call-site pc, callee name)`, most frequent
    /// first (ties broken by pc).
    pub fn call_counts(&self) -> Vec<(usize, &str, u64)> {
        let mut v: Vec<(usize, &str, u64)> = self
            .calls
            .iter()
            .map(|((pc, callee), n)| (*pc as usize, self.bucket_name(*callee as usize), *n))
            .collect();
        v.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(b.1)));
        v
    }

    /// Rebuild the whole-program `(tag op, provenance) → cycles` map from the
    /// per-function buckets (for comparison against [`Stats::tag_cycles`]).
    pub fn tag_cycles_rebuilt(&self) -> HashMap<(TagOpKind, Provenance), u64> {
        let mut out = HashMap::new();
        for f in &self.funcs {
            for (oi, op) in ALL_TAG_OPS.iter().enumerate() {
                for (pi, prov) in [Provenance::Base, Provenance::Checking].iter().enumerate() {
                    let c = f.tag_cycles[oi][pi];
                    if c > 0 {
                        *out.entry((*op, *prov)).or_insert(0) += c;
                    }
                }
            }
        }
        out
    }

    /// Check the profiler's books against the simulator's own [`Stats`].
    ///
    /// # Errors
    ///
    /// A description of the first discrepancy. `Ok(())` proves the
    /// per-function tables are an exact redistribution of the whole-program
    /// figures: total cycles, every `(tag op, provenance)` cell, every
    /// checking category, squash and trap counts all reconcile.
    pub fn reconcile(&self, stats: &Stats) -> Result<(), String> {
        if self.total_cycles() != stats.cycles {
            return Err(format!(
                "total cycles: profiler {} vs stats {}",
                self.total_cycles(),
                stats.cycles
            ));
        }
        let rebuilt = self.tag_cycles_rebuilt();
        let reference: HashMap<_, _> = stats
            .tag_cycles
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(k, c)| (*k, *c))
            .collect();
        if rebuilt != reference {
            return Err(format!(
                "tag cycles: profiler {rebuilt:?} vs stats {reference:?}"
            ));
        }
        for cat in ALL_CHECK_CATS {
            let ours: u64 = self.funcs.iter().map(|f| f.checking(cat)).sum();
            if ours != stats.checking_cycles(cat) {
                return Err(format!(
                    "checking cycles ({cat:?}): profiler {ours} vs stats {}",
                    stats.checking_cycles(cat)
                ));
            }
        }
        let squashes: u64 = self.funcs.iter().map(|f| f.squashes).sum();
        if squashes != stats.squashed {
            return Err(format!(
                "squashed slots: profiler {squashes} vs stats {}",
                stats.squashed
            ));
        }
        let traps: u64 = self.funcs.iter().map(|f| f.traps).sum();
        if traps != stats.traps {
            return Err(format!("traps: profiler {traps} vs stats {}", stats.traps));
        }
        let trap_cycles: u64 = self.funcs.iter().map(|f| f.trap_cycles).sum();
        if trap_cycles != stats.trap_cycles {
            return Err(format!(
                "trap cycles: profiler {trap_cycles} vs stats {}",
                stats.trap_cycles
            ));
        }
        let retired: u64 = self.funcs.iter().map(|f| f.retired).sum();
        if retired != stats.committed {
            return Err(format!(
                "retired: profiler {retired} vs stats {}",
                stats.committed
            ));
        }
        Ok(())
    }

    /// Folded-stack output in the flamegraph text format: one
    /// `frame;frame;frame count` line per distinct stack, sorted by stack for
    /// determinism. The counts are cycles and sum to [`Profiler::total_cycles`].
    pub fn folded(&self) -> String {
        let mut entries: Vec<(String, u64)> = Vec::with_capacity(self.folded.len() + 1);
        let render = |key: &[u32]| -> String {
            let mut s = String::new();
            for (i, f) in key.iter().enumerate() {
                if i > 0 {
                    s.push(';');
                }
                if *f == TRUNCATED {
                    s.push_str("...");
                } else if *f == NO_FUNC {
                    s.push_str("<unknown>");
                } else {
                    s.push_str(self.bucket_name(*f as usize));
                }
            }
            s
        };
        for (key, cycles) in &self.folded {
            entries.push((render(key), *cycles));
        }
        // Cycles still pending on the live stack (a run that just ended).
        if self.pending > 0 && !self.stack.is_empty() {
            let depth = self.stack.len().min(FOLD_DEPTH);
            let mut key: Vec<u32> = self.stack[..depth].iter().map(|f| f.func).collect();
            if self.stack.len() > FOLD_DEPTH {
                key.push(TRUNCATED);
            }
            entries.push((render(&key), self.pending));
        }
        // Merge duplicates (the live stack may repeat a folded key), then sort.
        let mut merged: HashMap<String, u64> = HashMap::new();
        for (k, c) in entries {
            *merged.entry(k).or_insert(0) += c;
        }
        let mut lines: Vec<(String, u64)> = merged.into_iter().collect();
        lines.sort();
        let mut out = String::new();
        for (k, c) in lines {
            let _ = writeln!(out, "{k} {c}");
        }
        out
    }

    /// The hot-spot report: per-function attribution table, the hottest
    /// instructions, and the busiest call sites. Deterministic for a given
    /// program and run (suitable for golden snapshots).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let total = self.total_cycles().max(1);
        let pct = |c: u64| 100.0 * c as f64 / total as f64;

        let funcs = self.hot_functions();
        let name_w = funcs
            .iter()
            .map(|(n, _)| n.len())
            .chain(["function".len(), "total".len()])
            .max()
            .unwrap_or(8);
        let _ = writeln!(
            out,
            "{:name_w$} {:>9} {:>12} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>8}",
            "function", "calls", "cycles", "%", "tag%",
            "insert", "remove", "extract", "check", "generic",
            "arith", "vector", "list", "squash", "trapcyc",
        );
        for (name, f) in &funcs {
            let _ = writeln!(
                out,
                "{:name_w$} {:>9} {:>12} {:>6.1} {:>6.1} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>8}",
                name,
                f.calls,
                f.cycles,
                pct(f.cycles),
                pct(f.tag_total()),
                f.tag_op(TagOpKind::Insert),
                f.tag_op(TagOpKind::Remove),
                f.tag_op(TagOpKind::Extract),
                f.tag_op(TagOpKind::Check),
                f.tag_op(TagOpKind::Generic),
                f.checking(CheckCat::Arith),
                f.checking(CheckCat::Vector),
                f.checking(CheckCat::List),
                f.squashes,
                f.trap_cycles,
            );
        }
        let tag_total = self.total_tag_cycles();
        let _ = writeln!(
            out,
            "{:name_w$} {:>9} {:>12} {:>6.1} {:>6.1}",
            "total",
            "",
            self.total_cycles(),
            100.0,
            pct(tag_total),
        );
        let _ = writeln!(
            out,
            "\ntag cycles: {tag_total} of {} total ({:.1}%)",
            self.total_cycles(),
            pct(tag_total)
        );

        let _ = writeln!(out, "\nhottest instructions:");
        let mut hot: Vec<(usize, &PcProfile)> = self
            .pcs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cycles > 0)
            .collect();
        hot.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        let _ = writeln!(
            out,
            "  {:>7} {:<28} {:>12} {:>12}  instruction",
            "pc", "location", "cycles", "events"
        );
        for (pc, p) in hot.iter().take(15) {
            let _ = writeln!(
                out,
                "  {:>7} {:<28} {:>12} {:>12}  {}",
                pc,
                self.symtab.locate(*pc),
                p.cycles,
                p.count,
                self.insns[*pc],
            );
        }

        let _ = writeln!(out, "\nbusiest call sites:");
        let _ = writeln!(
            out,
            "  {:<28} {:<24} {:>12}",
            "call site", "callee", "calls"
        );
        for (pc, callee, n) in self.call_counts().into_iter().take(15) {
            let _ = writeln!(
                out,
                "  {:<28} {:<24} {:>12}",
                self.symtab.locate(pc),
                callee,
                n
            );
        }
        out
    }
}

impl Observer for Profiler {
    fn retire(&mut self, ev: &Retirement, annot: Annot, cycle: u64) -> ControlFlow<()> {
        let delta = cycle - self.last_cycle;
        self.last_cycle = cycle;
        let pc = ev.pc;
        let f = self.func_of.get(pc).copied().unwrap_or(NO_FUNC);

        self.track_stack(pc, f);

        let bucket = self.bucket(pc);
        self.funcs[bucket].retired += 1;
        if ev.trap.is_some() {
            self.funcs[bucket].traps += 1;
            self.funcs[bucket].trap_cycles += delta;
        }
        self.attribute(bucket, pc, delta, annot);

        if ev.trap.is_none() && matches!(ev.insn, Insn::Jal(..) | Insn::Jalr(..)) {
            self.pending_call = Some((pc as u32, 1));
        }
        ControlFlow::Continue(())
    }

    fn squash(&mut self, pc: usize, branch_annot: Annot, cycle: u64) {
        let delta = cycle - self.last_cycle;
        self.last_cycle = cycle;
        let bucket = self.bucket(pc);
        self.funcs[bucket].squashes += 1;
        self.funcs[bucket].squash_cycles += delta;
        self.attribute(bucket, pc, delta, branch_annot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::cpu::Cpu;
    use crate::exec::Executor;
    use crate::hw::HwConfig;
    use crate::reg::Reg;

    #[test]
    fn index_order() {
        for (i, op) in ALL_TAG_OPS.iter().enumerate() {
            assert_eq!(op_index(*op), i, "{op:?}");
        }
        for (i, cat) in ALL_CHECK_CATS.iter().enumerate() {
            assert_eq!(cat_index(*cat), i, "{cat:?}");
        }
    }

    /// A two-function program: main calls f twice; every cycle lands in a
    /// named bucket, calls are counted, and the folded stacks reconcile.
    #[test]
    fn attributes_calls_and_cycles() {
        let mut asm = Asm::new();
        let entry = asm.here("main");
        asm.set_entry(entry);
        let f = asm.new_label();
        asm.name_label("fn:f", f);
        asm.jal(f, Reg::Link);
        asm.jal(f, Reg::Link);
        asm.halt(Reg::A0);
        asm.bind(f);
        asm.emit(Insn::Addi(Reg::A0, Reg::A0, 1));
        asm.jr(Reg::Link);
        let prog = asm.finish().unwrap();

        let mut prof = Profiler::new(&prog);
        let o = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run_observed(10_000, &mut prof)
            .unwrap();
        assert_eq!(o.halt_code, 2);
        prof.reconcile(&o.stats).expect("books balance");

        let funcs: HashMap<&str, &FuncProfile> = prof.hot_functions().into_iter().collect();
        assert_eq!(funcs["fn:f"].calls, 2);
        assert!(funcs["fn:f"].cycles >= 6, "2 × (addi + jr + slot)");
        assert!(funcs["main"].cycles > 0);
        assert_eq!(
            funcs["main"].cycles + funcs["fn:f"].cycles,
            o.stats.cycles,
            "every cycle attributed"
        );

        // Two dynamic calls through one static site each.
        let calls = prof.call_counts();
        assert_eq!(calls.iter().map(|(_, _, n)| n).sum::<u64>(), 2);
        assert!(calls.iter().all(|(_, callee, _)| *callee == "fn:f"));

        // Folded stacks: main and main;fn:f, cycles summing to the total.
        let folded = prof.folded();
        let mut sum = 0u64;
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("frame count");
            assert!(!stack.is_empty());
            sum += count.parse::<u64>().expect("count parses");
        }
        assert_eq!(sum, o.stats.cycles, "folded counts partition the run");
        assert!(folded.contains("main;fn:f "), "{folded}");
    }

    /// Direct recursion pushes and pops frames via return addresses, so the
    /// shadow stack cannot grow with the call count.
    #[test]
    fn recursion_tracks_depth_not_call_count() {
        let mut asm = Asm::new();
        let entry = asm.here("main");
        asm.set_entry(entry);
        let f = asm.new_label();
        asm.name_label("fn:count", f);
        asm.li(Reg::A0, 6);
        asm.jal(f, Reg::Link);
        asm.halt(Reg::A0);
        // count(n): if n == 0 return; save link, recurse on n-1.
        asm.bind(f);
        let done = asm.new_label();
        asm.beq(Reg::A0, Reg::Zero, done);
        asm.emit(Insn::Addi(Reg::A0, Reg::A0, -1));
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, -4));
        asm.st(Reg::Link, Reg::Sp, 0);
        asm.jal(f, Reg::Link);
        asm.ld(Reg::Link, Reg::Sp, 0);
        asm.emit(Insn::Addi(Reg::Sp, Reg::Sp, 4));
        asm.bind(done);
        asm.jr(Reg::Link);
        let prog = asm.finish().unwrap();

        let mut prof = Profiler::new(&prog);
        let mut cpu = Cpu::new(&prog, HwConfig::plain(), 1 << 16);
        cpu.set_reg(Reg::Sp, 0x8000);
        let o = cpu.run_observed(10_000, &mut prof).unwrap();
        prof.reconcile(&o.stats).expect("books balance");

        let funcs: HashMap<&str, &FuncProfile> = prof.hot_functions().into_iter().collect();
        assert_eq!(funcs["fn:count"].calls, 7, "outer call + 6 recursions");
        // Folded stacks reflect depth: the deepest is main;count×7.
        let deepest = prof
            .folded()
            .lines()
            .map(|l| l.split(' ').next().unwrap().split(';').count())
            .max()
            .unwrap();
        assert_eq!(deepest, 8);
    }

    /// Squashed slots are charged to the branch's function and annotation.
    #[test]
    fn squashes_are_attributed() {
        use crate::insn::Cond;
        let mut asm = Asm::new();
        let entry = asm.here("main");
        asm.set_entry(entry);
        let t = asm.new_label();
        asm.li(Reg::A0, 1);
        asm.br_raw(Cond::Eq, Reg::A0, Reg::Zero, t, true); // not taken, squash
        asm.li(Reg::A0, 50);
        asm.li(Reg::A0, 60);
        asm.halt(Reg::A0);
        asm.bind(t);
        asm.halt(Reg::Zero);
        let prog = asm.finish().unwrap();

        let mut prof = Profiler::new(&prog);
        let o = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run_observed(1_000, &mut prof)
            .unwrap();
        assert_eq!(o.stats.squashed, 2);
        prof.reconcile(&o.stats).expect("books balance");
        let funcs: HashMap<&str, &FuncProfile> = prof.hot_functions().into_iter().collect();
        assert_eq!(funcs["main"].squashes, 2);
        assert_eq!(funcs["main"].squash_cycles, 2);
    }

    /// A program with no symbols at all still profiles (into `<unknown>`).
    #[test]
    fn unnamed_code_goes_to_unknown() {
        let mut asm = Asm::new();
        let e = asm.new_label();
        asm.bind(e);
        asm.set_entry(e);
        asm.li(Reg::A0, 3);
        asm.halt(Reg::A0);
        let prog = asm.finish().unwrap();
        let mut prof = Profiler::new(&prog);
        let o = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run_observed(1_000, &mut prof)
            .unwrap();
        prof.reconcile(&o.stats).expect("books balance");
        let funcs = prof.hot_functions();
        assert_eq!(funcs.len(), 1);
        assert_eq!(funcs[0].0, "<unknown>");
        assert_eq!(funcs[0].1.cycles, o.stats.cycles);
    }
}
