//! A reference executor: the trace oracle's second opinion.
//!
//! [`RefCpu`] is a deliberately naive sequential interpreter for the same
//! instruction set as [`crate::Cpu`]. It shares the decoded [`Insn`]
//! representation and the pure operand helpers ([`Cond::eval`],
//! [`TagField::extract`], [`IntTest::is_int`], [`FpOp::apply`]) but **none** of
//! the pipelined simulator's fetch-execute machinery: no cycle accounting, no
//! statistics, no load-delay enforcement, and delay slots handled by a
//! three-field resume bookkeeping instead of the `Cpu` main loop's inline slot
//! execution. Where `Cpu` is written for speed and cycle attribution, `RefCpu`
//! is written to be obviously correct — which is what makes disagreement
//! between the two meaningful (see the `conformance` crate).
//!
//! [`RefCpu::step`] retires exactly one instruction per call and returns the
//! same [`Retirement`] record [`crate::Cpu::run_observed`] reports, so a
//! lockstep harness can compare the two streams with `==`. Squashed delay
//! slots retire nothing (on either executor) and are skipped silently here.
//!
//! For harness self-tests, [`RefCpu::inject_fault`] plants a deliberate
//! semantics bug ([`Fault`]) so a conformance suite can prove it would notice
//! one.

use crate::cpu::SimError;
use crate::hw::{HwConfig, ParallelCheck};
use crate::insn::{Insn, WriteKind};
use crate::mem::Mem;
use crate::program::Program;
use crate::reg::Reg;
use crate::trace::{MemOp, Retirement};

/// A deliberately injected semantics bug, for harness self-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The `nth` retired `add` (1-based) computes `rs + rt + 1`.
    AddOffByOne {
        /// Which `add` to corrupt.
        nth: u64,
    },
    /// The `nth` retired conditional branch (1-based) goes the wrong way.
    BranchInvert {
        /// Which conditional branch to corrupt.
        nth: u64,
    },
}

/// Pending delay-slot work after a retired control transfer.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    /// Next slot instruction index to execute.
    next: usize,
    /// Last slot instruction index.
    end: usize,
    /// Where control goes once the slots are done.
    resume: usize,
}

/// The reference executor. See the [module docs](self).
#[derive(Debug)]
pub struct RefCpu<'p> {
    prog: &'p Program,
    hw: HwConfig,
    regs: [u32; 32],
    mem: Mem,
    pc: usize,
    slots: Option<SlotState>,
    /// Delay slots the last retired branch squashed, as `(first slot pc,
    /// count)` — consumed by [`RefCpu::take_squashed`] so a driver can mirror
    /// the pipelined executor's squash events and cycle accounting.
    squashed: Option<(usize, usize)>,
    output: String,
    halt_code: Option<i32>,
    fault: Option<Fault>,
    adds_retired: u64,
    branches_retired: u64,
}

impl<'p> RefCpu<'p> {
    /// Build a reference executor for `prog`, mirroring [`crate::Cpu::new`].
    ///
    /// # Panics
    ///
    /// If `prog.annots` is not parallel to `prog.insns`, as for
    /// [`crate::Cpu::new`].
    pub fn new(prog: &'p Program, hw: HwConfig, mem_bytes: usize) -> Self {
        assert_eq!(
            prog.annots.len(),
            prog.insns.len(),
            "program annots must parallel insns (one Annot per instruction)"
        );
        let mut mem = Mem::new(mem_bytes);
        for &(addr, word) in &prog.data {
            assert!(
                mem.store(addr, word),
                "data image outside memory: {addr:#x}"
            );
        }
        RefCpu {
            prog,
            hw,
            regs: [0; 32],
            mem,
            pc: prog.entry,
            slots: None,
            squashed: None,
            output: String::new(),
            halt_code: None,
            fault: None,
            adds_retired: 0,
            branches_retired: 0,
        }
    }

    /// Plant a deliberate semantics bug (for harness self-tests).
    pub fn inject_fault(&mut self, fault: Fault) {
        self.fault = Some(fault);
    }

    /// Read a register (r0 reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::Zero {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::Zero {
            self.regs[r.index()] = v;
        }
    }

    /// The register file, for final-state comparison.
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// The data memory, for final-state comparison.
    pub fn mem(&self) -> &Mem {
        &self.mem
    }

    /// Everything written so far with [`Insn::Write`].
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Take the output buffer, leaving it empty (for building an
    /// [`crate::Outcome`] once the program has halted).
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// The `halt` exit code, once the program has halted.
    pub fn halt_code(&self) -> Option<i32> {
        self.halt_code
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// The hardware configuration this executor was built with.
    pub fn hw_config(&self) -> HwConfig {
        self.hw
    }

    /// Whether the next [`step`](RefCpu::step) retires a delay-slot
    /// instruction of an earlier control transfer (the pipelined executor
    /// never checks its cycle budget in that window; a driver rebuilding cycle
    /// accounting wants to match).
    pub fn in_delay_slot(&self) -> bool {
        self.slots.is_some()
    }

    /// The delay slots the most recently retired branch squashed, as
    /// `(first slot pc, count)`, consumed on read. `None` when the last
    /// retirement squashed nothing or the squashes were already taken.
    ///
    /// Squashed slots retire nothing, so they are invisible in the
    /// [`Retirement`] stream; this is the side channel that lets a driver
    /// reproduce the pipelined executor's per-slot squash events.
    pub fn take_squashed(&mut self) -> Option<(usize, usize)> {
        self.squashed.take()
    }

    fn fetch(&self, pc: usize) -> Result<Insn, SimError> {
        match self.prog.insns.get(pc) {
            Some(i) => Ok(*i),
            None => Err(SimError::PcOutOfRange { pc }),
        }
    }

    fn ea(&self, base: Reg, disp: i32) -> u32 {
        (self.reg(base).wrapping_add(disp as u32)) & self.hw.address_mask()
    }

    fn ea_untagged(&self, word: u32, field: crate::insn::TagField, disp: i32) -> u32 {
        let untagged = word & !(field.mask << field.shift);
        untagged.wrapping_add(disp as u32) & self.hw.address_mask()
    }

    fn load(&self, addr: u32, pc: usize) -> Result<u32, SimError> {
        self.mem.load(addr).ok_or(SimError::MemFault { addr, pc })
    }

    fn store(&mut self, addr: u32, v: u32, pc: usize) -> Result<(), SimError> {
        if self.mem.store(addr, v) {
            Ok(())
        } else {
            Err(SimError::MemFault { addr, pc })
        }
    }

    /// Retire one instruction; `Ok(None)` once the program has halted.
    ///
    /// # Errors
    ///
    /// The same [`SimError`]s as [`crate::Cpu::run`] raises for the same
    /// programs, except the pipeline-only ones: `RefCpu` never reports
    /// `OutOfFuel`, `LoadDelayViolation`, or `Stopped`.
    pub fn step(&mut self) -> Result<Option<Retirement>, SimError> {
        if self.halt_code.is_some() {
            return Ok(None);
        }
        if let Some(slot) = self.slots {
            let pc = slot.next;
            let insn = self.fetch(pc)?;
            if insn.is_control() {
                return Err(SimError::ControlInSlot { pc });
            }
            if slot.next == slot.end {
                self.slots = None;
                self.pc = slot.resume;
            } else {
                self.slots = Some(SlotState {
                    next: slot.next + 1,
                    ..slot
                });
            }
            let ev = self.exec_plain(pc, insn, true)?;
            return Ok(Some(ev));
        }
        let pc = self.pc;
        let insn = self.fetch(pc)?;
        if insn.is_control() {
            let ev = self.exec_control(pc, insn)?;
            return Ok(Some(ev));
        }
        self.pc = pc + 1;
        let ev = self.exec_plain(pc, insn, false)?;
        Ok(Some(ev))
    }

    /// Execute a retired control transfer, leaving slot bookkeeping behind.
    fn exec_control(&mut self, pc: usize, insn: Insn) -> Result<Retirement, SimError> {
        let (mut taken, target, squash, nslots, link): (bool, usize, bool, usize, Option<Reg>) =
            match insn {
                Insn::Br {
                    cond,
                    rs,
                    rt,
                    target,
                    squash,
                } => {
                    let t = cond.eval(self.reg(rs), self.reg(rt));
                    (t, target as usize, squash, 2, None)
                }
                Insn::Bri {
                    cond,
                    rs,
                    imm,
                    target,
                    squash,
                } => {
                    let t = cond.eval(self.reg(rs), imm as u32);
                    (t, target as usize, squash, 2, None)
                }
                Insn::TagBr {
                    rs,
                    field,
                    value,
                    neq,
                    target,
                    squash,
                } => {
                    if !self.hw.tag_branch {
                        return Err(SimError::MissingHardware {
                            pc,
                            feature: "tag branch",
                        });
                    }
                    let eq = field.extract(self.reg(rs)) == value;
                    let t = if neq { !eq } else { eq };
                    (t, target as usize, squash, 2, None)
                }
                Insn::J(t) => (true, t as usize, false, 1, None),
                Insn::Jal(t, link) => (true, t as usize, false, 1, Some(link)),
                Insn::Jr(r) => (true, self.reg(r) as usize, false, 1, None),
                Insn::Jalr(r, link) => (true, self.reg(r) as usize, false, 1, Some(link)),
                _ => unreachable!("exec_control only sees control instructions"),
            };

        if matches!(
            insn,
            Insn::Br { .. } | Insn::Bri { .. } | Insn::TagBr { .. }
        ) {
            self.branches_retired += 1;
            if self.fault
                == Some(Fault::BranchInvert {
                    nth: self.branches_retired,
                })
            {
                taken = !taken;
            }
        }

        let fall_through = pc + 1 + nslots;
        if let Some(link) = link {
            self.set_reg(link, fall_through as u32);
        }
        let resume = if taken { target } else { fall_through };
        if !taken && squash {
            // Squashed slots execute nothing and retire nothing.
            self.squashed = Some((pc + 1, nslots));
            self.pc = resume;
        } else {
            self.slots = Some(SlotState {
                next: pc + 1,
                end: pc + nslots,
                resume,
            });
        }
        Ok(Retirement {
            pc,
            insn,
            write: insn.def().map(|r| (r, self.reg(r))),
            mem: None,
            trap: None,
        })
    }

    /// Execute a retired non-control instruction. `in_slot` forbids traps, as
    /// the pipeline does.
    fn exec_plain(&mut self, pc: usize, insn: Insn, in_slot: bool) -> Result<Retirement, SimError> {
        let mut memop: Option<MemOp> = None;
        let mut trap: Option<usize> = None;
        match insn {
            Insn::Add(d, a, b) => {
                self.adds_retired += 1;
                let mut v = self.reg(a).wrapping_add(self.reg(b));
                if self.fault
                    == Some(Fault::AddOffByOne {
                        nth: self.adds_retired,
                    })
                {
                    v = v.wrapping_add(1);
                }
                self.set_reg(d, v);
            }
            Insn::Sub(d, a, b) => {
                let v = self.reg(a).wrapping_sub(self.reg(b));
                self.set_reg(d, v);
            }
            Insn::And(d, a, b) => {
                let v = self.reg(a) & self.reg(b);
                self.set_reg(d, v);
            }
            Insn::Or(d, a, b) => {
                let v = self.reg(a) | self.reg(b);
                self.set_reg(d, v);
            }
            Insn::Xor(d, a, b) => {
                let v = self.reg(a) ^ self.reg(b);
                self.set_reg(d, v);
            }
            Insn::Slt(d, a, b) => {
                let v = ((self.reg(a) as i32) < (self.reg(b) as i32)) as u32;
                self.set_reg(d, v);
            }
            Insn::Addi(d, a, i) => {
                let v = self.reg(a).wrapping_add(i as u32);
                self.set_reg(d, v);
            }
            Insn::Andi(d, a, i) => {
                let v = self.reg(a) & i;
                self.set_reg(d, v);
            }
            Insn::Ori(d, a, i) => {
                let v = self.reg(a) | i;
                self.set_reg(d, v);
            }
            Insn::Xori(d, a, i) => {
                let v = self.reg(a) ^ i;
                self.set_reg(d, v);
            }
            Insn::Sll(d, a, s) => {
                let v = self.reg(a) << (s & 31);
                self.set_reg(d, v);
            }
            Insn::Srl(d, a, s) => {
                let v = self.reg(a) >> (s & 31);
                self.set_reg(d, v);
            }
            Insn::Sra(d, a, s) => {
                let v = ((self.reg(a) as i32) >> (s & 31)) as u32;
                self.set_reg(d, v);
            }
            Insn::Li(d, i) => self.set_reg(d, i as u32),
            Insn::Mov(d, a) => {
                let v = self.reg(a);
                self.set_reg(d, v);
            }
            Insn::Fop(op, d, a, b) => {
                let v = op.apply(self.reg(a), self.reg(b));
                self.set_reg(d, v);
            }
            Insn::Mul(d, a, b) => {
                let v = (self.reg(a) as i32).wrapping_mul(self.reg(b) as i32);
                self.set_reg(d, v as u32);
            }
            Insn::Div(d, a, b) => {
                let bb = self.reg(b) as i32;
                let v = if bb == 0 {
                    0
                } else {
                    (self.reg(a) as i32).wrapping_div(bb)
                };
                self.set_reg(d, v as u32);
            }
            Insn::Rem(d, a, b) => {
                let bb = self.reg(b) as i32;
                let v = if bb == 0 {
                    0
                } else {
                    (self.reg(a) as i32).wrapping_rem(bb)
                };
                self.set_reg(d, v as u32);
            }
            Insn::Ld(d, base, disp) => {
                let addr = self.ea(base, disp);
                let v = self.load(addr, pc)?;
                memop = Some(MemOp {
                    addr,
                    value: v,
                    store: false,
                });
                self.set_reg(d, v);
            }
            Insn::St { src, base, disp } => {
                let addr = self.ea(base, disp);
                let v = self.reg(src);
                self.store(addr, v, pc)?;
                memop = Some(MemOp {
                    addr,
                    value: v,
                    store: true,
                });
            }
            Insn::LdChk {
                rd,
                base,
                disp,
                field,
                expect,
                on_fail,
            } => {
                if self.hw.parallel_check == ParallelCheck::None {
                    return Err(SimError::MissingHardware {
                        pc,
                        feature: "parallel tag check",
                    });
                }
                let word = self.reg(base);
                if field.extract(word) != expect {
                    if in_slot {
                        return Err(SimError::ControlInSlot { pc });
                    }
                    trap = Some(on_fail as usize);
                    self.pc = on_fail as usize;
                } else {
                    let addr = self.ea_untagged(word, field, disp);
                    let v = self.load(addr, pc)?;
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: false,
                    });
                    self.set_reg(rd, v);
                }
            }
            Insn::StChk {
                src,
                base,
                disp,
                field,
                expect,
                on_fail,
            } => {
                if self.hw.parallel_check == ParallelCheck::None {
                    return Err(SimError::MissingHardware {
                        pc,
                        feature: "parallel tag check",
                    });
                }
                let word = self.reg(base);
                if field.extract(word) != expect {
                    if in_slot {
                        return Err(SimError::ControlInSlot { pc });
                    }
                    trap = Some(on_fail as usize);
                    self.pc = on_fail as usize;
                } else {
                    let addr = self.ea_untagged(word, field, disp);
                    let v = self.reg(src);
                    self.store(addr, v, pc)?;
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: true,
                    });
                }
            }
            Insn::AddG {
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            }
            | Insn::SubG {
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            } => {
                if !self.hw.generic_arith {
                    return Err(SimError::MissingHardware {
                        pc,
                        feature: "generic arithmetic",
                    });
                }
                let a = self.reg(rs);
                let b = self.reg(rt);
                let result = if matches!(insn, Insn::SubG { .. }) {
                    (a as i32).checked_sub(b as i32)
                } else {
                    (a as i32).checked_add(b as i32)
                };
                let ok = int_test.is_int(a)
                    && int_test.is_int(b)
                    && result.map(|r| int_test.is_int(r as u32)).unwrap_or(false);
                if !ok {
                    if in_slot {
                        return Err(SimError::ControlInSlot { pc });
                    }
                    trap = Some(on_fail as usize);
                    self.pc = on_fail as usize;
                } else {
                    self.set_reg(rd, result.expect("checked above") as u32);
                }
            }
            Insn::Nop => {}
            Insn::Write(r, kind) => {
                let v = self.reg(r);
                match kind {
                    WriteKind::Char => self.output.push((v & 0xFF) as u8 as char),
                    WriteKind::Int => {
                        use std::fmt::Write as _;
                        let _ = write!(self.output, "{}", v as i32);
                    }
                }
            }
            Insn::Halt(r) => {
                self.halt_code = Some(self.reg(r) as i32);
            }
            Insn::Br { .. }
            | Insn::Bri { .. }
            | Insn::TagBr { .. }
            | Insn::J(_)
            | Insn::Jal(..)
            | Insn::Jr(_)
            | Insn::Jalr(..) => unreachable!("control handled by exec_control"),
        }
        Ok(Retirement {
            pc,
            insn,
            write: if trap.is_some() {
                None
            } else {
                insn.def().map(|r| (r, self.reg(r)))
            },
            mem: memop,
            trap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::cpu::Cpu;
    use crate::exec::Executor;
    use crate::insn::Cond;
    use crate::trace::{Observer, TraceBuffer};

    /// Drive the reference executor to `halt`, collecting its retirements.
    fn ref_trace(prog: &Program, hw: HwConfig) -> (Vec<Retirement>, i32, String) {
        let mut r = RefCpu::new(prog, hw, 1 << 16);
        let mut evs = Vec::new();
        for _ in 0..100_000 {
            match r.step().expect("ref executes") {
                Some(ev) => evs.push(ev),
                None => return (evs, r.halt_code().unwrap(), r.output().to_string()),
            }
        }
        panic!("reference executor did not halt");
    }

    fn both(prog: &Program, hw: HwConfig) -> (Vec<Retirement>, Vec<Retirement>) {
        let mut buf = TraceBuffer::default();
        let mut cpu = Cpu::new(prog, hw, 1 << 16);
        let out = cpu.run_observed(100_000, &mut buf).expect("cpu runs");
        let (evs, code, output) = ref_trace(prog, hw);
        assert_eq!(out.halt_code, code);
        assert_eq!(out.output, output);
        (buf.records, evs)
    }

    #[test]
    fn straight_line_traces_match() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::A0, 40);
        asm.li(Reg::A1, 2);
        asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::A1));
        asm.st(Reg::A0, Reg::Sp, 8);
        asm.ld(Reg::A2, Reg::Sp, 8);
        asm.nop();
        asm.halt(Reg::A2);
        let prog = asm.finish().unwrap();
        let (cpu_t, ref_t) = both(&prog, HwConfig::plain());
        assert_eq!(cpu_t, ref_t);
        assert_eq!(cpu_t.len(), 7);
        // The load's record carries the memory op and the loaded value.
        let ld = &cpu_t[4];
        assert_eq!(
            ld.mem,
            Some(MemOp {
                addr: 8,
                value: 42,
                store: false
            })
        );
        assert_eq!(ld.write, Some((Reg::A2, 42)));
    }

    #[test]
    fn branch_slots_and_squashes_match() {
        // Taken and untaken squashing branches, call/return: the traces must
        // agree event for event even though the executors sequence slots
        // completely differently.
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let f = asm.new_label();
        let out = asm.new_label();
        asm.li(Reg::A0, 3);
        asm.jal(f, Reg::Link);
        asm.nop();
        asm.br_raw(Cond::Eq, Reg::A0, Reg::Zero, out, true); // not taken: squash
        asm.li(Reg::A1, 9); // squashed
        asm.li(Reg::A2, 9); // squashed
        asm.br_raw(Cond::Gt, Reg::A0, Reg::Zero, out, true); // taken
        asm.li(Reg::A3, 1); // slot 1 executes
        asm.nop(); // slot 2
        asm.bind(out);
        asm.halt(Reg::A3);
        asm.bind(f);
        asm.jr(Reg::Link);
        let prog = asm.finish().unwrap();
        let (cpu_t, ref_t) = both(&prog, HwConfig::plain());
        assert_eq!(cpu_t, ref_t);
    }

    #[test]
    fn injected_add_fault_diverges() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::A0, 1);
        asm.emit(Insn::Add(Reg::A1, Reg::A0, Reg::A0));
        asm.emit(Insn::Add(Reg::A2, Reg::A1, Reg::A0));
        asm.halt(Reg::A2);
        let prog = asm.finish().unwrap();
        let (_, clean) = both(&prog, HwConfig::plain());
        let mut r = RefCpu::new(&prog, HwConfig::plain(), 1 << 16);
        r.inject_fault(Fault::AddOffByOne { nth: 2 });
        let mut evs = Vec::new();
        while let Some(ev) = r.step().unwrap() {
            evs.push(ev);
        }
        assert_ne!(clean, evs, "the fault must corrupt the trace");
        assert_eq!(clean[0..2], evs[0..2], "first add is untouched");
        assert_eq!(evs[2].write, Some((Reg::A2, 4)), "second add off by one");
        assert_eq!(r.halt_code(), Some(4));
    }

    #[test]
    fn injected_branch_fault_diverges() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let t = asm.new_label();
        asm.li(Reg::A0, 1);
        asm.br_raw(Cond::Eq, Reg::A0, Reg::Zero, t, true); // not taken
        asm.nop();
        asm.nop();
        asm.halt(Reg::A0);
        asm.bind(t);
        asm.halt(Reg::Zero);
        let prog = asm.finish().unwrap();
        let mut r = RefCpu::new(&prog, HwConfig::plain(), 1 << 16);
        r.inject_fault(Fault::BranchInvert { nth: 1 });
        let mut evs = Vec::new();
        while let Some(ev) = r.step().unwrap() {
            evs.push(ev);
        }
        // Inverted to taken: the squashing branch now executes its slots and
        // lands on the other halt.
        assert_eq!(r.halt_code(), Some(0));
        assert_eq!(evs.len(), 5, "branch + 2 slots + halt after li");
    }

    #[test]
    fn checked_load_trap_matches_cpu() {
        use crate::insn::TagField;
        let field = TagField {
            shift: 27,
            mask: 0x1F,
        };
        let hw = HwConfig {
            parallel_check: ParallelCheck::All,
            ..HwConfig::plain()
        };
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let fail = asm.new_label();
        asm.li(Reg::T0, ((3u32 << 27) | 0x80) as i32); // wrong tag: traps
        asm.emit(Insn::LdChk {
            rd: Reg::A0,
            base: Reg::T0,
            disp: 0,
            field,
            expect: 1,
            on_fail: fail.0,
        });
        asm.halt(Reg::Zero);
        asm.bind(fail);
        asm.li(Reg::A0, -1);
        asm.halt(Reg::A0);
        let prog = asm.finish().unwrap();
        let (cpu_t, ref_t) = both(&prog, hw);
        assert_eq!(cpu_t, ref_t);
        assert!(cpu_t[1].trap.is_some(), "second record is the trap");
        assert_eq!(cpu_t[1].write, None);
    }

    #[test]
    fn observer_break_stops_cpu() {
        struct StopAfter(usize);
        impl Observer for StopAfter {
            fn retire(
                &mut self,
                _ev: &Retirement,
                _annot: crate::annot::Annot,
                _cycle: u64,
            ) -> std::ops::ControlFlow<()> {
                if self.0 == 0 {
                    return std::ops::ControlFlow::Break(());
                }
                self.0 -= 1;
                std::ops::ControlFlow::Continue(())
            }
        }
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::A0, 1);
        asm.li(Reg::A1, 2);
        asm.halt(Reg::A0);
        let prog = asm.finish().unwrap();
        let err = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run_observed(1000, &mut StopAfter(1))
            .unwrap_err();
        assert!(matches!(err, SimError::Stopped { .. }));
    }
}
