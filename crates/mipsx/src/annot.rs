//! Per-instruction annotations: which tag operation a cycle belongs to.
//!
//! The paper's figures decompose execution time by tag operation (Figure 1), by
//! checking category (Table 1), and by whether an operation exists only because
//! run-time checking is enabled (Figure 1's dark histogram). The code generator
//! tags every instruction it emits with an [`Annot`]; the simulator accumulates
//! cycles per annotation.

/// Which primitive tag operation an instruction implements (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagOpKind {
    /// Tag insertion: constructing a tagged item.
    Insert,
    /// Tag removal: masking the tag to use the datum/pointer.
    Remove,
    /// Tag extraction: isolating the tag for comparison.
    Extract,
    /// Tag checking: the compare-and-branch after an extraction (plus its delay
    /// slots, which the paper charges to checking).
    Check,
    /// Generic-arithmetic support beyond the plain check: type dispatch, the
    /// out-of-line general routine, overflow handling.
    Generic,
}

/// All tag-operation kinds, in report order.
pub const ALL_TAG_OPS: [TagOpKind; 5] = [
    TagOpKind::Insert,
    TagOpKind::Remove,
    TagOpKind::Extract,
    TagOpKind::Check,
    TagOpKind::Generic,
];

/// The run-time-checking category an instruction belongs to (Table 1's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckCat {
    /// Not part of run-time checking.
    NotChecking,
    /// Checking on arithmetic (operand type + overflow).
    Arith,
    /// Checking on vector accesses (type, index type, bounds).
    Vector,
    /// Checking on list (car/cdr/rplaca/rplacd) and symbol operations.
    List,
}

/// All checking categories, in report order.
pub const ALL_CHECK_CATS: [CheckCat; 4] = [
    CheckCat::NotChecking,
    CheckCat::Arith,
    CheckCat::Vector,
    CheckCat::List,
];

/// Whether an instruction is part of the base program or was added by enabling
/// full run-time checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Present regardless of the checking mode (source-level tests, data access).
    Base,
    /// Added by full run-time checking (would be absent with checking off).
    Checking,
}

/// The annotation attached to every emitted instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Annot {
    /// Tag operation this instruction implements, if any.
    pub tag_op: Option<TagOpKind>,
    /// Checking category.
    pub cat: CheckCat,
    /// Base program or checking-added.
    pub prov: Provenance,
}

impl Annot {
    /// An unannotated (plain computation) instruction.
    pub const NONE: Annot = Annot {
        tag_op: None,
        cat: CheckCat::NotChecking,
        prov: Provenance::Base,
    };

    /// A base-program tag operation.
    pub fn base(op: TagOpKind) -> Annot {
        Annot {
            tag_op: Some(op),
            cat: CheckCat::NotChecking,
            prov: Provenance::Base,
        }
    }

    /// A tag operation that exists because run-time checking is on, in category
    /// `cat`.
    pub fn checking(op: TagOpKind, cat: CheckCat) -> Annot {
        Annot {
            tag_op: Some(op),
            cat,
            prov: Provenance::Checking,
        }
    }
}

impl Default for Annot {
    fn default() -> Self {
        Annot::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Annot::default(), Annot::NONE);
        let a = Annot::base(TagOpKind::Remove);
        assert_eq!(a.tag_op, Some(TagOpKind::Remove));
        assert_eq!(a.prov, Provenance::Base);
        let c = Annot::checking(TagOpKind::Check, CheckCat::List);
        assert_eq!(c.prov, Provenance::Checking);
        assert_eq!(c.cat, CheckCat::List);
    }
}
