//! Hardware-support configuration (the rows of the paper's Table 2).

/// Which memory accesses get parallel tag checking (paper §6.2.1, Table 2 rows 5–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelCheck {
    /// No checked loads/stores.
    #[default]
    None,
    /// Checked accesses for list cells only (row 5; also the SPUR configuration).
    Lists,
    /// Checked accesses for all data types — lists, vectors, structures (row 6).
    All,
}

/// The tag-handling hardware present in the simulated processor.
///
/// [`HwConfig::plain`] is a stock RISC (the paper's baseline). The other
/// constructors correspond to Table 2's rows; arbitrary combinations can be built
/// with struct update syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HwConfig {
    /// Number of *high* address bits the memory system ignores (row 1's hardware
    /// variant: "special hardware that would blank out the 5 most significant bits
    /// of each address"). 0 disables.
    pub drop_high_address_bits: u32,
    /// Whether the [`crate::Insn::TagBr`] conditional branch exists (row 2).
    pub tag_branch: bool,
    /// Parallel tag checking on memory accesses (rows 5–6).
    pub parallel_check: ParallelCheck,
    /// Whether [`crate::Insn::AddG`]/[`crate::Insn::SubG`] exist (row 4).
    pub generic_arith: bool,
    /// Cycles charged when a checked instruction traps to its software path.
    pub trap_penalty: u32,
    /// Cycles for a multiply (MIPS-X used multiply-step sequences; we charge a
    /// fixed cost).
    pub mul_cycles: u32,
    /// Cycles for a divide or remainder.
    pub div_cycles: u32,
    /// Cycles for a floating-point operation.
    pub fp_cycles: u32,
}

impl HwConfig {
    /// A stock RISC with no tag support — the paper's baseline processor.
    pub fn plain() -> Self {
        HwConfig {
            drop_high_address_bits: 0,
            tag_branch: false,
            parallel_check: ParallelCheck::None,
            generic_arith: false,
            trap_penalty: 20,
            mul_cycles: 8,
            div_cycles: 16,
            fp_cycles: 4,
        }
    }

    /// Row 1 (hardware flavour): loads/stores ignore the top `bits` address bits.
    pub fn with_address_drop(bits: u32) -> Self {
        HwConfig {
            drop_high_address_bits: bits,
            ..Self::plain()
        }
    }

    /// Row 2: the tag-field conditional branch.
    pub fn with_tag_branch() -> Self {
        HwConfig {
            tag_branch: true,
            ..Self::plain()
        }
    }

    /// Row 4: trap-based generic arithmetic.
    pub fn with_generic_arith() -> Self {
        HwConfig {
            generic_arith: true,
            ..Self::plain()
        }
    }

    /// Rows 5/6: parallel checked memory access.
    pub fn with_parallel_check(which: ParallelCheck) -> Self {
        HwConfig {
            parallel_check: which,
            ..Self::plain()
        }
    }

    /// Row 7: the maximum support addable to MIPS-X without reorganising it —
    /// address dropping, tag branch, generic arithmetic, and checked accesses for
    /// all types.
    pub fn maximal(drop_bits: u32) -> Self {
        HwConfig {
            drop_high_address_bits: drop_bits,
            tag_branch: true,
            parallel_check: ParallelCheck::All,
            generic_arith: true,
            ..Self::plain()
        }
    }

    /// The SPUR-like configuration of §7: row 7 but with checked accesses for
    /// lists only.
    pub fn spur(drop_bits: u32) -> Self {
        HwConfig {
            parallel_check: ParallelCheck::Lists,
            ..Self::maximal(drop_bits)
        }
    }

    /// The mask applied to every effective data address: the top
    /// [`drop_high_address_bits`](Self::drop_high_address_bits) are cleared, and the
    /// bottom two bits are always dropped because memory is word-aligned (as on
    /// MIPS-X, paper §5.2).
    pub fn address_mask(&self) -> u32 {
        let high = if self.drop_high_address_bits == 0 {
            u32::MAX
        } else {
            u32::MAX >> self.drop_high_address_bits
        };
        high & !0b11
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        Self::plain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_has_no_support() {
        let hw = HwConfig::plain();
        assert_eq!(hw.drop_high_address_bits, 0);
        assert!(!hw.tag_branch);
        assert_eq!(hw.parallel_check, ParallelCheck::None);
        assert!(!hw.generic_arith);
    }

    #[test]
    fn address_mask_drops_alignment_and_high_bits() {
        assert_eq!(HwConfig::plain().address_mask(), !0b11);
        assert_eq!(HwConfig::with_address_drop(5).address_mask(), 0x07FF_FFFC);
    }

    #[test]
    fn maximal_enables_everything() {
        let hw = HwConfig::maximal(5);
        assert!(hw.tag_branch && hw.generic_arith);
        assert_eq!(hw.parallel_check, ParallelCheck::All);
        assert_eq!(hw.drop_high_address_bits, 5);
        assert_eq!(HwConfig::spur(5).parallel_check, ParallelCheck::Lists);
    }
}
