//! The assembler: emit instructions against symbolic labels, then resolve.

use std::collections::HashMap;
use std::fmt;

use crate::annot::Annot;
use crate::insn::{Cond, Insn, WriteKind};
use crate::program::Program;
use crate::reg::Reg;

/// A forward-referencable code position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// The raw label id, as stored in unresolved instruction `target` fields.
    /// Needed by code generators that build control-flow instructions directly
    /// (e.g. [`crate::Insn::TagBr`]) instead of going through the `Asm` helpers.
    pub fn id(self) -> u32 {
        self.0
    }
}

/// Assembly errors reported by [`Asm::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(u32),
    /// A label was bound twice. ([`Asm::bind`] panics on this instead — it is
    /// always a code-generator bug — but the variant is kept so hosts that
    /// assemble untrusted streams can map the panic to an error.)
    Rebound(u32),
    /// The entry label was never set or bound.
    NoEntry,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{l} referenced but never bound"),
            AsmError::Rebound(l) => write!(f, "label L{l} bound twice"),
            AsmError::NoEntry => write!(f, "entry point not set"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An instruction-stream builder with labels, per-instruction annotations, and an
/// ambient annotation for tag-operation attribution.
///
/// The code generator sets an ambient [`Annot`] with [`Asm::set_annot`] before
/// emitting a tag-operation sequence and restores it afterwards; every emitted
/// instruction picks up the ambient annotation unless overridden.
#[derive(Debug, Default)]
pub struct Asm {
    pub(crate) items: Vec<(Insn, Annot)>,
    pub(crate) label_pos: Vec<Option<usize>>,
    ambient: Annot,
    entry: Option<Label>,
    symbols: HashMap<String, Label>,
    data: Vec<(u32, u32)>,
}

impl Asm {
    /// A fresh, empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an unbound label.
    pub fn new_label(&mut self) -> Label {
        let id = self.label_pos.len() as u32;
        self.label_pos.push(None);
        Label(id)
    }

    /// Bind `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a code-generation bug).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.label_pos[label.0 as usize];
        assert!(slot.is_none(), "label L{} bound twice", label.0);
        *slot = Some(self.items.len());
    }

    /// Create and bind a label here, recording `name` in the program's symbols.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.new_label();
        self.bind(l);
        self.symbols.insert(name.to_string(), l);
        l
    }

    /// Associate `name` with an existing label (bound or not).
    pub fn name_label(&mut self, name: &str, label: Label) {
        self.symbols.insert(name.to_string(), label);
    }

    /// Set the ambient annotation; returns the previous one for restoring.
    pub fn set_annot(&mut self, annot: Annot) -> Annot {
        std::mem::replace(&mut self.ambient, annot)
    }

    /// The current ambient annotation.
    pub fn annot(&self) -> Annot {
        self.ambient
    }

    /// Run `f` with ambient annotation `annot`, then restore the previous one.
    pub fn with_annot<R>(&mut self, annot: Annot, f: impl FnOnce(&mut Asm) -> R) -> R {
        let prev = self.set_annot(annot);
        let r = f(self);
        self.set_annot(prev);
        r
    }

    /// Emit one instruction with the ambient annotation.
    pub fn emit(&mut self, insn: Insn) {
        let a = self.ambient;
        self.items.push((insn, a));
    }

    /// Emit one instruction with an explicit annotation.
    pub fn emit_annot(&mut self, insn: Insn, annot: Annot) {
        self.items.push((insn, annot));
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    // --- convenience emitters -------------------------------------------------

    /// `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i32) {
        self.emit(Insn::Li(rd, imm));
    }

    /// Register move.
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Insn::Mov(rd, rs));
    }

    /// `ld rd, disp(base)`.
    pub fn ld(&mut self, rd: Reg, base: Reg, disp: i32) {
        self.emit(Insn::Ld(rd, base, disp));
    }

    /// `st src, disp(base)`.
    pub fn st(&mut self, src: Reg, base: Reg, disp: i32) {
        self.emit(Insn::St { src, base, disp });
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Insn::Nop);
    }

    /// Compare-and-branch **with two explicit no-op delay slots** (which the
    /// scheduler may later fill). Non-squashing.
    pub fn br(&mut self, cond: Cond, rs: Reg, rt: Reg, target: Label) {
        self.emit(Insn::Br {
            cond,
            rs,
            rt,
            target: target.0,
            squash: false,
        });
        self.nop();
        self.nop();
    }

    /// Compare-and-branch with **no** delay-slot padding; the caller must place
    /// exactly two following instructions that are safe in the slots.
    pub fn br_raw(&mut self, cond: Cond, rs: Reg, rt: Reg, target: Label, squash: bool) {
        self.emit(Insn::Br {
            cond,
            rs,
            rt,
            target: target.0,
            squash,
        });
    }

    /// Compare-with-immediate branch with two explicit no-op delay slots.
    pub fn bri(&mut self, cond: Cond, rs: Reg, imm: i32, target: Label) {
        self.emit(Insn::Bri {
            cond,
            rs,
            imm,
            target: target.0,
            squash: false,
        });
        self.nop();
        self.nop();
    }

    /// `beq rs, rt, target` with padded slots.
    pub fn beq(&mut self, rs: Reg, rt: Reg, target: Label) {
        self.br(Cond::Eq, rs, rt, target);
    }

    /// `bne rs, rt, target` with padded slots.
    pub fn bne(&mut self, rs: Reg, rt: Reg, target: Label) {
        self.br(Cond::Ne, rs, rt, target);
    }

    /// Unconditional jump with one padded delay slot.
    pub fn j(&mut self, target: Label) {
        self.emit(Insn::J(target.0));
        self.nop();
    }

    /// Call: jump-and-link with one padded delay slot.
    pub fn jal(&mut self, target: Label, link: Reg) {
        self.emit(Insn::Jal(target.0, link));
        self.nop();
    }

    /// Return / indirect jump with one padded delay slot.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Insn::Jr(rs));
        self.nop();
    }

    /// Indirect call with one padded delay slot.
    pub fn jalr(&mut self, rs: Reg, link: Reg) {
        self.emit(Insn::Jalr(rs, link));
        self.nop();
    }

    /// Halt with the value of `rs` as exit code.
    pub fn halt(&mut self, rs: Reg) {
        self.emit(Insn::Halt(rs));
    }

    /// Emit an output instruction.
    pub fn write(&mut self, rs: Reg, kind: WriteKind) {
        self.emit(Insn::Write(rs, kind));
    }

    // --- data and entry -------------------------------------------------------

    /// Initialise the data word at byte address `addr`.
    pub fn data(&mut self, addr: u32, word: u32) {
        self.data.push((addr, word));
    }

    /// Initialise consecutive words starting at byte address `addr`.
    pub fn data_block(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.data.push((addr + 4 * i as u32, *w));
        }
    }

    /// Set the entry point.
    pub fn set_entry(&mut self, label: Label) {
        self.entry = Some(label);
    }

    /// Resolve labels and produce the executable [`Program`].
    ///
    /// # Errors
    ///
    /// [`AsmError::UnboundLabel`] if any referenced label was never bound;
    /// [`AsmError::NoEntry`] if no entry point was set on a non-empty program.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        // Labels bound at the very end point one past the last instruction; allow
        // that only if nothing branches there (checked implicitly by use).
        let mut err = None;
        let label_pos = &self.label_pos;
        let resolve = |l: u32, err: &mut Option<AsmError>| -> u32 {
            match label_pos.get(l as usize).copied().flatten() {
                Some(p) => p as u32,
                None => {
                    err.get_or_insert(AsmError::UnboundLabel(l));
                    0
                }
            }
        };
        let insns: Vec<Insn> = self
            .items
            .iter()
            .map(|(i, _)| i.map_target(&mut |l| resolve(l, &mut err)))
            .collect();
        if let Some(e) = err {
            return Err(e);
        }
        let annots = self.items.iter().map(|(_, a)| *a).collect();
        let entry = match self.entry {
            Some(l) => self.label_pos[l.0 as usize].ok_or(AsmError::UnboundLabel(l.0))?,
            None if self.items.is_empty() => 0,
            None => return Err(AsmError::NoEntry),
        };
        let mut symbols = HashMap::new();
        for (name, l) in std::mem::take(&mut self.symbols) {
            if let Some(p) = self.label_pos[l.0 as usize] {
                symbols.insert(name, p);
            }
        }
        let symtab = crate::symtab::SymbolTable::build(&symbols, &insns);
        Ok(Program {
            insns,
            annots,
            entry,
            data: std::mem::take(&mut self.data),
            symbols,
            symtab,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::TagOpKind;

    #[test]
    fn forward_labels_resolve() {
        let mut asm = Asm::new();
        let start = asm.new_label();
        asm.bind(start);
        asm.set_entry(start);
        let end = asm.new_label();
        asm.beq(Reg::A0, Reg::Zero, end);
        asm.li(Reg::A0, 1);
        asm.bind(end);
        asm.halt(Reg::A0);
        let p = asm.finish().unwrap();
        match p.insns[0] {
            Insn::Br { target, .. } => assert_eq!(target, 4),
            ref other => panic!("expected branch, got {other}"),
        }
        // two padded slots follow
        assert_eq!(p.insns[1], Insn::Nop);
        assert_eq!(p.insns[2], Insn::Nop);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Asm::new();
        let start = asm.here("start");
        asm.set_entry(start);
        let nowhere = asm.new_label();
        asm.j(nowhere);
        assert!(matches!(asm.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn ambient_annotation_applies() {
        let mut asm = Asm::new();
        let start = asm.here("start");
        asm.set_entry(start);
        asm.with_annot(Annot::base(TagOpKind::Remove), |a| {
            a.emit(Insn::And(Reg::A0, Reg::A0, Reg::Mask));
        });
        asm.halt(Reg::A0);
        let p = asm.finish().unwrap();
        assert_eq!(p.annots[0].tag_op, Some(TagOpKind::Remove));
        assert_eq!(p.annots[1], Annot::NONE);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut asm = Asm::new();
        let l = asm.new_label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn no_entry_is_an_error() {
        let mut asm = Asm::new();
        asm.nop();
        assert_eq!(asm.finish().unwrap_err(), AsmError::NoEntry);
    }

    #[test]
    fn data_blocks_lay_out_consecutively() {
        let mut asm = Asm::new();
        let e = asm.here("e");
        asm.set_entry(e);
        asm.halt(Reg::Zero);
        asm.data_block(100, &[1, 2, 3]);
        let p = asm.finish().unwrap();
        assert_eq!(p.data, vec![(100, 1), (104, 2), (108, 3)]);
    }
}
