//! An assembled, label-resolved program.

use std::collections::HashMap;

use crate::annot::Annot;
use crate::insn::Insn;

/// An executable program: resolved instructions, their annotations, an entry point,
/// and an initial data image.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Instructions; the program counter indexes this vector.
    pub insns: Vec<Insn>,
    /// Parallel annotation per instruction.
    pub annots: Vec<Annot>,
    /// Entry instruction index.
    pub entry: usize,
    /// Initial data memory image: `(byte address, word)` pairs.
    pub data: Vec<(u32, u32)>,
    /// Named code positions (for debugging and tests).
    pub symbols: HashMap<String, usize>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// A human-readable listing with per-instruction tag-operation annotations
    /// (debugging and sequence-inspection aid).
    pub fn listing_annotated(&self) -> String {
        use std::fmt::Write as _;
        let mut by_index: HashMap<usize, &str> = HashMap::new();
        for (name, idx) in &self.symbols {
            by_index.insert(*idx, name);
        }
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                let _ = writeln!(out, "{name}:");
            }
            let a = self.annots.get(i).copied().unwrap_or_default();
            let tag = match a.tag_op {
                Some(op) => format!("{op:?}"),
                None => String::new(),
            };
            let cat = match a.cat {
                crate::annot::CheckCat::NotChecking => String::new(),
                c => format!("/{c:?}"),
            };
            let _ = writeln!(out, "  {i:5}  {insn:<40} {tag}{cat}");
        }
        out
    }

    /// A human-readable listing (debugging aid).
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut by_index: HashMap<usize, &str> = HashMap::new();
        for (name, idx) in &self.symbols {
            by_index.insert(*idx, name);
        }
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "  {i:5}  {insn}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn listing_shows_symbols() {
        let p = Program {
            insns: vec![Insn::Nop, Insn::Halt(Reg::Zero)],
            annots: vec![Annot::NONE; 2],
            entry: 0,
            data: vec![],
            symbols: [("main".to_string(), 0)].into_iter().collect(),
        };
        let l = p.listing();
        assert!(l.contains("main:"));
        assert!(l.contains("halt"));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
