//! An assembled, label-resolved program.

use std::collections::HashMap;

use crate::annot::Annot;
use crate::insn::Insn;
use crate::symtab::SymbolTable;

/// An executable program: resolved instructions, their annotations, an entry point,
/// and an initial data image.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Instructions; the program counter indexes this vector.
    pub insns: Vec<Insn>,
    /// Parallel annotation per instruction.
    pub annots: Vec<Annot>,
    /// Entry instruction index.
    pub entry: usize,
    /// Initial data memory image: `(byte address, word)` pairs.
    pub data: Vec<(u32, u32)>,
    /// Named code positions (for debugging and tests).
    pub symbols: HashMap<String, usize>,
    /// PC-range symbol table derived from `symbols`: function regions and
    /// static call sites, for profiling and annotated listings.
    pub symtab: SymbolTable,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// The symbol name a jump-like instruction targets, when the target is a
    /// named region entry (used to annotate listings with `-> callee`).
    fn call_target(&self, insn: &Insn) -> Option<&str> {
        let target = match insn {
            Insn::Jal(t, _) | Insn::J(t) => *t as usize,
            _ => return None,
        };
        let i = self.symtab.entry_at(target)?;
        Some(self.symtab.name(i))
    }

    /// A human-readable listing with per-instruction tag-operation annotations
    /// (debugging and sequence-inspection aid). Jumps to named entries show
    /// their symbolic target (`-> fn:append`).
    pub fn listing_annotated(&self) -> String {
        use std::fmt::Write as _;
        let mut by_index: HashMap<usize, &str> = HashMap::new();
        for (name, idx) in &self.symbols {
            by_index.insert(*idx, name);
        }
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                let _ = writeln!(out, "{name}:");
            }
            let a = self.annots.get(i).copied().unwrap_or_default();
            let tag = match a.tag_op {
                Some(op) => format!("{op:?}"),
                None => String::new(),
            };
            let cat = match a.cat {
                crate::annot::CheckCat::NotChecking => String::new(),
                c => format!("/{c:?}"),
            };
            let callee = match self.call_target(insn) {
                Some(name) => format!(" -> {name}"),
                None => String::new(),
            };
            let _ = writeln!(out, "  {i:5}  {insn:<40} {tag}{cat}{callee}");
        }
        out
    }

    /// A human-readable listing (debugging aid).
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut by_index: HashMap<usize, &str> = HashMap::new();
        for (name, idx) in &self.symbols {
            by_index.insert(*idx, name);
        }
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                let _ = writeln!(out, "{name}:");
            }
            match self.call_target(insn) {
                Some(callee) => {
                    let _ = writeln!(out, "  {i:5}  {insn:<40} ; -> {callee}");
                }
                None => {
                    let _ = writeln!(out, "  {i:5}  {insn}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn listing_shows_symbols() {
        let p = Program {
            insns: vec![Insn::Nop, Insn::Halt(Reg::Zero)],
            annots: vec![Annot::NONE; 2],
            entry: 0,
            data: vec![],
            symbols: [("main".to_string(), 0)].into_iter().collect(),
            symtab: Default::default(),
        };
        let l = p.listing();
        assert!(l.contains("main:"));
        assert!(l.contains("halt"));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn listing_shows_call_targets() {
        let symbols: HashMap<String, usize> = [("main".to_string(), 0), ("fn:f".to_string(), 3)]
            .into_iter()
            .collect();
        let insns = vec![
            Insn::Jal(3, Reg::Link),
            Insn::Nop,
            Insn::Halt(Reg::Zero),
            Insn::Jr(Reg::Link),
        ];
        let symtab = SymbolTable::build(&symbols, &insns);
        let p = Program {
            annots: vec![Annot::NONE; insns.len()],
            insns,
            entry: 0,
            data: vec![],
            symbols,
            symtab,
        };
        assert!(p.listing().contains("; -> fn:f"));
        assert!(p.listing_annotated().contains("-> fn:f"));
    }
}
