//! The execution-backend API: the [`Executor`] trait, the [`Backend`]
//! selector, and the predecoded fast interpreter ([`FastCpu`]).
//!
//! # Why a second interpreter
//!
//! The classic [`Cpu`] re-derives per-instruction facts on every step: it
//! looks up the instruction's [`Annot`], classifies it, checks hardware
//! availability, and charges statistics through three `HashMap` entry
//! operations per retirement. None of that depends on run-time state — it is
//! all a pure function of `(Program, HwConfig)`. [`DecodedProgram::decode`]
//! therefore lowers the program **once** into a dense array of micro-ops
//! ([`FastCpu`]'s internal `Op`) with everything pre-resolved:
//!
//! - hardware-feature availability: an instruction needing absent hardware is
//!   a *predecode* error ([`SimError::MissingHardware`] from `decode`), not a
//!   per-step branch;
//! - the annotation, instruction class, and statistics slots (dense array
//!   indices replacing the `HashMap` keys);
//! - the retirement cost in cycles (multiply/divide/float costs folded in);
//! - branch shapes: delay-slot counts, squash behaviour, link registers, and
//!   tag-clearing masks for checked accesses;
//! - the register-use set as a bitmask, so the load-delay check is two ANDs.
//!
//! The dispatch loop then matches on the dense micro-op enum (a jump table)
//! and pays only two counter bumps per retirement — the running cycle count
//! (needed for fuel checks and observer stamps) and a per-pc execution
//! count. Everything else in [`Stats`] is a linear function of those counts
//! and the predecoded op metadata, so it is reconstructed exactly when the
//! run completes (trap penalties, which are rare and data-dependent, are
//! accumulated directly as they happen). The [`Observer`] hook stays
//! monomorphized behind [`Observer::ENABLED`] exactly as in the classic
//! loop, so the unobserved path compiles to the plain loop.
//!
//! # Equivalence contract
//!
//! For any program that the classic interpreter runs to completion (`Ok` or
//! `Err`), [`FastCpu`] produces **byte-identical** results: the same
//! [`Outcome`] (halt code, output, and `Stats`, including every map entry),
//! the same retirement/squash event stream, and the same errors — with one
//! deliberate exception: `MissingHardware` is reported by
//! [`DecodedProgram::decode`] for the lowest-pc offending instruction even if
//! that instruction would never have executed. The `conformance` crate's
//! backend differential suite holds the two interpreters to this contract.
//!
//! [`RefCpu`] also implements [`Executor`] by driving its single-step
//! interpreter in a loop and rebuilding the statistics from the retirement
//! stream (cycle accounting is purely architectural). Two caveats, both
//! documented on [`RefCpu`]: it does not enforce the load-delay rule, and on
//! error paths the event stream may be truncated slightly differently.

use std::fmt;

use crate::annot::{Annot, CheckCat, Provenance, TagOpKind, ALL_CHECK_CATS, ALL_TAG_OPS};
use crate::cpu::{Cpu, Outcome, SimError};
use crate::hw::{HwConfig, ParallelCheck};
use crate::insn::{Cond, FpOp, Insn, IntTest, TagField, WriteKind};
use crate::mem::Mem;
use crate::program::Program;
use crate::refcpu::RefCpu;
use crate::reg::Reg;
use crate::stats::{InsnClass, Stats, ALL_CLASSES};
use crate::trace::{MemOp, NoTrace, Observer, Retirement};

/// A simulation backend: anything that can run a program to an [`Outcome`]
/// while reporting retirements to an [`Observer`].
///
/// All three interpreters ([`Cpu`], [`FastCpu`], [`RefCpu`]) implement this
/// trait, so harnesses, studies, and the profiler drive any backend through
/// one API. Construct a backend generically with [`Backend::executor`].
pub trait Executor {
    /// Run until `halt`, a simulation error, or the cycle budget is
    /// exhausted, reporting every retired instruction to `obs`.
    ///
    /// With [`NoTrace`] this monomorphizes to exactly the untraced loop.
    ///
    /// # Errors
    ///
    /// Any [`SimError`], including [`SimError::Stopped`] if the observer
    /// breaks out of the run. A normal `halt` is not an error.
    fn run_observed<O: Observer>(
        &mut self,
        max_cycles: u64,
        obs: &mut O,
    ) -> Result<Outcome, SimError>;

    /// [`run_observed`](Executor::run_observed) without an observer.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] except [`SimError::Stopped`].
    fn run(&mut self, max_cycles: u64) -> Result<Outcome, SimError> {
        self.run_observed(max_cycles, &mut NoTrace)
    }

    /// The register file (for post-run comparison).
    fn regs(&self) -> &[u32; 32];

    /// The data memory (for post-run inspection).
    fn mem(&self) -> &Mem;
}

/// Which interpreter executes a program.
///
/// All backends produce identical results by construction (the conformance
/// suite enforces it), so the choice only affects host-side speed — which is
/// why measurement cache keys and store content addresses deliberately
/// exclude it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The classic one-pass interpreter ([`Cpu`]).
    Classic,
    /// The predecoded micro-op interpreter ([`FastCpu`]) — the default.
    #[default]
    Fast,
    /// The deliberately naive reference interpreter ([`RefCpu`]), driven
    /// step-wise; slowest, but independent of the pipelined machinery.
    Ref,
}

/// All backends, in report order.
pub const ALL_BACKENDS: [Backend; 3] = [Backend::Classic, Backend::Fast, Backend::Ref];

impl Backend {
    /// The canonical lower-case name (`classic`, `fast`, `ref`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Classic => "classic",
            Backend::Fast => "fast",
            Backend::Ref => "ref",
        }
    }

    /// Parse a backend name (case-insensitive); `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.to_ascii_lowercase().as_str() {
            "classic" => Some(Backend::Classic),
            "fast" => Some(Backend::Fast),
            "ref" => Some(Backend::Ref),
            _ => None,
        }
    }

    /// Build an executor of this kind for `prog`, mirroring [`Cpu::new`].
    ///
    /// # Errors
    ///
    /// [`SimError::MissingHardware`] from predecode when the fast backend is
    /// selected and the program contains an instruction `hw` cannot execute.
    pub fn executor<'p>(
        self,
        prog: &'p Program,
        hw: HwConfig,
        mem_bytes: usize,
    ) -> Result<AnyExecutor<'p>, SimError> {
        Ok(match self {
            Backend::Classic => AnyExecutor::Classic(Cpu::new(prog, hw, mem_bytes)),
            Backend::Fast => AnyExecutor::Fast(FastCpu::new(prog, hw, mem_bytes)?),
            Backend::Ref => AnyExecutor::Ref(RefCpu::new(prog, hw, mem_bytes)),
        })
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A backend chosen at run time: the [`Executor`] trait object-ified as an
/// enum (the trait itself is not object-safe because `run_observed` is
/// generic over the observer).
#[derive(Debug)]
pub enum AnyExecutor<'p> {
    /// The classic interpreter.
    Classic(Cpu<'p>),
    /// The predecoded interpreter.
    Fast(FastCpu<'p>),
    /// The reference interpreter.
    Ref(RefCpu<'p>),
}

impl Executor for AnyExecutor<'_> {
    fn run_observed<O: Observer>(
        &mut self,
        max_cycles: u64,
        obs: &mut O,
    ) -> Result<Outcome, SimError> {
        match self {
            AnyExecutor::Classic(c) => c.run_observed(max_cycles, obs),
            AnyExecutor::Fast(c) => c.run_observed(max_cycles, obs),
            AnyExecutor::Ref(c) => c.run_observed(max_cycles, obs),
        }
    }

    fn regs(&self) -> &[u32; 32] {
        match self {
            AnyExecutor::Classic(c) => c.regs(),
            AnyExecutor::Fast(c) => c.regs(),
            AnyExecutor::Ref(c) => c.regs(),
        }
    }

    fn mem(&self) -> &Mem {
        match self {
            AnyExecutor::Classic(c) => c.mem(),
            AnyExecutor::Fast(c) => c.mem(),
            AnyExecutor::Ref(c) => c.mem(),
        }
    }
}

/// "No dense-statistics slot": this op touches no tag/category counter.
const NO_SLOT: u8 = u8::MAX;

/// Number of `(TagOpKind, Provenance)` slots.
const TAG_SLOTS: usize = ALL_TAG_OPS.len() * 2;

/// The annotation every generic-arithmetic trap is charged to (dispatch work,
/// regardless of the fast path's annotation) — mirrors the classic
/// interpreter's constant.
const GEN_TRAP_ANNOT: Annot = Annot {
    tag_op: Some(TagOpKind::Generic),
    cat: CheckCat::Arith,
    prov: Provenance::Checking,
};

fn class_slot(class: InsnClass) -> u8 {
    ALL_CLASSES
        .iter()
        .position(|c| *c == class)
        .expect("every class is in ALL_CLASSES") as u8
}

fn prov_slot(prov: Provenance) -> u8 {
    match prov {
        Provenance::Base => 0,
        Provenance::Checking => 1,
    }
}

fn tag_slot(annot: Annot) -> u8 {
    match annot.tag_op {
        None => NO_SLOT,
        Some(op) => {
            let op_idx = ALL_TAG_OPS
                .iter()
                .position(|o| *o == op)
                .expect("every tag op is in ALL_TAG_OPS") as u8;
            op_idx * 2 + prov_slot(annot.prov)
        }
    }
}

fn cat_slot(annot: Annot) -> u8 {
    if annot.prov != Provenance::Checking {
        return NO_SLOT;
    }
    ALL_CHECK_CATS
        .iter()
        .position(|c| *c == annot.cat)
        .expect("every category is in ALL_CHECK_CATS") as u8
}

/// [`Stats`] as flat arrays: the hot-loop accumulator. Converted back to the
/// `HashMap` form (inserting only the touched entries, so the result is
/// byte-identical to classic accounting) when the run finishes.
#[derive(Debug, Clone, Default)]
struct DenseStats {
    cycles: u64,
    committed: u64,
    squashed: u64,
    trap_cycles: u64,
    traps: u64,
    class_counts: [u64; ALL_CLASSES.len()],
    tag_cycles: [u64; TAG_SLOTS],
    /// Bit per tag slot: the classic accounting creates a map entry even when
    /// it adds zero cycles (a zero trap penalty), so "touched" is tracked
    /// separately from "non-zero".
    tag_touched: u16,
    cat_cycles: [u64; ALL_CHECK_CATS.len()],
    cat_touched: u8,
}

impl DenseStats {
    #[inline(always)]
    fn attribute(&mut self, tag: u8, cat: u8, cycles: u64) {
        if tag != NO_SLOT {
            self.tag_cycles[tag as usize] += cycles;
            self.tag_touched |= 1 << tag;
        }
        if cat != NO_SLOT {
            self.cat_cycles[cat as usize] += cycles;
            self.cat_touched |= 1 << cat;
        }
    }

    /// Per-retirement accounting, one call per committed op. The dispatch
    /// loop does not use this — it bumps a per-pc execution counter and
    /// reconstructs the same totals in [`DenseStats::fold_counts`] — but the
    /// equivalence test below uses it as the reference accumulator.
    #[cfg(test)]
    fn record(&mut self, class: u8, tag: u8, cat: u8, cycles: u64) {
        self.cycles += cycles;
        self.committed += 1;
        self.class_counts[class as usize] += 1;
        self.attribute(tag, cat, cycles);
    }

    #[cfg(test)]
    fn record_squashed(&mut self, tag: u8, cat: u8) {
        self.cycles += 1;
        self.squashed += 1;
        self.attribute(tag, cat, 1);
    }

    /// Fold the per-pc retirement and squash counters into the accumulator:
    /// each committed execution of an op contributes its class, its cost to
    /// its tag/category slots, and `committed`; each squashed slot
    /// contributes one cycle against the owning branch's slots. Exactly what
    /// per-retirement `Stats::record`/`record_squashed` calls would have
    /// accumulated — but the hot loop only paid one counter bump per op
    /// (trap penalties are rare and recorded directly as they happen).
    fn fold_counts(&self, decoded: &DecodedProgram, counts: &[u64], squashes: &[u64]) -> Stats {
        let mut agg = self.clone();
        for (pc, op) in decoded.ops.iter().enumerate() {
            let n = counts[pc];
            if n > 0 {
                agg.committed += n;
                agg.class_counts[op.class as usize] += n;
                agg.attribute(op.tag, op.cat, n * u64::from(op.cost));
            }
            let s = squashes[pc];
            if s > 0 {
                agg.squashed += s;
                agg.attribute(op.tag, op.cat, s);
            }
        }
        agg.to_stats()
    }

    fn record_trap(&mut self, tag: u8, cat: u8, penalty: u64) {
        self.cycles += penalty;
        self.trap_cycles += penalty;
        self.traps += 1;
        self.attribute(tag, cat, penalty);
    }

    fn to_stats(&self) -> Stats {
        let mut s = Stats {
            cycles: self.cycles,
            committed: self.committed,
            squashed: self.squashed,
            trap_cycles: self.trap_cycles,
            traps: self.traps,
            ..Stats::default()
        };
        for (i, &n) in self.class_counts.iter().enumerate() {
            if n > 0 {
                s.class_counts.insert(ALL_CLASSES[i], n);
            }
        }
        for (slot, &cycles) in self.tag_cycles.iter().enumerate() {
            if self.tag_touched & (1 << slot) != 0 {
                let prov = if slot % 2 == 0 {
                    Provenance::Base
                } else {
                    Provenance::Checking
                };
                s.tag_cycles.insert((ALL_TAG_OPS[slot / 2], prov), cycles);
            }
        }
        for (slot, &cat) in ALL_CHECK_CATS.iter().enumerate() {
            if self.cat_touched & (1 << slot) != 0 {
                s.check_cat_cycles.insert(cat, self.cat_cycles[slot]);
            }
        }
        s
    }
}

/// A conditional branch's condition, with operand shape resolved.
#[derive(Debug, Clone, Copy)]
enum BrCond {
    /// Register-register compare ([`Insn::Br`]).
    RegReg(Cond, Reg, Reg),
    /// Register-immediate compare ([`Insn::Bri`]), immediate pre-widened.
    RegImm(Cond, Reg, u32),
    /// Tag-field compare ([`Insn::TagBr`]) — only decoded when the hardware
    /// has the tag-branch unit.
    Tag {
        rs: Reg,
        field: TagField,
        value: u32,
        neq: bool,
    },
}

/// One predecoded micro-op. Variants mirror [`Insn`] but with immediates
/// pre-widened, hardware gates resolved away, checked-access clear masks
/// precomputed, and control transfers lowered to three resolved shapes.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    Add(Reg, Reg, Reg),
    Sub(Reg, Reg, Reg),
    And(Reg, Reg, Reg),
    Or(Reg, Reg, Reg),
    Xor(Reg, Reg, Reg),
    Slt(Reg, Reg, Reg),
    Addi(Reg, Reg, u32),
    Andi(Reg, Reg, u32),
    Ori(Reg, Reg, u32),
    Xori(Reg, Reg, u32),
    Sll(Reg, Reg, u8),
    Srl(Reg, Reg, u8),
    Sra(Reg, Reg, u8),
    Li(Reg, u32),
    Mov(Reg, Reg),
    Fop(FpOp, Reg, Reg, Reg),
    Mul(Reg, Reg, Reg),
    Div(Reg, Reg, Reg),
    Rem(Reg, Reg, Reg),
    Ld(Reg, Reg, u32),
    St {
        src: Reg,
        base: Reg,
        disp: u32,
    },
    LdChk {
        rd: Reg,
        base: Reg,
        disp: u32,
        field: TagField,
        expect: u32,
        /// `!(field.mask << field.shift)`: AND-mask clearing the tag bits
        /// during address calculation.
        clear: u32,
        on_fail: u32,
    },
    StChk {
        src: Reg,
        base: Reg,
        disp: u32,
        field: TagField,
        expect: u32,
        clear: u32,
        on_fail: u32,
    },
    GenArith {
        sub: bool,
        rd: Reg,
        rs: Reg,
        rt: Reg,
        int_test: IntTest,
        on_fail: u32,
    },
    Nop,
    Write(Reg, WriteKind),
    Halt(Reg),
    /// Conditional branch: two delay slots, squash behaviour resolved.
    CondBr {
        cond: BrCond,
        target: u32,
        squash: bool,
    },
    /// Direct jump (J/Jal): one delay slot, link register resolved.
    Jump {
        target: u32,
        link: Option<Reg>,
    },
    /// Indirect jump (Jr/Jalr): one delay slot.
    JumpReg {
        r: Reg,
        link: Option<Reg>,
    },
}

impl OpKind {
    #[inline(always)]
    fn is_control(self) -> bool {
        matches!(
            self,
            OpKind::CondBr { .. } | OpKind::Jump { .. } | OpKind::JumpReg { .. }
        )
    }
}

/// One micro-op with its fused metadata.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    /// The instruction's annotation (reported to observers).
    annot: Annot,
    /// Dense [`ALL_CLASSES`] index.
    class: u8,
    /// Dense `(tag op, provenance)` slot, or [`NO_SLOT`].
    tag: u8,
    /// Dense checking-category slot, or [`NO_SLOT`].
    cat: u8,
    /// Retirement cost in cycles (multiply/divide/float resolved).
    cost: u32,
    /// Registers read, as a bitmask over register indices (r0 excluded).
    use_mask: u32,
}

/// A program lowered to micro-ops for one hardware configuration.
///
/// Produced by [`DecodedProgram::decode`]; executed by [`FastCpu`]. The
/// lowering is pure, so a decoded program can be cloned and reused across
/// runs.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    ops: Vec<Op>,
    entry: usize,
    address_mask: u32,
    trap_penalty: u64,
}

impl DecodedProgram {
    /// Lower `prog` for `hw`. See the [module docs](self) for what is
    /// resolved at predecode time.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingHardware`] at the lowest pc whose instruction
    /// requires a feature `hw` does not provide — even if that instruction
    /// would never execute (the one place predecode is stricter than the
    /// classic interpreter).
    ///
    /// # Panics
    ///
    /// If `prog.annots` is not parallel to `prog.insns` (the assembler
    /// guarantees it; hand-built programs must too).
    pub fn decode(prog: &Program, hw: HwConfig) -> Result<DecodedProgram, SimError> {
        assert_eq!(
            prog.annots.len(),
            prog.insns.len(),
            "program annots must parallel insns (one Annot per instruction)"
        );
        let mut ops = Vec::with_capacity(prog.insns.len());
        for (pc, &insn) in prog.insns.iter().enumerate() {
            ops.push(decode_one(pc, insn, prog.annots[pc], hw)?);
        }
        Ok(DecodedProgram {
            ops,
            entry: prog.entry,
            address_mask: hw.address_mask(),
            trap_penalty: u64::from(hw.trap_penalty),
        })
    }

    /// Number of micro-ops (= instructions).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

fn decode_one(pc: usize, insn: Insn, annot: Annot, hw: HwConfig) -> Result<Op, SimError> {
    let mut cost = 1u32;
    let kind = match insn {
        Insn::Add(d, a, b) => OpKind::Add(d, a, b),
        Insn::Sub(d, a, b) => OpKind::Sub(d, a, b),
        Insn::And(d, a, b) => OpKind::And(d, a, b),
        Insn::Or(d, a, b) => OpKind::Or(d, a, b),
        Insn::Xor(d, a, b) => OpKind::Xor(d, a, b),
        Insn::Slt(d, a, b) => OpKind::Slt(d, a, b),
        Insn::Addi(d, a, i) => OpKind::Addi(d, a, i as u32),
        Insn::Andi(d, a, i) => OpKind::Andi(d, a, i),
        Insn::Ori(d, a, i) => OpKind::Ori(d, a, i),
        Insn::Xori(d, a, i) => OpKind::Xori(d, a, i),
        Insn::Sll(d, a, s) => OpKind::Sll(d, a, s & 31),
        Insn::Srl(d, a, s) => OpKind::Srl(d, a, s & 31),
        Insn::Sra(d, a, s) => OpKind::Sra(d, a, s & 31),
        Insn::Li(d, i) => OpKind::Li(d, i as u32),
        Insn::Mov(d, a) => OpKind::Mov(d, a),
        Insn::Fop(op, d, a, b) => {
            cost = hw.fp_cycles;
            OpKind::Fop(op, d, a, b)
        }
        Insn::Mul(d, a, b) => {
            cost = hw.mul_cycles;
            OpKind::Mul(d, a, b)
        }
        Insn::Div(d, a, b) => {
            cost = hw.div_cycles;
            OpKind::Div(d, a, b)
        }
        Insn::Rem(d, a, b) => {
            cost = hw.div_cycles;
            OpKind::Rem(d, a, b)
        }
        Insn::Ld(d, base, disp) => OpKind::Ld(d, base, disp as u32),
        Insn::St { src, base, disp } => OpKind::St {
            src,
            base,
            disp: disp as u32,
        },
        Insn::LdChk {
            rd,
            base,
            disp,
            field,
            expect,
            on_fail,
        } => {
            if hw.parallel_check == ParallelCheck::None {
                return Err(SimError::MissingHardware {
                    pc,
                    feature: "parallel tag check",
                });
            }
            OpKind::LdChk {
                rd,
                base,
                disp: disp as u32,
                field,
                expect,
                clear: !(field.mask << field.shift),
                on_fail,
            }
        }
        Insn::StChk {
            src,
            base,
            disp,
            field,
            expect,
            on_fail,
        } => {
            if hw.parallel_check == ParallelCheck::None {
                return Err(SimError::MissingHardware {
                    pc,
                    feature: "parallel tag check",
                });
            }
            OpKind::StChk {
                src,
                base,
                disp: disp as u32,
                field,
                expect,
                clear: !(field.mask << field.shift),
                on_fail,
            }
        }
        Insn::AddG {
            rd,
            rs,
            rt,
            int_test,
            on_fail,
        }
        | Insn::SubG {
            rd,
            rs,
            rt,
            int_test,
            on_fail,
        } => {
            if !hw.generic_arith {
                return Err(SimError::MissingHardware {
                    pc,
                    feature: "generic arithmetic",
                });
            }
            OpKind::GenArith {
                sub: matches!(insn, Insn::SubG { .. }),
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            }
        }
        Insn::Nop => OpKind::Nop,
        Insn::Write(r, kind) => OpKind::Write(r, kind),
        Insn::Halt(r) => OpKind::Halt(r),
        Insn::Br {
            cond,
            rs,
            rt,
            target,
            squash,
        } => OpKind::CondBr {
            cond: BrCond::RegReg(cond, rs, rt),
            target,
            squash,
        },
        Insn::Bri {
            cond,
            rs,
            imm,
            target,
            squash,
        } => OpKind::CondBr {
            cond: BrCond::RegImm(cond, rs, imm as u32),
            target,
            squash,
        },
        Insn::TagBr {
            rs,
            field,
            value,
            neq,
            target,
            squash,
        } => {
            if !hw.tag_branch {
                return Err(SimError::MissingHardware {
                    pc,
                    feature: "tag branch",
                });
            }
            OpKind::CondBr {
                cond: BrCond::Tag {
                    rs,
                    field,
                    value,
                    neq,
                },
                target,
                squash,
            }
        }
        Insn::J(t) => OpKind::Jump {
            target: t,
            link: None,
        },
        Insn::Jal(t, link) => OpKind::Jump {
            target: t,
            link: Some(link),
        },
        Insn::Jr(r) => OpKind::JumpReg { r, link: None },
        Insn::Jalr(r, link) => OpKind::JumpReg {
            r,
            link: Some(link),
        },
    };
    let mut use_mask = 0u32;
    for r in insn.uses() {
        use_mask |= 1 << r.index();
    }
    Ok(Op {
        kind,
        annot,
        class: class_slot(InsnClass::of(insn)),
        tag: tag_slot(annot),
        cat: cat_slot(annot),
        cost,
        use_mask,
    })
}

enum Flow {
    Next,
    Halt(i32),
    Trap { target: usize },
}

/// The predecoded interpreter: [`DecodedProgram`] micro-ops driven by a dense
/// dispatch loop. The default [`Backend`]. See the [module docs](self).
#[derive(Debug)]
pub struct FastCpu<'p> {
    /// Kept for observer events (retirements carry the original [`Insn`]).
    prog: &'p Program,
    decoded: DecodedProgram,
    regs: [u32; 32],
    mem: Mem,
    pc: usize,
    stats: DenseStats,
    /// Committed executions per pc; folded into [`Stats`] at halt (one
    /// counter bump per retirement instead of the full attribution).
    counts: Vec<u64>,
    /// Squashed delay slots per *branch* pc (squashes are attributed to the
    /// branch that owns the slot).
    squash_counts: Vec<u64>,
    output: String,
    /// Register written by the immediately preceding load, as a bitmask
    /// (0 = none): the load-delay check is `use_mask & pending_load`.
    pending_load: u32,
}

impl<'p> FastCpu<'p> {
    /// Predecode `prog` for `hw` and build an interpreter over it, mirroring
    /// [`Cpu::new`] (same memory size, same initial data image).
    ///
    /// # Errors
    ///
    /// [`SimError::MissingHardware`] from [`DecodedProgram::decode`].
    pub fn new(prog: &'p Program, hw: HwConfig, mem_bytes: usize) -> Result<Self, SimError> {
        let decoded = DecodedProgram::decode(prog, hw)?;
        Ok(FastCpu::from_decoded(prog, decoded, mem_bytes))
    }

    /// Build an interpreter from an already-decoded program. `decoded` must
    /// have been produced by [`DecodedProgram::decode`] from this same `prog`
    /// (reusing a decoded program across runs skips the predecode pass).
    pub fn from_decoded(prog: &'p Program, decoded: DecodedProgram, mem_bytes: usize) -> Self {
        assert_eq!(
            decoded.ops.len(),
            prog.insns.len(),
            "decoded program must match the source program"
        );
        let mut mem = Mem::new(mem_bytes);
        for &(addr, word) in &prog.data {
            assert!(
                mem.store(addr, word),
                "data image outside memory: {addr:#x}"
            );
        }
        let nops = decoded.ops.len();
        FastCpu {
            prog,
            pc: decoded.entry,
            decoded,
            regs: [0; 32],
            mem,
            stats: DenseStats::default(),
            counts: vec![0; nops],
            squash_counts: vec![0; nops],
            output: String::new(),
            pending_load: 0,
        }
    }

    /// Read a register (r0 reads zero).
    #[inline(always)]
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::Zero {
            0
        } else {
            self.regs[r.index()]
        }
    }

    #[inline(always)]
    fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::Zero {
            self.regs[r.index()] = v;
        }
    }

    /// The register file (for post-run comparison).
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// The data memory (for post-run inspection).
    pub fn mem(&self) -> &Mem {
        &self.mem
    }

    #[inline(always)]
    fn check_load_delay(&self, pc: usize, op: &Op) -> Result<(), SimError> {
        if op.use_mask & self.pending_load != 0 {
            return Err(SimError::LoadDelayViolation {
                pc,
                reg: Reg::from_index(self.pending_load.trailing_zeros() as usize),
            });
        }
        Ok(())
    }

    #[inline(always)]
    fn ea(&self, base: Reg, disp: u32) -> u32 {
        self.reg(base).wrapping_add(disp) & self.decoded.address_mask
    }

    /// Report a trapping checked instruction to the observer and redirect.
    fn emit_trap<O: Observer>(
        &mut self,
        obs: &mut O,
        pc: usize,
        annot: Annot,
        target: usize,
    ) -> Result<Flow, SimError> {
        if O::ENABLED {
            let ev = Retirement {
                pc,
                insn: self.prog.insns[pc],
                write: None,
                mem: None,
                trap: Some(target),
            };
            if obs.retire(&ev, annot, self.stats.cycles).is_break() {
                return Err(SimError::Stopped {
                    cycles: self.stats.cycles,
                });
            }
        }
        Ok(Flow::Trap { target })
    }

    /// Execute one non-control micro-op, recording its cycles. Mirrors
    /// `Cpu::exec_simple` exactly (same effect order, same event shapes).
    #[inline(always)]
    fn exec_simple<O: Observer>(
        &mut self,
        pc: usize,
        op: Op,
        obs: &mut O,
    ) -> Result<Flow, SimError> {
        debug_assert!(!op.kind.is_control());
        self.check_load_delay(pc, &op)?;
        let mut next_pending = 0u32;
        let mut memop: Option<MemOp> = None;
        let flow = match op.kind {
            OpKind::Add(d, a, b) => {
                let v = self.reg(a).wrapping_add(self.reg(b));
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Sub(d, a, b) => {
                let v = self.reg(a).wrapping_sub(self.reg(b));
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::And(d, a, b) => {
                let v = self.reg(a) & self.reg(b);
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Or(d, a, b) => {
                let v = self.reg(a) | self.reg(b);
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Xor(d, a, b) => {
                let v = self.reg(a) ^ self.reg(b);
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Slt(d, a, b) => {
                let v = ((self.reg(a) as i32) < (self.reg(b) as i32)) as u32;
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Addi(d, a, i) => {
                let v = self.reg(a).wrapping_add(i);
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Andi(d, a, i) => {
                let v = self.reg(a) & i;
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Ori(d, a, i) => {
                let v = self.reg(a) | i;
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Xori(d, a, i) => {
                let v = self.reg(a) ^ i;
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Sll(d, a, s) => {
                let v = self.reg(a) << s;
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Srl(d, a, s) => {
                let v = self.reg(a) >> s;
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Sra(d, a, s) => {
                let v = ((self.reg(a) as i32) >> s) as u32;
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Li(d, i) => {
                self.set_reg(d, i);
                Flow::Next
            }
            OpKind::Mov(d, a) => {
                let v = self.reg(a);
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Fop(fop, d, a, b) => {
                let v = fop.apply(self.reg(a), self.reg(b));
                self.set_reg(d, v);
                Flow::Next
            }
            OpKind::Mul(d, a, b) => {
                let v = (self.reg(a) as i32).wrapping_mul(self.reg(b) as i32);
                self.set_reg(d, v as u32);
                Flow::Next
            }
            OpKind::Div(d, a, b) => {
                let bb = self.reg(b) as i32;
                let v = if bb == 0 {
                    0
                } else {
                    (self.reg(a) as i32).wrapping_div(bb)
                };
                self.set_reg(d, v as u32);
                Flow::Next
            }
            OpKind::Rem(d, a, b) => {
                let bb = self.reg(b) as i32;
                let v = if bb == 0 {
                    0
                } else {
                    (self.reg(a) as i32).wrapping_rem(bb)
                };
                self.set_reg(d, v as u32);
                Flow::Next
            }
            OpKind::Ld(d, base, disp) => {
                let addr = self.ea(base, disp);
                let v = self.mem.load(addr).ok_or(SimError::MemFault { addr, pc })?;
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: false,
                    });
                }
                self.set_reg(d, v);
                next_pending = 1 << d.index();
                Flow::Next
            }
            OpKind::St { src, base, disp } => {
                let addr = self.ea(base, disp);
                let v = self.reg(src);
                if !self.mem.store(addr, v) {
                    return Err(SimError::MemFault { addr, pc });
                }
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: true,
                    });
                }
                Flow::Next
            }
            OpKind::LdChk {
                rd,
                base,
                disp,
                field,
                expect,
                clear,
                on_fail,
            } => {
                let word = self.reg(base);
                if field.extract(word) != expect {
                    self.stats
                        .record_trap(op.tag, op.cat, self.decoded.trap_penalty);
                    self.pending_load = 0;
                    return self.emit_trap(obs, pc, op.annot, on_fail as usize);
                }
                let addr = (word & clear).wrapping_add(disp) & self.decoded.address_mask;
                let v = self.mem.load(addr).ok_or(SimError::MemFault { addr, pc })?;
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: false,
                    });
                }
                self.set_reg(rd, v);
                next_pending = 1 << rd.index();
                Flow::Next
            }
            OpKind::StChk {
                src,
                base,
                disp,
                field,
                expect,
                clear,
                on_fail,
            } => {
                let word = self.reg(base);
                if field.extract(word) != expect {
                    self.stats
                        .record_trap(op.tag, op.cat, self.decoded.trap_penalty);
                    self.pending_load = 0;
                    return self.emit_trap(obs, pc, op.annot, on_fail as usize);
                }
                let addr = (word & clear).wrapping_add(disp) & self.decoded.address_mask;
                let v = self.reg(src);
                if !self.mem.store(addr, v) {
                    return Err(SimError::MemFault { addr, pc });
                }
                if O::ENABLED {
                    memop = Some(MemOp {
                        addr,
                        value: v,
                        store: true,
                    });
                }
                Flow::Next
            }
            OpKind::GenArith {
                sub,
                rd,
                rs,
                rt,
                int_test,
                on_fail,
            } => {
                let a = self.reg(rs);
                let b = self.reg(rt);
                let result = if sub {
                    (a as i32).checked_sub(b as i32)
                } else {
                    (a as i32).checked_add(b as i32)
                };
                let ok = int_test.is_int(a)
                    && int_test.is_int(b)
                    && result.map(|r| int_test.is_int(r as u32)).unwrap_or(false);
                if !ok {
                    self.stats.record_trap(
                        tag_slot(GEN_TRAP_ANNOT),
                        cat_slot(GEN_TRAP_ANNOT),
                        self.decoded.trap_penalty,
                    );
                    self.pending_load = 0;
                    return self.emit_trap(obs, pc, GEN_TRAP_ANNOT, on_fail as usize);
                }
                self.set_reg(rd, result.expect("checked above") as u32);
                Flow::Next
            }
            OpKind::Nop => Flow::Next,
            OpKind::Write(r, kind) => {
                let v = self.reg(r);
                match kind {
                    WriteKind::Char => self.output.push((v & 0xFF) as u8 as char),
                    WriteKind::Int => {
                        use std::fmt::Write as _;
                        let _ = write!(self.output, "{}", v as i32);
                    }
                }
                Flow::Next
            }
            OpKind::Halt(r) => Flow::Halt(self.reg(r) as i32),
            OpKind::CondBr { .. } | OpKind::Jump { .. } | OpKind::JumpReg { .. } => {
                unreachable!("control handled by the main loop")
            }
        };
        self.stats.cycles += u64::from(op.cost);
        self.counts[pc] += 1;
        self.pending_load = next_pending;
        if O::ENABLED {
            let insn = self.prog.insns[pc];
            let ev = Retirement {
                pc,
                insn,
                write: insn.def().map(|r| (r, self.reg(r))),
                mem: memop,
                trap: None,
            };
            if obs.retire(&ev, op.annot, self.stats.cycles).is_break() {
                return Err(SimError::Stopped {
                    cycles: self.stats.cycles,
                });
            }
        }
        Ok(flow)
    }

    /// Execute one delay-slot micro-op (must not be a control transfer).
    #[inline(always)]
    fn exec_slot<O: Observer>(&mut self, pc: usize, obs: &mut O) -> Result<Flow, SimError> {
        let op = *self
            .decoded
            .ops
            .get(pc)
            .ok_or(SimError::PcOutOfRange { pc })?;
        if op.kind.is_control() {
            return Err(SimError::ControlInSlot { pc });
        }
        self.exec_simple(pc, op, obs)
    }

    fn outcome(&mut self, code: i32) -> Outcome {
        Outcome {
            halt_code: code,
            output: std::mem::take(&mut self.output),
            stats: self
                .stats
                .fold_counts(&self.decoded, &self.counts, &self.squash_counts),
        }
    }
}

impl Executor for FastCpu<'_> {
    fn run_observed<O: Observer>(
        &mut self,
        max_cycles: u64,
        obs: &mut O,
    ) -> Result<Outcome, SimError> {
        loop {
            if self.stats.cycles >= max_cycles {
                return Err(SimError::OutOfFuel {
                    cycles: self.stats.cycles,
                });
            }
            let pc = self.pc;
            let op = *self
                .decoded
                .ops
                .get(pc)
                .ok_or(SimError::PcOutOfRange { pc })?;
            if !op.kind.is_control() {
                match self.exec_simple(pc, op, obs)? {
                    Flow::Next => self.pc = pc + 1,
                    Flow::Halt(code) => return Ok(self.outcome(code)),
                    Flow::Trap { target } => self.pc = target,
                }
                continue;
            }

            // Control transfer. Charge the branch/jump cycle itself
            // (control ops always decode with cost 1).
            self.check_load_delay(pc, &op)?;
            self.stats.cycles += 1;
            self.counts[pc] += 1;
            self.pending_load = 0;

            let (taken, target, squash, slots, link): (bool, usize, bool, usize, Option<Reg>) =
                match op.kind {
                    OpKind::CondBr {
                        cond,
                        target,
                        squash,
                    } => {
                        let t = match cond {
                            BrCond::RegReg(c, rs, rt) => c.eval(self.reg(rs), self.reg(rt)),
                            BrCond::RegImm(c, rs, imm) => c.eval(self.reg(rs), imm),
                            BrCond::Tag {
                                rs,
                                field,
                                value,
                                neq,
                            } => {
                                let eq = field.extract(self.reg(rs)) == value;
                                if neq {
                                    !eq
                                } else {
                                    eq
                                }
                            }
                        };
                        (t, target as usize, squash, 2, None)
                    }
                    OpKind::Jump { target, link } => (true, target as usize, false, 1, link),
                    OpKind::JumpReg { r, link } => (true, self.reg(r) as usize, false, 1, link),
                    _ => unreachable!(),
                };

            if let Some(link) = link {
                self.set_reg(link, (pc + 1 + slots) as u32);
            }

            if O::ENABLED {
                let insn = self.prog.insns[pc];
                let ev = Retirement {
                    pc,
                    insn,
                    write: insn.def().map(|r| (r, self.reg(r))),
                    mem: None,
                    trap: None,
                };
                if obs.retire(&ev, op.annot, self.stats.cycles).is_break() {
                    return Err(SimError::Stopped {
                        cycles: self.stats.cycles,
                    });
                }
            }

            let mut halted = None;
            for s in 1..=slots {
                let spc = pc + s;
                if taken || !squash {
                    match self.exec_slot(spc, obs)? {
                        Flow::Next => {}
                        Flow::Halt(code) => {
                            halted = Some(code);
                            break;
                        }
                        Flow::Trap { .. } => {
                            // Checked instructions are never placed in delay
                            // slots by the code generator (verify.rs enforces
                            // it).
                            return Err(SimError::ControlInSlot { pc: spc });
                        }
                    }
                } else {
                    // Squashed: cycle wasted, attributed to the branch.
                    self.stats.cycles += 1;
                    self.squash_counts[pc] += 1;
                    self.pending_load = 0;
                    if O::ENABLED {
                        obs.squash(spc, op.annot, self.stats.cycles);
                    }
                }
            }
            if let Some(code) = halted {
                return Ok(self.outcome(code));
            }

            self.pc = if taken { target } else { pc + 1 + slots };
        }
    }

    fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    fn mem(&self) -> &Mem {
        &self.mem
    }
}

impl Executor for RefCpu<'_> {
    /// Drive [`RefCpu::step`] to completion, rebuilding the cycle accounting
    /// from the retirement stream (it is purely architectural: retirement
    /// class/annotation plus the hardware's fixed costs determine every
    /// counter). Produces the same `Outcome` and event stream as the other
    /// backends, with two caveats: the reference interpreter does not enforce
    /// the load-delay rule, and on error paths the event stream may end
    /// slightly earlier than the classic interpreter's.
    fn run_observed<O: Observer>(
        &mut self,
        max_cycles: u64,
        obs: &mut O,
    ) -> Result<Outcome, SimError> {
        let trap_penalty = u64::from(self.hw_config().trap_penalty);
        let mut stats = Stats::default();
        loop {
            // The classic loop checks fuel only between instruction groups
            // (never inside a branch's delay slots); mirror that.
            if !self.in_delay_slot() && stats.cycles >= max_cycles {
                return Err(SimError::OutOfFuel {
                    cycles: stats.cycles,
                });
            }
            let ev = match self.step()? {
                Some(ev) => ev,
                None => {
                    return Ok(Outcome {
                        halt_code: self.halt_code().expect("step returned None, so halted"),
                        output: self.take_output(),
                        stats,
                    })
                }
            };
            let annot = self.program().annots[ev.pc];
            if ev.trap.is_some() {
                // Generic-arithmetic traps are charged to the fixed dispatch
                // annotation, as in the classic interpreter.
                let trap_annot = if matches!(ev.insn, Insn::AddG { .. } | Insn::SubG { .. }) {
                    GEN_TRAP_ANNOT
                } else {
                    annot
                };
                stats.record_trap(trap_annot, trap_penalty);
                if O::ENABLED && obs.retire(&ev, trap_annot, stats.cycles).is_break() {
                    return Err(SimError::Stopped {
                        cycles: stats.cycles,
                    });
                }
                continue;
            }
            let hw = self.hw_config();
            let cost = match ev.insn {
                Insn::Fop(..) => u64::from(hw.fp_cycles),
                Insn::Mul(..) => u64::from(hw.mul_cycles),
                Insn::Div(..) | Insn::Rem(..) => u64::from(hw.div_cycles),
                _ => 1,
            };
            stats.record(InsnClass::of(ev.insn), annot, cost);
            if O::ENABLED && obs.retire(&ev, annot, stats.cycles).is_break() {
                return Err(SimError::Stopped {
                    cycles: stats.cycles,
                });
            }
            if let Some((first_slot, nslots)) = self.take_squashed() {
                for s in 0..nslots {
                    stats.record_squashed(annot);
                    if O::ENABLED {
                        obs.squash(first_slot + s, annot, stats.cycles);
                    }
                }
            }
        }
    }

    fn regs(&self) -> &[u32; 32] {
        RefCpu::regs(self)
    }

    fn mem(&self) -> &Mem {
        RefCpu::mem(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::trace::TraceBuffer;

    fn demo_program() -> Program {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let target = asm.new_label();
        asm.li(Reg::A0, 40);
        asm.li(Reg::A1, 2);
        asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::A1));
        asm.st(Reg::A0, Reg::Sp, 8);
        asm.ld(Reg::A2, Reg::Sp, 8);
        asm.nop();
        asm.bri(crate::insn::Cond::Gt, Reg::A2, 0, target);
        asm.halt(Reg::Zero);
        asm.bind(target);
        asm.write(Reg::A2, WriteKind::Int);
        asm.halt(Reg::A2);
        asm.finish().expect("assembles")
    }

    #[test]
    fn backend_names_round_trip() {
        for b in ALL_BACKENDS {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert_eq!(Backend::from_name(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Backend::from_name("turbo"), None);
        assert_eq!(Backend::default(), Backend::Fast);
        assert_eq!(Backend::Fast.to_string(), "fast");
    }

    #[test]
    fn all_backends_agree_on_a_demo_program() {
        let prog = demo_program();
        let hw = HwConfig::plain();
        let classic = Backend::Classic
            .executor(&prog, hw, 1 << 16)
            .unwrap()
            .run(100_000)
            .unwrap();
        for backend in [Backend::Fast, Backend::Ref] {
            let mut ex = backend.executor(&prog, hw, 1 << 16).unwrap();
            let o = ex.run(100_000).unwrap();
            assert_eq!(o.halt_code, classic.halt_code, "{backend}");
            assert_eq!(o.output, classic.output, "{backend}");
            assert_eq!(o.stats, classic.stats, "{backend}");
        }
    }

    #[test]
    fn fast_and_ref_event_streams_match_classic() {
        let prog = demo_program();
        let hw = HwConfig::plain();
        let trace = |backend: Backend| {
            let mut buf = TraceBuffer::default();
            let mut ex = backend.executor(&prog, hw, 1 << 16).unwrap();
            ex.run_observed(100_000, &mut buf).unwrap();
            (buf.records, buf.annotations, buf.squashes)
        };
        let classic = trace(Backend::Classic);
        assert_eq!(trace(Backend::Fast), classic);
        assert_eq!(trace(Backend::Ref), classic);
    }

    #[test]
    fn missing_hardware_is_a_predecode_error() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        // The tag branch is unreachable, but predecode rejects it anyway.
        asm.halt(Reg::Zero);
        asm.emit(Insn::TagBr {
            rs: Reg::A0,
            field: TagField {
                shift: 27,
                mask: 0x1F,
            },
            value: 0,
            neq: false,
            target: e.id(),
            squash: false,
        });
        asm.nop();
        asm.nop();
        let prog = asm.finish().unwrap();
        let err = DecodedProgram::decode(&prog, HwConfig::plain()).unwrap_err();
        assert_eq!(
            err,
            SimError::MissingHardware {
                pc: 1,
                feature: "tag branch"
            }
        );
        // With the hardware present, predecode succeeds and the program runs.
        let decoded = DecodedProgram::decode(&prog, HwConfig::with_tag_branch()).unwrap();
        assert_eq!(decoded.len(), prog.len());
        assert!(!decoded.is_empty());
        let o = FastCpu::new(&prog, HwConfig::with_tag_branch(), 1 << 16)
            .unwrap()
            .run(1000)
            .unwrap();
        assert_eq!(o.halt_code, 0);
    }

    #[test]
    fn fast_detects_load_delay_violation() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::T0, 0x100);
        asm.ld(Reg::A0, Reg::T0, 0);
        asm.emit(Insn::Add(Reg::A1, Reg::A0, Reg::Zero)); // reads A0 too early
        asm.halt(Reg::A1);
        let prog = asm.finish().unwrap();
        let err = FastCpu::new(&prog, HwConfig::plain(), 1 << 16)
            .unwrap()
            .run(1000)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::LoadDelayViolation { reg: Reg::A0, .. }
        ));
    }

    #[test]
    fn dense_stats_round_trip_matches_hashmap_accounting() {
        // Exercise every attribution path, including a zero-cycle trap (the
        // case where "touched" differs from "non-zero").
        let annots = [
            Annot::NONE,
            Annot::base(TagOpKind::Remove),
            Annot::checking(TagOpKind::Check, CheckCat::List),
            Annot::checking(TagOpKind::Insert, CheckCat::Vector),
            GEN_TRAP_ANNOT,
        ];
        let mut dense = DenseStats::default();
        let mut classic = Stats::default();
        for (i, &a) in annots.iter().enumerate() {
            let class = ALL_CLASSES[i];
            dense.record(class_slot(class), tag_slot(a), cat_slot(a), i as u64 + 1);
            classic.record(class, a, i as u64 + 1);
        }
        dense.record_squashed(tag_slot(annots[2]), cat_slot(annots[2]));
        classic.record_squashed(annots[2]);
        dense.record_trap(tag_slot(GEN_TRAP_ANNOT), cat_slot(GEN_TRAP_ANNOT), 0);
        classic.record_trap(GEN_TRAP_ANNOT, 0);
        assert_eq!(dense.to_stats(), classic);
    }
}
