//! Post-codegen instruction scheduling: load-delay padding and branch delay-slot
//! filling.
//!
//! MIPS-X exposes its pipeline: loads have one delay slot and branches two. The code
//! generator emits naive sequences with explicit `nop` padding (via
//! [`Asm::br`]/[`Asm::j`]); this pass then tries to *fill* branch delay slots by
//! moving independent instructions from before the branch into the slots, exactly
//! the job the paper's compiler does. This matters to the study: tag-removal `and`
//! instructions are prime slot filler, so eliminating them (paper §5) claws back
//! fewer cycles than the raw count suggests — Figure 2's no-op/squash increase.
//!
//! The pass is deliberately block-local and conservative; [`crate::verify`] checks
//! the result and the simulator re-checks load delays dynamically.

use crate::asm::Asm;
use crate::insn::Insn;

/// What the scheduler did, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Branch delay-slot no-ops replaced with useful instructions.
    pub slots_filled: usize,
    /// No-ops inserted to satisfy the load delay.
    pub load_nops_inserted: usize,
}

/// Whether an instruction may be moved into a (non-squashing) branch delay slot.
fn movable(insn: Insn) -> bool {
    !insn.is_control()
        && !matches!(
            insn,
            Insn::Nop
                | Insn::Ld(..)
                | Insn::LdChk { .. }
                | Insn::StChk { .. }
                | Insn::AddG { .. }
                | Insn::SubG { .. }
                | Insn::Halt(_)
        )
}

fn is_mem(insn: Insn) -> bool {
    matches!(
        insn,
        Insn::Ld(..) | Insn::St { .. } | Insn::LdChk { .. } | Insn::StChk { .. }
    )
}

/// Run the scheduler over the assembler's instruction stream.
///
/// Must be called before [`Asm::finish`] (it rewrites positions and label
/// bindings). Calling it twice is harmless.
pub fn schedule(asm: &mut Asm) -> ScheduleReport {
    let mut report = ScheduleReport::default();
    insert_load_nops(asm, &mut report);
    fill_branch_slots(asm, &mut report);
    report
}

/// Pass 1: make every load's successor safe by inserting `nop`s where the next
/// instruction reads the loaded register.
fn insert_load_nops(asm: &mut Asm, report: &mut ScheduleReport) {
    // Positions that are delay slots (we never insert inside a control+slots
    // group; the code generator keeps loads out of slots).
    let mut i = 0;
    while i + 1 < asm.items.len() {
        let (insn, annot) = asm.items[i];
        let loaded = match insn {
            Insn::Ld(rd, ..) => Some(rd),
            Insn::LdChk { rd, .. } => Some(rd),
            _ => None,
        };
        if let Some(rd) = loaded {
            let (next, _) = asm.items[i + 1];
            if next.uses().contains(&rd) {
                // Inherit the load's annotation: the wasted cycle belongs to
                // whatever the load was doing (paper: delay-slot waste is charged
                // to the owning operation).
                asm.items.insert(i + 1, (Insn::Nop, annot));
                shift_labels_at_or_after(asm, i + 1, 1);
                report.load_nops_inserted += 1;
            }
        }
        i += 1;
    }
}

fn shift_labels_at_or_after(asm: &mut Asm, pos: usize, by: isize) {
    for slot in asm.label_pos.iter_mut().flatten() {
        if *slot >= pos {
            *slot = (*slot as isize + by) as usize;
        }
    }
}

/// Pass 2: fill `nop` delay slots of non-squashing branches/jumps with independent
/// instructions hoisted from earlier in the same basic block.
fn fill_branch_slots(asm: &mut Asm, report: &mut ScheduleReport) {
    let mut c = 0;
    while c < asm.items.len() {
        let (insn, _) = asm.items[c];
        let slots = insn.delay_slots();
        if slots == 0 {
            c += 1;
            continue;
        }
        if let Insn::Br { squash: true, .. }
        | Insn::Bri { squash: true, .. }
        | Insn::TagBr { squash: true, .. } = insn
        {
            // Squashing branches are filled explicitly by the code generator from
            // the taken path; hoisting always-executed code into them would be
            // wrong.
            c += slots + 1;
            continue;
        }
        // Block start: just after the previous control group or the closest label.
        let block_start = block_start(asm, c);
        for s in 0..slots {
            let slot_pos = c + 1 + s;
            if slot_pos >= asm.items.len() || asm.items[slot_pos].0 != Insn::Nop {
                continue;
            }
            if let Some(p) = find_candidate(asm, block_start, c, slot_pos) {
                // Move items[p] into the slot: remove it, then overwrite the nop
                // (which has shifted down by one).
                let item = asm.items.remove(p);
                shift_labels_at_or_after(asm, p + 1, -1);
                let new_slot = slot_pos - 1;
                debug_assert_eq!(asm.items[new_slot].0, Insn::Nop);
                asm.items[new_slot] = item;
                report.slots_filled += 1;
                // The branch itself moved down by one.
                c -= 1;
            }
        }
        c += slots + 1;
    }
}

/// The first position of the basic block containing position `c`: after the most
/// recent label binding or control group end.
fn block_start(asm: &Asm, c: usize) -> usize {
    let mut start = 0;
    // after any earlier control instruction's last delay slot
    let mut i = 0;
    while i < c {
        let slots = asm.items[i].0.delay_slots();
        if slots > 0 && i + slots < c {
            start = start.max(i + slots + 1);
        }
        i += 1;
    }
    for pos in asm.label_pos.iter().flatten() {
        if *pos <= c {
            start = start.max(*pos);
        }
    }
    start
}

/// Find the latest movable instruction in `[block_start, c)` that can be hoisted
/// past everything between it and the slot being filled at `slot_pos` — including
/// instructions already placed in earlier delay slots of the branch at `c`, which
/// will execute before the new arrival.
fn find_candidate(asm: &Asm, block_start: usize, c: usize, slot_pos: usize) -> Option<usize> {
    let (branch, _) = asm.items[c];
    let branch_uses = branch.uses();
    let branch_def = branch.def(); // link register of jal/jalr
    'outer: for p in (block_start..c).rev() {
        let (cand, _) = asm.items[p];
        if !movable(cand) {
            continue;
        }
        // No label may bind exactly at p (the jump target would change meaning).
        if asm.label_pos.iter().flatten().any(|&pos| pos == p) {
            continue;
        }
        let cd = cand.def();
        let cu = cand.uses();
        // Must not produce a value the branch condition consumes.
        if let Some(d) = cd {
            if branch_uses.contains(&d) {
                continue;
            }
        }
        // Must not touch the branch's own destination (the link register of a
        // call): moving across would reorder the writes or read the new link.
        if let Some(bd) = branch_def {
            if cd == Some(bd) || cu.contains(&bd) {
                continue;
            }
        }
        // Must commute with every intervening instruction, including already
        // filled earlier slots (they execute before the new arrival).
        for q in (p + 1..slot_pos).filter(|&q| q != c) {
            let (mid, _) = asm.items[q];
            let md = mid.def();
            let mu = mid.uses();
            if let Some(d) = cd {
                if mu.contains(&d) || md == Some(d) {
                    continue 'outer; // RAW or WAW on the candidate's output
                }
            }
            if let Some(m) = md {
                if cu.contains(&m) {
                    continue 'outer; // candidate reads a value redefined in between
                }
            }
            if is_mem(cand) && is_mem(mid) {
                continue 'outer; // conservative memory ordering
            }
        }
        // Removing the candidate must not create a load-delay hazard between its
        // former neighbours.
        if p > block_start {
            let (prev, _) = asm.items[p - 1];
            let prev_loaded = match prev {
                Insn::Ld(rd, ..) | Insn::LdChk { rd, .. } => Some(rd),
                _ => None,
            };
            if let Some(rd) = prev_loaded {
                let (next, _) = asm.items[p + 1];
                if next.uses().contains(&rd) {
                    continue;
                }
            }
        }
        // The candidate itself must not consume a register loaded immediately
        // before the branch position it lands behind; slots execute two cycles
        // after `c-1`, so only the branch adjacency matters and the branch does
        // not load. Safe.
        return Some(p);
    }
    None
}

/// Re-annotate the remaining `nop` delay slots of every branch with the branch's
/// own annotation, so that unused-slot cycles are charged to the operation owning
/// the branch (as the paper does for tag checks).
pub fn attribute_slot_nops(asm: &mut Asm) {
    let mut c = 0;
    while c < asm.items.len() {
        let (insn, annot) = asm.items[c];
        let slots = insn.delay_slots();
        for s in 0..slots {
            let sp = c + 1 + s;
            if sp < asm.items.len() && asm.items[sp].0 == Insn::Nop {
                asm.items[sp].1 = annot;
            }
        }
        c += slots + 1;
    }
}

/// Convenience: run [`schedule`] then [`attribute_slot_nops`].
pub fn schedule_and_attribute(asm: &mut Asm) -> ScheduleReport {
    let r = schedule(asm);
    attribute_slot_nops(asm);
    r
}

#[allow(unused_imports)]
use crate::annot::TagOpKind as _docref; // keep rustdoc link targets alive

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::exec::Executor;
    use crate::hw::HwConfig;
    use crate::insn::Cond;
    use crate::reg::Reg;

    fn run_code(asm: Asm) -> (i32, u64) {
        let prog = asm.finish().unwrap();
        crate::verify::verify(&prog).unwrap();
        let o = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
            .run(100_000)
            .unwrap();
        (o.halt_code, o.stats.cycles)
    }

    /// Build: some independent ALU work, then a branch with nop slots.
    fn sample() -> Asm {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let done = asm.new_label();
        asm.li(Reg::T0, 10);
        asm.li(Reg::T1, 20);
        asm.li(Reg::A0, 1);
        asm.emit(Insn::Add(Reg::T2, Reg::T0, Reg::T1)); // independent of condition
        asm.beq(Reg::A0, Reg::A0, done); // taken; 2 nop slots
        asm.li(Reg::A0, 99);
        asm.bind(done);
        asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::T2));
        asm.halt(Reg::A0);
        asm
    }

    #[test]
    fn filling_preserves_semantics_and_saves_cycles() {
        let baseline = run_code(sample());
        let mut scheduled = sample();
        let rep = schedule(&mut scheduled);
        assert!(rep.slots_filled >= 1, "the add should move into a slot");
        let after = run_code(scheduled);
        assert_eq!(baseline.0, after.0, "same result");
        assert!(after.1 < baseline.1, "fewer cycles after filling");
    }

    #[test]
    fn condition_producer_is_not_hoisted() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let done = asm.new_label();
        asm.li(Reg::A0, 1); // produces the condition — must NOT move
        asm.beq(Reg::A0, Reg::A0, done);
        asm.li(Reg::A0, 99);
        asm.bind(done);
        asm.halt(Reg::A0);
        let mut s = asm;
        let rep = schedule(&mut s);
        assert_eq!(rep.slots_filled, 0);
        assert_eq!(run_code(s).0, 1);
    }

    #[test]
    fn load_nop_inserted_for_hazard() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::T0, 0x100);
        asm.li(Reg::T1, 5);
        asm.st(Reg::T1, Reg::T0, 0);
        asm.ld(Reg::A0, Reg::T0, 0);
        asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::A0)); // hazard
        asm.halt(Reg::A0);
        let mut s = asm;
        let rep = schedule(&mut s);
        assert_eq!(rep.load_nops_inserted, 1);
        assert_eq!(run_code(s).0, 10);
    }

    #[test]
    fn labels_stay_correct_across_moves() {
        // A loop whose body has fillable work; label targets must survive.
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        asm.li(Reg::S0, 0); // sum
        asm.li(Reg::S1, 5); // counter
        let top = asm.new_label();
        asm.bind(top);
        asm.emit(Insn::Add(Reg::S0, Reg::S0, Reg::S1));
        asm.emit(Insn::Addi(Reg::S1, Reg::S1, -1));
        asm.br(Cond::Ne, Reg::S1, Reg::Zero, top);
        asm.halt(Reg::S0);
        let baseline = {
            let mut a2 = Asm::new();
            let e = a2.here("entry");
            a2.set_entry(e);
            a2.li(Reg::S0, 0);
            a2.li(Reg::S1, 5);
            let top = a2.new_label();
            a2.bind(top);
            a2.emit(Insn::Add(Reg::S0, Reg::S0, Reg::S1));
            a2.emit(Insn::Addi(Reg::S1, Reg::S1, -1));
            a2.br(Cond::Ne, Reg::S1, Reg::Zero, top);
            a2.halt(Reg::S0);
            run_code(a2)
        };
        let mut s = asm;
        schedule(&mut s);
        let after = run_code(s);
        assert_eq!(after.0, baseline.0);
        assert_eq!(after.0, 5 + 4 + 3 + 2 + 1);
        assert!(after.1 <= baseline.1);
    }

    #[test]
    fn squashing_branches_are_left_alone() {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let t = asm.new_label();
        asm.li(Reg::T0, 1);
        asm.emit(Insn::Add(Reg::T1, Reg::T0, Reg::T0));
        asm.br_raw(Cond::Eq, Reg::Zero, Reg::Zero, t, true);
        asm.nop();
        asm.nop();
        asm.bind(t);
        asm.halt(Reg::T1);
        let mut s = asm;
        let rep = schedule(&mut s);
        assert_eq!(rep.slots_filled, 0);
    }

    #[test]
    fn attribute_slot_nops_inherits_branch_annot() {
        use crate::annot::{Annot, TagOpKind};
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let t = asm.new_label();
        asm.with_annot(Annot::base(TagOpKind::Check), |a| {
            a.beq(Reg::A0, Reg::Zero, t);
        });
        asm.bind(t);
        asm.halt(Reg::Zero);
        attribute_slot_nops(&mut asm);
        let prog = asm.finish().unwrap();
        assert_eq!(prog.annots[1].tag_op, Some(TagOpKind::Check));
        assert_eq!(prog.annots[2].tag_op, Some(TagOpKind::Check));
    }
}
