//! Static well-formedness checks for assembled programs.
//!
//! The simulator also detects these conditions dynamically, but only on paths a
//! test happens to execute; this verifier checks the whole program once, right
//! after code generation, so that scheduling bugs surface deterministically.

use std::fmt;

use crate::insn::Insn;
use crate::program::Program;
use crate::reg::Reg;

/// A static rule violation found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A control-transfer instruction sits in another's delay slot.
    ControlInSlot {
        /// The offending instruction index.
        pc: usize,
    },
    /// A trapping instruction (checked memory / generic arithmetic) sits in a
    /// delay slot, where a trap redirect would corrupt the pipeline model.
    TrapInSlot {
        /// The offending instruction index.
        pc: usize,
    },
    /// A branch or jump target lands inside somebody's delay slot.
    TargetInSlot {
        /// The branch instruction index.
        branch: usize,
        /// The bad target.
        target: usize,
    },
    /// A control target is outside the program.
    TargetOutOfRange {
        /// The branch instruction index.
        branch: usize,
        /// The bad target.
        target: usize,
    },
    /// The instruction after a load reads the loaded register.
    LoadDelayHazard {
        /// The load's index.
        load: usize,
        /// The register read one cycle too early.
        reg: Reg,
    },
    /// A load in the final delay slot of a branch, where its delay would span a
    /// block boundary (conservatively rejected).
    LoadInLastSlot {
        /// The load's index.
        pc: usize,
    },
    /// The program ends inside a control instruction's delay slots.
    TruncatedSlots {
        /// The control instruction's index.
        pc: usize,
    },
    /// The entry point is inside a delay slot.
    EntryInSlot {
        /// The entry index.
        entry: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ControlInSlot { pc } => write!(f, "control transfer in slot at {pc}"),
            VerifyError::TrapInSlot { pc } => write!(f, "trapping instruction in slot at {pc}"),
            VerifyError::TargetInSlot { branch, target } => {
                write!(f, "branch at {branch} targets delay slot {target}")
            }
            VerifyError::TargetOutOfRange { branch, target } => {
                write!(f, "branch at {branch} targets out-of-range {target}")
            }
            VerifyError::LoadDelayHazard { load, reg } => {
                write!(f, "load at {load}: next instruction reads {reg}")
            }
            VerifyError::LoadInLastSlot { pc } => write!(f, "load in last delay slot at {pc}"),
            VerifyError::TruncatedSlots { pc } => {
                write!(f, "program ends inside delay slots of {pc}")
            }
            VerifyError::EntryInSlot { entry } => write!(f, "entry {entry} is a delay slot"),
        }
    }
}

impl std::error::Error for VerifyError {}

fn targets(insn: Insn) -> Option<u32> {
    match insn {
        Insn::Br { target, .. } | Insn::TagBr { target, .. } | Insn::J(target) => Some(target),
        Insn::Jal(target, _) => Some(target),
        Insn::LdChk { on_fail, .. }
        | Insn::StChk { on_fail, .. }
        | Insn::AddG { on_fail, .. }
        | Insn::SubG { on_fail, .. } => Some(on_fail),
        _ => None,
    }
}

/// Check all static pipeline rules. Returns the first violation found.
///
/// # Errors
///
/// Any [`VerifyError`]; a verified program cannot produce
/// [`crate::SimError::ControlInSlot`] or (statically detectable)
/// [`crate::SimError::LoadDelayViolation`] at run time.
pub fn verify(prog: &Program) -> Result<(), VerifyError> {
    let n = prog.insns.len();
    // Mark delay-slot positions.
    let mut in_slot = vec![false; n];
    let mut i = 0;
    while i < n {
        let slots = prog.insns[i].delay_slots();
        if slots > 0 {
            if i + slots >= n {
                return Err(VerifyError::TruncatedSlots { pc: i });
            }
            for s in 1..=slots {
                in_slot[i + s] = true;
            }
            // Slots themselves are scanned for violations below; a control insn in
            // a slot has its own "slots" which we must not double-mark, so skip
            // past the group only when the slots are sane.
        }
        i += 1;
    }

    for (pc, insn) in prog.insns.iter().copied().enumerate() {
        if in_slot[pc] {
            if insn.is_control() {
                return Err(VerifyError::ControlInSlot { pc });
            }
            if insn.can_trap() {
                return Err(VerifyError::TrapInSlot { pc });
            }
        }
        if let Some(t) = targets(insn) {
            let t = t as usize;
            if t >= n {
                return Err(VerifyError::TargetOutOfRange {
                    branch: pc,
                    target: t,
                });
            }
            if in_slot[t] {
                return Err(VerifyError::TargetInSlot {
                    branch: pc,
                    target: t,
                });
            }
        }
        // Load-delay: linear adjacency.
        let loaded = match insn {
            Insn::Ld(rd, ..) | Insn::LdChk { rd, .. } => Some(rd),
            _ => None,
        };
        if let Some(rd) = loaded {
            // A load in the *last* delay slot would need cross-block analysis.
            let is_last_slot = in_slot[pc] && (pc + 1 >= n || !in_slot[pc + 1]);
            if is_last_slot {
                return Err(VerifyError::LoadInLastSlot { pc });
            }
            if pc + 1 < n && prog.insns[pc + 1].uses().contains(&rd) {
                return Err(VerifyError::LoadDelayHazard { load: pc, reg: rd });
            }
        }
    }

    if n > 0 && in_slot[prog.entry] {
        return Err(VerifyError::EntryInSlot { entry: prog.entry });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::Cond;

    fn entry(asm: &mut Asm) {
        let e = asm.here("entry");
        asm.set_entry(e);
    }

    #[test]
    fn clean_program_verifies() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let t = asm.new_label();
        asm.li(Reg::A0, 1);
        asm.beq(Reg::A0, Reg::Zero, t);
        asm.bind(t);
        asm.halt(Reg::A0);
        verify(&asm.finish().unwrap()).unwrap();
    }

    #[test]
    fn detects_control_in_slot() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let t = asm.new_label();
        asm.br_raw(Cond::Eq, Reg::Zero, Reg::Zero, t, false);
        asm.emit(Insn::J(t.0));
        asm.nop();
        asm.bind(t);
        asm.halt(Reg::Zero);
        assert!(matches!(
            verify(&asm.finish().unwrap()),
            Err(VerifyError::ControlInSlot { .. })
        ));
    }

    #[test]
    fn detects_target_into_slot() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let slot_label = asm.new_label();
        let top = asm.new_label();
        asm.bind(top);
        asm.br_raw(Cond::Eq, Reg::Zero, Reg::Zero, slot_label, false);
        asm.bind(slot_label); // label on the first delay slot
        asm.nop();
        asm.nop();
        asm.halt(Reg::Zero);
        assert!(matches!(
            verify(&asm.finish().unwrap()),
            Err(VerifyError::TargetInSlot { .. })
        ));
    }

    #[test]
    fn detects_load_hazard() {
        let mut asm = Asm::new();
        entry(&mut asm);
        asm.ld(Reg::A0, Reg::Sp, 0);
        asm.emit(Insn::Add(Reg::A1, Reg::A0, Reg::Zero));
        asm.halt(Reg::A1);
        assert!(matches!(
            verify(&asm.finish().unwrap()),
            Err(VerifyError::LoadDelayHazard { reg: Reg::A0, .. })
        ));
    }

    #[test]
    fn detects_truncated_slots() {
        let mut asm = Asm::new();
        entry(&mut asm);
        let t = asm.new_label();
        asm.bind(t);
        asm.emit(Insn::J(t.0)); // no slot follows
        assert!(matches!(
            verify(&asm.finish().unwrap()),
            Err(VerifyError::TruncatedSlots { .. })
        ));
    }

    #[test]
    fn detects_trap_in_slot() {
        use crate::insn::TagField;
        let mut asm = Asm::new();
        entry(&mut asm);
        let t = asm.new_label();
        asm.br_raw(Cond::Eq, Reg::Zero, Reg::Zero, t, false);
        asm.emit(Insn::LdChk {
            rd: Reg::A0,
            base: Reg::A1,
            disp: 0,
            field: TagField {
                shift: 27,
                mask: 0x1F,
            },
            expect: 1,
            on_fail: t.0,
        });
        asm.nop();
        asm.bind(t);
        asm.halt(Reg::Zero);
        assert!(matches!(
            verify(&asm.finish().unwrap()),
            Err(VerifyError::TrapInSlot { .. })
        ));
    }
}
