//! An instruction-level simulator for a MIPS-X-like reduced-instruction-set
//! processor, with the tag-handling hardware extensions studied in Steenkiste &
//! Hennessy (ASPLOS 1987).
//!
//! The paper's methodology rests on a RISC property it states explicitly: execution
//! time "depends directly on" instruction count (ignoring cache misses). This
//! simulator therefore charges one cycle per instruction (a few cycles for
//! multiply/divide), models the two pipeline features that matter to the study —
//! **squashed delayed branches** with two delay slots and a **one-cycle load delay**
//! — and attributes every cycle to the tag operation (if any) that the instruction
//! implements.
//!
//! # Architecture summary
//!
//! - 32 general registers, `r0` wired to zero; 32-bit words; byte addresses with
//!   word-aligned memory (the bottom two address bits are dropped, as on MIPS-X).
//! - Conditional branches have two delay slots executed while the condition
//!   resolves; *squashing* branches cancel the slots when the branch does not go
//!   (the cycles are wasted and counted as squashed). Unconditional jumps have one
//!   delay slot.
//! - Loads have one delay slot: the instruction after a load must not read the
//!   loaded register ([`verify`] enforces this statically; [`sched`] fills or pads).
//! - Code and data live in separate spaces (the simulator is not used for
//!   self-modifying code); the program counter indexes instructions.
//!
//! # Hardware extensions (paper §5–§6, Table 2)
//!
//! All extensions are gated by [`HwConfig`]:
//!
//! - *address tag dropping* (row 1 hardware variant): loads and stores ignore the
//!   top `n` bits of every effective address;
//! - *tag branch* (row 2): [`Insn::TagBr`] compares a bit-field of a register with a
//!   constant and branches, without a separate extract instruction;
//! - *parallel checked memory access* (rows 5–6): [`Insn::LdChk`]/[`Insn::StChk`]
//!   check the tag of the base register during address calculation and trap on
//!   mismatch;
//! - *generic arithmetic* (row 4): [`Insn::AddG`]/[`Insn::SubG`] perform an integer
//!   add/subtract while testing both operands and the result, trapping to a software
//!   routine otherwise.
//!
//! # Example
//!
//! Programs run on any [`Executor`] backend — the classic [`Cpu`], the
//! predecoded [`FastCpu`] (the default), or the reference [`RefCpu`]; all
//! three produce identical results (see the [`exec`] module docs).
//!
//! ```
//! use mipsx::{Asm, Backend, Executor, HwConfig, Insn, Reg};
//!
//! let mut asm = Asm::new();
//! let entry = asm.here("entry");
//! asm.set_entry(entry);
//! asm.li(Reg::A0, 2);
//! asm.li(Reg::A1, 40);
//! asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::A1));
//! asm.emit(Insn::Halt(Reg::A0));
//! let prog = asm.finish().unwrap();
//!
//! let mut cpu = Backend::default()
//!     .executor(&prog, HwConfig::plain(), 1 << 16)
//!     .unwrap();
//! let outcome = cpu.run(10_000).unwrap();
//! assert_eq!(outcome.halt_code, 42);
//! ```

#![deny(missing_docs)]

mod annot;
mod asm;
mod cpu;
mod hw;
mod insn;
mod mem;
mod program;
mod refcpu;
mod reg;
mod stats;

pub mod exec;
pub mod profile;
pub mod sched;
pub mod symtab;
pub mod timing;
pub mod trace;
pub mod verify;

pub use annot::{Annot, CheckCat, Provenance, TagOpKind, ALL_CHECK_CATS, ALL_TAG_OPS};
pub use asm::{Asm, AsmError, Label};
pub use cpu::{Cpu, Outcome, SimError};
pub use exec::{AnyExecutor, Backend, DecodedProgram, Executor, FastCpu, ALL_BACKENDS};
pub use hw::{HwConfig, ParallelCheck};
pub use insn::{Cond, FpOp, Insn, IntTest, TagField, WriteKind};
pub use mem::Mem;
pub use profile::{FuncProfile, PcProfile, Profiler};
pub use program::Program;
pub use refcpu::{Fault, RefCpu};
pub use reg::Reg;
pub use stats::{InsnClass, Stats, ALL_CLASSES};
pub use symtab::{CallSite, FuncSym, SymbolTable};
pub use timing::{
    CacheParams, FuncStalls, PredictorKind, StallCause, TimingConfig, TimingModel, TimingStats,
    ALL_STALL_CAUSES, TIMING_PRESETS,
};
