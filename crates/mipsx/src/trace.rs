//! The retired-instruction trace layer: an opt-in observer hook on [`Cpu`].
//!
//! [`Cpu::run_observed`] reports every *architecturally executed* instruction
//! to an [`Observer`] as a [`Retirement`] record — program counter, decoded
//! instruction, register writeback, memory operation, tag-trap redirect — plus
//! the cumulative cycle count and the instruction's [`Annot`]ation at the
//! moment it retired. Squashed delay slots (which burn a cycle but execute
//! nothing) are reported separately through [`Observer::squash`].
//!
//! The hook is **zero-cost when disabled**: observers are a generic parameter,
//! every emission site is guarded by the associated constant
//! [`Observer::ENABLED`], and [`Cpu::run`] instantiates the loop with
//! [`NoTrace`] (`ENABLED = false`), so the plain path monomorphizes to exactly
//! the untraced fetch-execute loop.
//!
//! Two executors produce this record stream — the pipelined [`Cpu`] and the
//! deliberately simple [`crate::RefCpu`] — which is what makes differential
//! (trace-oracle) testing possible; see the `conformance` crate.
//!
//! [`Cpu`]: crate::Cpu
//! [`Cpu::run`]: crate::Cpu::run
//! [`Cpu::run_observed`]: crate::Cpu::run_observed

use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;

use crate::annot::Annot;
use crate::insn::Insn;
use crate::reg::Reg;

/// A memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Effective byte address (after tag dropping / masking).
    pub addr: u32,
    /// The word read or written.
    pub value: u32,
    /// `true` for a store, `false` for a load.
    pub store: bool,
}

/// One retired instruction, as both executors report it.
///
/// `Retirement` deliberately contains only *architectural* facts — no cycles,
/// no pipeline state — so records from the pipelined [`crate::Cpu`] and the
/// sequential [`crate::RefCpu`] can be compared with `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retirement {
    /// Instruction index.
    pub pc: usize,
    /// The decoded instruction.
    pub insn: Insn,
    /// Register writeback, if the instruction wrote one (writes to `r0` are
    /// discarded and never reported).
    pub write: Option<(Reg, u32)>,
    /// Memory operation, if the instruction performed one.
    pub mem: Option<MemOp>,
    /// Tag-trap redirect target: `Some(on_fail)` when a checked memory access
    /// or generic-arithmetic instruction failed its tag test and transferred
    /// control instead of completing. Trapping retirements have no writeback
    /// and no memory operation.
    pub trap: Option<usize>,
}

/// An instruction-retirement observer. See the [module docs](self).
///
/// `retire` returns [`ControlFlow`]: `Break(())` stops the simulation, which
/// then reports [`crate::SimError::Stopped`]. This lets a differential harness
/// abort at the first divergence instead of running the program to completion.
pub trait Observer {
    /// Compile-time gate: when `false`, every emission site (including the
    /// bookkeeping that assembles [`Retirement`] records) compiles away.
    const ENABLED: bool = true;

    /// Called after each architecturally executed instruction, including
    /// trapping checked instructions and `halt`.
    ///
    /// `annot` is the annotation the statistics were charged to (for trapping
    /// generic arithmetic this is the dispatch annotation, not the fast
    /// path's) and `cycle` the cumulative cycle count after retirement.
    fn retire(&mut self, ev: &Retirement, annot: Annot, cycle: u64) -> ControlFlow<()>;

    /// Called when a delay slot is squashed: the slot's cycle is wasted and
    /// charged to the branch's annotation; nothing executes or retires.
    fn squash(&mut self, pc: usize, branch_annot: Annot, cycle: u64) {
        let _ = (pc, branch_annot, cycle);
    }
}

/// The disabled observer: [`crate::Cpu::run`] uses it, and with
/// `ENABLED = false` the traced loop monomorphizes back to the plain one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl Observer for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn retire(&mut self, _ev: &Retirement, _annot: Annot, _cycle: u64) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// What [`TraceBuffer::drain`] hands back: the retirements, the parallel
/// `(annotation, cumulative cycle)` sidecar, and the squashed-slot log.
pub type DrainedTrace = (Vec<Retirement>, Vec<(Annot, u64)>, Vec<(usize, Annot, u64)>);

/// An observer that records the whole run in memory.
///
/// Only suitable for small programs — the ten benchmark workloads retire
/// hundreds of millions of instructions, for which a streaming observer (as in
/// the `conformance` crate's lockstep harness) is the right tool. As a middle
/// ground, [`TraceBuffer::bounded`] caps the recording and stops the
/// simulation (via `ControlFlow::Break`, surfacing as
/// [`crate::SimError::Stopped`]) once the cap is reached, and
/// [`TraceBuffer::drain`] hands the records out batch-wise so one buffer can
/// be reused across windows of a long run.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    /// Every retirement, in order.
    pub records: Vec<Retirement>,
    /// `(annot, cycle)` sidecar, parallel to `records`.
    pub annotations: Vec<(Annot, u64)>,
    /// Squashed delay slots as `(pc, branch annot, cycle)`.
    pub squashes: Vec<(usize, Annot, u64)>,
    /// When set, `retire` breaks out of the run once this many records are
    /// held (squashes don't count against the bound).
    limit: Option<usize>,
}

impl TraceBuffer {
    /// An unbounded buffer (same as `TraceBuffer::default()`).
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// A buffer that stops the simulation after recording `limit`
    /// retirements; the run then ends with [`crate::SimError::Stopped`].
    pub fn bounded(limit: usize) -> TraceBuffer {
        TraceBuffer {
            limit: Some(limit),
            ..TraceBuffer::default()
        }
    }

    /// Number of retirements currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no retirement has been recorded (squashes don't count).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Take everything recorded so far, leaving the buffer empty (and, for a
    /// bounded buffer, ready to accept `limit` more records).
    pub fn drain(&mut self) -> DrainedTrace {
        (
            std::mem::take(&mut self.records),
            std::mem::take(&mut self.annotations),
            std::mem::take(&mut self.squashes),
        )
    }
}

/// An observer that folds the whole event stream into a single order-sensitive
/// digest, in constant memory.
///
/// Two runs produce the same `(digest, retired, squashed)` triple exactly when
/// they emitted the same [`Retirement`] records (with the same annotations and
/// cumulative cycles) and the same squashed slots, in the same order — which is
/// what the backend-equivalence suite in the `conformance` crate checks on
/// workloads too large for a [`TraceBuffer`]. The digest is
/// [`DefaultHasher`](std::collections::hash_map::DefaultHasher)-based, so it is
/// only stable within one process — compare two `StreamHash`es from the same
/// run of a test, don't persist the value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamHash {
    /// The running digest over every event so far.
    pub digest: u64,
    /// Number of retirements folded in.
    pub retired: u64,
    /// Number of squashed slots folded in.
    pub squashed: u64,
}

impl StreamHash {
    /// A fresh digest (same as `StreamHash::default()`).
    pub fn new() -> StreamHash {
        StreamHash::default()
    }

    #[inline]
    fn fold(&mut self, f: impl FnOnce(&mut std::collections::hash_map::DefaultHasher)) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.digest.hash(&mut h);
        f(&mut h);
        self.digest = h.finish();
    }
}

impl Observer for StreamHash {
    fn retire(&mut self, ev: &Retirement, annot: Annot, cycle: u64) -> ControlFlow<()> {
        self.fold(|h| {
            0u8.hash(h); // event kind: retirement
            ev.pc.hash(h);
            format!("{:?}", ev.insn).hash(h);
            ev.write.map(|(r, v)| (r as u8, v)).hash(h);
            ev.mem.map(|m| (m.addr, m.value, m.store)).hash(h);
            ev.trap.hash(h);
            format!("{annot:?}").hash(h);
            cycle.hash(h);
        });
        self.retired += 1;
        ControlFlow::Continue(())
    }

    fn squash(&mut self, pc: usize, branch_annot: Annot, cycle: u64) {
        self.fold(|h| {
            1u8.hash(h); // event kind: squashed slot
            pc.hash(h);
            format!("{branch_annot:?}").hash(h);
            cycle.hash(h);
        });
        self.squashed += 1;
    }
}

impl Observer for TraceBuffer {
    fn retire(&mut self, ev: &Retirement, annot: Annot, cycle: u64) -> ControlFlow<()> {
        self.records.push(*ev);
        self.annotations.push((annot, cycle));
        if self.limit.is_some_and(|l| self.records.len() >= l) {
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }

    fn squash(&mut self, pc: usize, branch_annot: Annot, cycle: u64) {
        self.squashes.push((pc, branch_annot, cycle));
    }
}

/// Two observers driven by one run — e.g. a
/// [`Profiler`](crate::profile::Profiler) and a
/// [`TimingModel`](crate::timing::TimingModel) watching the same stream. The
/// fields are public so both halves can be inspected after the run.
///
/// `retire` stops the simulation when *either* half asks to
/// (`ControlFlow::Break`); the other half still sees the event first.
#[derive(Debug, Clone, Default)]
pub struct Chain<A, B> {
    /// The first observer (sees each event first).
    pub first: A,
    /// The second observer.
    pub second: B,
}

impl<A: Observer, B: Observer> Chain<A, B> {
    /// Chain `first` and `second`.
    pub fn new(first: A, second: B) -> Chain<A, B> {
        Chain { first, second }
    }
}

impl<A: Observer, B: Observer> Observer for Chain<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn retire(&mut self, ev: &Retirement, annot: Annot, cycle: u64) -> ControlFlow<()> {
        let a = self.first.retire(ev, annot, cycle);
        let b = self.second.retire(ev, annot, cycle);
        if a.is_break() || b.is_break() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn squash(&mut self, pc: usize, branch_annot: Annot, cycle: u64) {
        self.first.squash(pc, branch_annot, cycle);
        self.second.squash(pc, branch_annot, cycle);
    }
}
