//! Property test: `lisp` codegen never emits a program that fails the static
//! verifier.
//!
//! The delay-slot scheduler runs inside `lisp::compile`, so every compiled
//! benchmark is a scheduler output; `verify::verify` statically rejects the
//! two bugs the pipeline would otherwise hit dynamically (a load-delay hazard
//! or a control target landing in a delay slot). One exhaustive sweep pins
//! the whole measured design space; a seeded sweep explores the option
//! combinations no table uses (hardware variants crossed with ablations),
//! driven by the deterministic `synth` PRNG so every case is reproducible
//! from its draw index alone. Generated `synth` programs run through the same
//! check, so the verifier sees code shapes the ten benchmarks never produce.

use lisp::{CheckingMode, IntTestMethod, Options};
use mipsx::{verify, HwConfig};
use synth::{OpMix, Pcg32};
use tagword::ALL_SCHEMES;

/// The hardware configurations codegen can target.
fn hw_choices() -> Vec<HwConfig> {
    vec![
        HwConfig::plain(),
        HwConfig::with_address_drop(5),
        HwConfig::with_address_drop(6),
        HwConfig::with_tag_branch(),
        HwConfig::with_generic_arith(),
        HwConfig::maximal(5),
        HwConfig::spur(5),
    ]
}

/// Draw one option combination from the deterministic stream: the same
/// (seed, index) always yields the same case, so a failure report like
/// "draw 17" is enough to reproduce it.
fn draw_options(rng: &mut Pcg32) -> Options {
    let scheme = ALL_SCHEMES[rng.below(ALL_SCHEMES.len() as u32) as usize];
    let checking = if rng.chance(0.5) {
        CheckingMode::Full
    } else {
        CheckingMode::None
    };
    let mut opts = Options::new(scheme, checking);
    opts.hw = hw_choices()[rng.below(7) as usize];
    opts.preshifted_pair_tag = rng.chance(0.5);
    opts.int_test_method = if rng.chance(0.5) {
        IntTestMethod::TagCompare
    } else {
        IntTestMethod::SignExtend
    };
    opts
}

fn compile_and_verify(label: &str, source: &str, opts: &Options) {
    let compiled = lisp::compile(source, opts)
        .unwrap_or_else(|e| panic!("{label} ({opts:?}): compile failed: {e}"));
    if let Err(e) = verify::verify(&compiled.program) {
        panic!("{label} ({opts:?}): emitted program fails verification: {e}");
    }
}

/// Exhaustive: every benchmark under every scheme and checking mode with the
/// default (plain-hardware) options verifies cleanly.
#[test]
fn every_benchmark_verifies_under_every_scheme() {
    for b in programs::all() {
        for scheme in ALL_SCHEMES {
            for checking in [CheckingMode::None, CheckingMode::Full] {
                compile_and_verify(b.name, b.source, &Options::new(scheme, checking));
            }
        }
    }
}

/// Seeded: 64 fixed draws of scheme × checking × hardware × ablation knobs
/// over the ten benchmarks still verify. Replaces the earlier proptest block
/// with the same coverage but bit-reproducible case selection.
#[test]
fn seeded_option_combinations_verify() {
    let mut rng = Pcg32::new(0xC0DE_CA5E, 1);
    for draw in 0..64u32 {
        let b = &programs::all()[rng.below(programs::all().len() as u32) as usize];
        let opts = draw_options(&mut rng);
        compile_and_verify(&format!("draw {draw}: {}", b.name), b.source, &opts);
    }
}

/// Generated workloads go through the same static check: 24 fixed-seed synth
/// programs (8 per mix preset), each under a fresh option draw.
#[test]
fn generated_programs_verify() {
    let mut rng = Pcg32::new(0x5EED_5EED, 2);
    for (mix_name, mix) in [
        ("list", OpMix::list_heavy()),
        ("arith", OpMix::arith_heavy()),
        ("balanced", OpMix::balanced()),
    ] {
        for seed in 0..8u64 {
            let source = synth::render(&synth::generate(seed, &mix));
            let opts = draw_options(&mut rng);
            compile_and_verify(&format!("synth {mix_name} seed {seed}"), &source, &opts);
        }
    }
}
