//! Property test: `lisp` codegen never emits a program that fails the static
//! verifier.
//!
//! The delay-slot scheduler runs inside `lisp::compile`, so every compiled
//! benchmark is a scheduler output; `verify::verify` statically rejects the
//! two bugs the pipeline would otherwise hit dynamically (a load-delay hazard
//! or a control target landing in a delay slot). One exhaustive sweep pins
//! the whole measured design space; a randomized sweep explores the option
//! combinations no table uses (hardware variants crossed with ablations).

use proptest::prelude::*;

use lisp::{CheckingMode, IntTestMethod, Options};
use mipsx::{verify, HwConfig};
use tagword::ALL_SCHEMES;

/// The hardware configurations codegen can target.
fn hw_choices() -> Vec<HwConfig> {
    vec![
        HwConfig::plain(),
        HwConfig::with_address_drop(5),
        HwConfig::with_address_drop(6),
        HwConfig::with_tag_branch(),
        HwConfig::with_generic_arith(),
        HwConfig::maximal(5),
        HwConfig::spur(5),
    ]
}

fn compile_and_verify(name: &str, opts: &Options) {
    let b = programs::by_name(name).expect("benchmark exists");
    let compiled = lisp::compile(b.source, opts)
        .unwrap_or_else(|e| panic!("{name} ({opts:?}): compile failed: {e}"));
    if let Err(e) = verify::verify(&compiled.program) {
        panic!("{name} ({opts:?}): emitted program fails verification: {e}");
    }
}

/// Exhaustive: every benchmark under every scheme and checking mode with the
/// default (plain-hardware) options verifies cleanly.
#[test]
fn every_benchmark_verifies_under_every_scheme() {
    for b in programs::all() {
        for scheme in ALL_SCHEMES {
            for checking in [CheckingMode::None, CheckingMode::Full] {
                compile_and_verify(b.name, &Options::new(scheme, checking));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized: arbitrary combinations of scheme, checking mode, hardware
    /// support, and the §3.1/§4.1 ablation knobs still verify.
    #[test]
    fn random_option_combinations_verify(
        prog_idx in 0usize..10,
        scheme_idx in 0usize..ALL_SCHEMES.len(),
        full_checking in any::<bool>(),
        hw_idx in 0usize..7,
        preshift in any::<bool>(),
        tag_compare in any::<bool>(),
    ) {
        let b = &programs::all()[prog_idx % programs::all().len()];
        let mut opts = Options::new(
            ALL_SCHEMES[scheme_idx],
            if full_checking { CheckingMode::Full } else { CheckingMode::None },
        );
        opts.hw = hw_choices()[hw_idx];
        opts.preshifted_pair_tag = preshift;
        opts.int_test_method = if tag_compare {
            IntTestMethod::TagCompare
        } else {
            IntTestMethod::SignExtend
        };
        compile_and_verify(b.name, &opts);
    }
}
