//! Hazard and delay-slot edge cases for the post-codegen scheduler
//! (`mipsx::sched`): the interactions between load-delay padding and branch
//! delay-slot filling that the block-local pass must get right. Each case
//! runs the scheduled program on the simulator, whose dynamic load-delay
//! check is the final arbiter that no hazard survived.

use mipsx::sched::{schedule, schedule_and_attribute};
use mipsx::{Asm, Cpu, Executor, HwConfig, Insn, Program, Reg};

/// Finish a scheduled stream into a verified program.
fn finish(asm: Asm) -> Program {
    let prog = asm.finish().expect("assembles");
    mipsx::verify::verify(&prog).expect("verifies");
    prog
}

/// Run a verified program; returns (halt code, cycles). The simulator's
/// dynamic load-delay check makes any surviving hazard a hard failure here.
fn run_prog(prog: &Program) -> (i32, u64) {
    let o = Cpu::new(prog, HwConfig::plain(), 1 << 16)
        .run(100_000)
        .expect("runs");
    (o.halt_code, o.stats.cycles)
}

/// Finish + run in one step, for cases that don't inspect the layout.
fn run_code(asm: Asm) -> (i32, u64) {
    run_prog(&finish(asm))
}

/// A load's consumer may be hoisted into a branch delay slot: by the time
/// the slot issues (two cycles after the branch's predecessor) the load
/// delay has elapsed, so the move is legal and saves a cycle.
#[test]
fn load_consumer_may_fill_a_branch_delay_slot() {
    let mut asm = Asm::new();
    let e = asm.here("entry");
    asm.set_entry(e);
    asm.data(0x100, 21);
    let done = asm.new_label();
    asm.li(Reg::T5, 0x100);
    let block = asm.new_label();
    asm.bind(block);
    asm.ld(Reg::A0, Reg::T5, 0);
    asm.emit(Insn::Add(Reg::T2, Reg::A0, Reg::A0)); // consumer of the load
    asm.beq(Reg::Zero, Reg::Zero, done); // taken; 2 nop slots
    asm.li(Reg::T2, 99); // skipped
    asm.bind(done);
    asm.halt(Reg::T2);

    let mut s = asm;
    let rep = schedule(&mut s);
    // Pass 1 pads the ld→add hazard; pass 2 then moves the add into a slot.
    assert_eq!(rep.load_nops_inserted, 1);
    assert!(rep.slots_filled >= 1, "the consumer should fill a slot");
    let prog = finish(s);
    let branch_at = prog
        .insns
        .iter()
        .position(|i| matches!(i, Insn::Br { .. }))
        .expect("branch survives");
    assert_eq!(
        prog.insns[branch_at + 1],
        Insn::Add(Reg::T2, Reg::A0, Reg::A0),
        "the consumer sits in the first delay slot"
    );
    assert_eq!(run_prog(&prog).0, 42);
}

/// Hoisting an instruction out from between a load and that load's consumer
/// would make the consumer the load's immediate successor — a hazard the
/// padding pass already discharged. The filler must leave it in place.
#[test]
fn filler_never_recreates_a_load_use_hazard() {
    let mut asm = Asm::new();
    let e = asm.here("entry");
    asm.set_entry(e);
    asm.data(0x100, 21);
    let done = asm.new_label();
    asm.li(Reg::T5, 0x100);
    asm.li(Reg::T1, 3);
    let block = asm.new_label();
    asm.bind(block);
    asm.ld(Reg::A0, Reg::T5, 0);
    asm.emit(Insn::Add(Reg::T2, Reg::T1, Reg::T1)); // the only legal-looking candidate
    asm.emit(Insn::Add(Reg::T3, Reg::A0, Reg::A0)); // load consumer, feeds the condition
    asm.bne(Reg::T3, Reg::Zero, done); // 2 nop slots
    asm.li(Reg::T3, 99); // skipped
    asm.bind(done);
    asm.halt(Reg::T3);

    let mut s = asm;
    let rep = schedule(&mut s);
    // The condition producer cannot move, and moving the independent add
    // would leave `add T3, A0, A0` adjacent to the load — so nothing moves.
    assert_eq!(rep.slots_filled, 0, "no safe candidate exists");
    assert_eq!(rep.load_nops_inserted, 0, "ld's successor is independent");
    assert_eq!(run_code(s).0, 42);
}

/// Back-to-back dependent loads (a pointer chase) need a pad between each
/// load and its use — including when the use is itself a load.
#[test]
fn back_to_back_dependent_loads_are_each_padded() {
    let mut asm = Asm::new();
    let e = asm.here("entry");
    asm.set_entry(e);
    asm.data(0x100, 0x200); // mem[0x100] points at mem[0x200]
    asm.data(0x200, 42);
    asm.li(Reg::T5, 0x100);
    asm.ld(Reg::T0, Reg::T5, 0);
    asm.ld(Reg::T1, Reg::T0, 0); // address comes from the first load
    asm.emit(Insn::Add(Reg::A0, Reg::T1, Reg::T1)); // value from the second
    asm.halt(Reg::A0);

    let mut s = asm;
    let rep = schedule(&mut s);
    assert_eq!(rep.load_nops_inserted, 2, "one pad per dependent pair");
    assert_eq!(run_code(s).0, 84);
}

/// A branch that consumes a just-loaded register needs the same padding as
/// any other consumer — the condition read happens at issue.
#[test]
fn branch_reading_a_fresh_load_is_padded() {
    let mut asm = Asm::new();
    let e = asm.here("entry");
    asm.set_entry(e);
    asm.data(0x100, 1);
    let done = asm.new_label();
    asm.li(Reg::T5, 0x100);
    asm.ld(Reg::A0, Reg::T5, 0);
    asm.bne(Reg::A0, Reg::Zero, done); // uses A0 one cycle after the load
    asm.li(Reg::A0, 99); // skipped when mem[0x100] != 0
    asm.bind(done);
    asm.halt(Reg::A0);

    let mut s = asm;
    let rep = schedule(&mut s);
    assert_eq!(rep.load_nops_inserted, 1);
    assert_eq!(run_code(s).0, 1, "the taken path must still win");
}

/// Calls: a candidate that writes the link register must not move into the
/// `jal`'s delay slot — the slot executes after the call has written the
/// return address, so the hoist would clobber it.
#[test]
fn link_register_write_stays_out_of_the_call_slot() {
    let mut asm = Asm::new();
    let e = asm.here("entry");
    asm.set_entry(e);
    let sub = asm.new_label();
    let over = asm.new_label();
    asm.li(Reg::A0, 5);
    let block = asm.new_label();
    asm.bind(block);
    asm.emit(Insn::Addi(Reg::Link, Reg::Zero, 7)); // the only candidate: clobbers Link
    asm.jal(sub, Reg::Link); // 1 nop slot
    asm.j(over); // return lands here, then jump over the subroutine
    asm.bind(sub);
    asm.emit(Insn::Addi(Reg::A0, Reg::A0, 1));
    asm.jr(Reg::Link);
    asm.bind(over);
    asm.halt(Reg::A0);

    let mut s = asm;
    schedule(&mut s);
    let prog = finish(s);
    let jal_at = prog
        .insns
        .iter()
        .position(|i| matches!(i, Insn::Jal(..)))
        .expect("call survives");
    assert_eq!(
        prog.insns[jal_at + 1],
        Insn::Nop,
        "the link write must not move into the call's slot"
    );
    assert_eq!(run_prog(&prog).0, 6, "the return address must survive");
}

/// Two memory operations never reorder: a store may not jump over a load
/// (or vice versa) on the way into a delay slot, even to different
/// addresses — the pass is conservative by design.
#[test]
fn memory_operations_do_not_reorder_into_slots() {
    let mut asm = Asm::new();
    let e = asm.here("entry");
    asm.set_entry(e);
    asm.data(0x100, 1);
    let done = asm.new_label();
    asm.li(Reg::T5, 0x100);
    asm.li(Reg::T1, 9);
    let block = asm.new_label();
    asm.bind(block);
    asm.st(Reg::T1, Reg::T5, 4); // candidate-looking, but a memory op
    asm.ld(Reg::A0, Reg::T5, 4); // reads what the store wrote
    asm.nop();
    asm.beq(Reg::Zero, Reg::Zero, done); // 2 nop slots
    asm.li(Reg::A0, 99);
    asm.bind(done);
    asm.halt(Reg::A0);

    let mut s = asm;
    let rep = schedule(&mut s);
    assert_eq!(rep.slots_filled, 0, "neither memory op may move");
    let prog = finish(s);
    let st_at = prog
        .insns
        .iter()
        .position(|i| matches!(i, Insn::St { .. }))
        .expect("store survives");
    let ld_at = prog
        .insns
        .iter()
        .position(|i| matches!(i, Insn::Ld(..)))
        .expect("load survives");
    assert!(st_at < ld_at, "store and load kept their order");
    assert_eq!(run_prog(&prog).0, 9);
}

/// `schedule_and_attribute` after filling: slots that stay `nop` inherit the
/// branch's annotation, while a hoisted instruction keeps its own — the
/// attribution must follow the final layout, not the pre-fill one.
#[test]
fn attribution_tracks_the_filled_layout() {
    use mipsx::{Annot, TagOpKind};
    let mut asm = Asm::new();
    let e = asm.here("entry");
    asm.set_entry(e);
    let done = asm.new_label();
    asm.li(Reg::T0, 10);
    asm.li(Reg::T1, 20);
    asm.emit(Insn::Add(Reg::T2, Reg::T0, Reg::T1)); // plain-annot filler
    asm.with_annot(Annot::base(TagOpKind::Check), |a| {
        a.beq(Reg::Zero, Reg::Zero, done); // 2 nop slots, Check-annotated
    });
    asm.li(Reg::T2, 99);
    asm.bind(done);
    asm.halt(Reg::T2);

    let mut s = asm;
    let rep = schedule_and_attribute(&mut s);
    assert!(rep.slots_filled >= 1);
    let prog = s.finish().expect("assembles");
    let branch_at = prog
        .insns
        .iter()
        .position(|i| matches!(i, Insn::Br { .. }))
        .expect("branch survives");
    assert_eq!(
        prog.insns[branch_at + 1],
        Insn::Add(Reg::T2, Reg::T0, Reg::T1)
    );
    assert_eq!(
        prog.annots[branch_at + 1].tag_op, None,
        "the hoisted add keeps its own annotation"
    );
    assert_eq!(prog.insns[branch_at + 2], Insn::Nop);
    assert_eq!(
        prog.annots[branch_at + 2].tag_op,
        Some(TagOpKind::Check),
        "the leftover nop is charged to the branch's operation"
    );
}
