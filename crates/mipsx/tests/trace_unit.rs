//! Direct unit tests for the trace layer (`mipsx::trace`): `Retirement` field
//! population for loads, stores and traps, `TraceBuffer` bounding and
//! draining, and squash reporting. The conformance matrix exercises all of
//! this indirectly; these tests pin the contract itself.

use std::ops::ControlFlow;

use mipsx::trace::{MemOp, Observer, TraceBuffer};
use mipsx::{Asm, Cpu, Executor, HwConfig, Insn, Reg, SimError, TagField};

fn entry(asm: &mut Asm) {
    let e = asm.here("entry");
    asm.set_entry(e);
}

fn run_traced(asm: Asm, hw: HwConfig, buf: &mut TraceBuffer) -> Result<mipsx::Outcome, SimError> {
    let prog = asm.finish().expect("assembles");
    Cpu::new(&prog, hw, 1 << 16).run_observed(10_000, buf)
}

#[test]
fn load_retirement_reports_memop_and_writeback() {
    let mut asm = Asm::new();
    entry(&mut asm);
    asm.li(Reg::T0, 0x100);
    asm.li(Reg::T1, 42);
    asm.st(Reg::T1, Reg::T0, 4);
    asm.ld(Reg::A0, Reg::T0, 4);
    asm.nop();
    asm.halt(Reg::A0);
    let mut buf = TraceBuffer::new();
    let o = run_traced(asm, HwConfig::plain(), &mut buf).unwrap();
    assert_eq!(o.halt_code, 42);

    let load = buf
        .records
        .iter()
        .find(|r| matches!(r.insn, Insn::Ld(..)))
        .expect("the load retired");
    assert_eq!(
        load.mem,
        Some(MemOp {
            addr: 0x104,
            value: 42,
            store: false
        })
    );
    assert_eq!(
        load.write,
        Some((Reg::A0, 42)),
        "loads report the writeback"
    );
    assert_eq!(load.trap, None);

    // Annotation sidecar stays parallel, and cycles are strictly increasing.
    assert_eq!(buf.annotations.len(), buf.records.len());
    assert!(
        buf.annotations.windows(2).all(|w| w[0].1 < w[1].1),
        "cumulative cycles increase"
    );
}

#[test]
fn store_retirement_reports_memop_without_writeback() {
    let mut asm = Asm::new();
    entry(&mut asm);
    asm.li(Reg::T0, 0x200);
    asm.li(Reg::T1, 7);
    asm.st(Reg::T1, Reg::T0, 0);
    asm.halt(Reg::Zero);
    let mut buf = TraceBuffer::new();
    run_traced(asm, HwConfig::plain(), &mut buf).unwrap();

    let store = buf
        .records
        .iter()
        .find(|r| matches!(r.insn, Insn::St { .. }))
        .expect("the store retired");
    assert_eq!(
        store.mem,
        Some(MemOp {
            addr: 0x200,
            value: 7,
            store: true
        })
    );
    assert_eq!(store.write, None, "stores write no register");
    assert_eq!(store.trap, None);
}

#[test]
fn trapping_checked_load_reports_redirect_only() {
    let field = TagField {
        shift: 27,
        mask: 0x1F,
    };
    let mut asm = Asm::new();
    entry(&mut asm);
    let fail = asm.new_label();
    // Tag 3 in the top 5 bits; the checked load expects tag 1 → trap.
    asm.li(Reg::T0, ((3u32 << 27) | 0x80) as i32);
    asm.emit(Insn::LdChk {
        rd: Reg::A0,
        base: Reg::T0,
        disp: 0,
        field,
        expect: 1,
        on_fail: fail.id(),
    });
    asm.nop();
    asm.halt(Reg::Zero);
    asm.bind(fail);
    asm.li(Reg::A0, -1);
    asm.halt(Reg::A0);
    let hw = HwConfig {
        parallel_check: mipsx::ParallelCheck::All,
        drop_high_address_bits: 5,
        ..HwConfig::plain()
    };
    let mut buf = TraceBuffer::new();
    let o = run_traced(asm, hw, &mut buf).unwrap();
    assert_eq!(o.halt_code, -1, "the trap path ran");
    assert_eq!(o.stats.traps, 1);

    let trap = buf
        .records
        .iter()
        .find(|r| r.trap.is_some())
        .expect("the trapping retirement is reported");
    assert!(matches!(trap.insn, Insn::LdChk { .. }));
    assert_eq!(trap.write, None, "trapping retirements write nothing");
    assert_eq!(trap.mem, None, "trapping retirements access no memory");
    // The redirect target is where execution actually resumed.
    let target = trap.trap.unwrap();
    assert!(
        buf.records.iter().any(|r| r.pc == target),
        "execution continued at the trap target {target}"
    );
}

#[test]
fn squashed_slots_are_reported_separately() {
    use mipsx::Cond;
    let mut asm = Asm::new();
    entry(&mut asm);
    let t = asm.new_label();
    asm.li(Reg::A0, 1);
    asm.br_raw(Cond::Eq, Reg::A0, Reg::Zero, t, true); // not taken → squash both slots
    asm.li(Reg::A1, 5);
    asm.li(Reg::A1, 6);
    asm.halt(Reg::A1);
    asm.bind(t);
    asm.halt(Reg::Zero);
    let mut buf = TraceBuffer::new();
    let o = run_traced(asm, HwConfig::plain(), &mut buf).unwrap();
    assert_eq!(o.stats.squashed, 2);
    assert_eq!(buf.squashes.len(), 2, "both squashed slots reported");
    let branch_pc = buf
        .records
        .iter()
        .find(|r| matches!(r.insn, Insn::Br { .. }))
        .expect("branch retired")
        .pc;
    assert_eq!(
        buf.squashes[0].0,
        branch_pc + 1,
        "slot pcs follow the branch"
    );
    assert_eq!(buf.squashes[1].0, branch_pc + 2);
    // Squashed slots never retire.
    assert!(buf.records.iter().all(|r| r.pc != branch_pc + 1));
}

/// An infinite loop so the bound, not the program, ends the run.
fn looping_asm() -> Asm {
    let mut asm = Asm::new();
    entry(&mut asm);
    let top = asm.new_label();
    asm.bind(top);
    asm.emit(Insn::Addi(Reg::A0, Reg::A0, 1));
    asm.emit(Insn::J(top.id()));
    asm.nop();
    asm
}

#[test]
fn bounded_buffer_stops_the_run() {
    let mut buf = TraceBuffer::bounded(5);
    let err = run_traced(looping_asm(), HwConfig::plain(), &mut buf).unwrap_err();
    assert!(
        matches!(err, SimError::Stopped { .. }),
        "bounded buffer surfaces as Stopped, got {err:?}"
    );
    assert_eq!(buf.len(), 5, "exactly the bound is held");
    assert_eq!(buf.annotations.len(), 5);
}

#[test]
fn drain_empties_and_rearms_the_bound() {
    let mut buf = TraceBuffer::bounded(4);
    let _ = run_traced(looping_asm(), HwConfig::plain(), &mut buf);
    let (records, annotations, _squashes) = buf.drain();
    assert_eq!(records.len(), 4);
    assert_eq!(annotations.len(), 4);
    assert!(buf.is_empty(), "drain leaves the buffer empty");
    assert_eq!(buf.len(), 0);

    // The same buffer records a fresh window up to the bound again.
    let err = run_traced(looping_asm(), HwConfig::plain(), &mut buf).unwrap_err();
    assert!(matches!(err, SimError::Stopped { .. }));
    assert_eq!(buf.len(), 4);
}

#[test]
fn unbounded_buffer_records_to_completion() {
    let mut asm = Asm::new();
    entry(&mut asm);
    asm.li(Reg::A0, 9);
    asm.halt(Reg::A0);
    let mut buf = TraceBuffer::default();
    let o = run_traced(asm, HwConfig::plain(), &mut buf).unwrap();
    assert_eq!(o.halt_code, 9);
    assert!(!buf.is_empty());
    // Every retirement up to and including the halt is present.
    assert!(matches!(buf.records.last().unwrap().insn, Insn::Halt(_)));
    assert_eq!(buf.records.len() as u64, o.stats.committed);
}

/// `ControlFlow::Break` from a custom observer stops the run too — the trait
/// contract, not just the `TraceBuffer` convenience.
#[test]
fn custom_observer_break_stops_the_run() {
    struct StopAfter(u32);
    impl Observer for StopAfter {
        fn retire(
            &mut self,
            _ev: &mipsx::trace::Retirement,
            _annot: mipsx::Annot,
            _cycle: u64,
        ) -> ControlFlow<()> {
            self.0 -= 1;
            if self.0 == 0 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        }
    }
    let prog = looping_asm().finish().unwrap();
    let mut obs = StopAfter(7);
    let err = Cpu::new(&prog, HwConfig::plain(), 1 << 16)
        .run_observed(10_000, &mut obs)
        .unwrap_err();
    assert!(matches!(err, SimError::Stopped { .. }));
}
