//! Property test: the delay-slot scheduler never changes program semantics.
//!
//! Random structured programs (straight-line ALU/memory blocks joined by
//! branches and loops) are run unscheduled and scheduled; the final register
//! file image, memory effects (via a checksum) and cycle-count ordering are
//! compared.

use proptest::prelude::*;

use mipsx::{sched, verify, Asm, Cond, Cpu, Executor, HwConfig, Insn, Reg};

/// The registers random programs may touch (avoid the runtime-convention ones
/// so setup stays trivial).
const POOL: [Reg; 8] = [
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
];

#[derive(Debug, Clone)]
enum Op {
    Li(usize, i16),
    Add(usize, usize, usize),
    Sub(usize, usize, usize),
    Xor(usize, usize, usize),
    Sll(usize, usize, u8),
    St(usize, u8), // store reg to scratch slot
    Ld(usize, u8), // load scratch slot into reg
    Mov(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let r = 0usize..POOL.len();
    prop_oneof![
        (r.clone(), any::<i16>()).prop_map(|(d, v)| Op::Li(d, v)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(d, a, b)| Op::Add(d, a, b)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(d, a, b)| Op::Sub(d, a, b)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(d, a, b)| Op::Xor(d, a, b)),
        (r.clone(), r.clone(), 0u8..8).prop_map(|(d, a, s)| Op::Sll(d, a, s)),
        (r.clone(), 0u8..16).prop_map(|(a, s)| Op::St(a, s)),
        (r.clone(), 0u8..16).prop_map(|(a, s)| Op::Ld(a, s)),
        (r.clone(), r).prop_map(|(d, a)| Op::Mov(d, a)),
    ]
}

/// A program: a few blocks of straight-line ops; after each block, branch to
/// the next block or conditionally skip it. A counted loop wraps the whole
/// thing so branches go both ways.
#[derive(Debug, Clone)]
struct Prog {
    blocks: Vec<Vec<Op>>,
    loop_count: i32,
}

fn prog_strategy() -> impl Strategy<Value = Prog> {
    (
        prop::collection::vec(prop::collection::vec(op_strategy(), 1..10), 1..5),
        1i32..4,
    )
        .prop_map(|(blocks, loop_count)| Prog { blocks, loop_count })
}

const SCRATCH_BASE: i32 = 0x100;

fn emit(prog: &Prog, asm: &mut Asm) {
    let entry = asm.here("entry");
    asm.set_entry(entry);
    // counter in S0, scratch base in S1
    asm.li(Reg::S0, prog.loop_count);
    asm.li(Reg::S1, SCRATCH_BASE);
    // deterministic initial registers
    for (i, r) in POOL.iter().enumerate() {
        asm.li(*r, (i as i32 + 1) * 3);
    }
    let top = asm.new_label();
    asm.bind(top);
    for (bi, block) in prog.blocks.iter().enumerate() {
        for op in block {
            match *op {
                Op::Li(d, v) => asm.li(POOL[d], i32::from(v)),
                Op::Add(d, a, b) => asm.emit(Insn::Add(POOL[d], POOL[a], POOL[b])),
                Op::Sub(d, a, b) => asm.emit(Insn::Sub(POOL[d], POOL[a], POOL[b])),
                Op::Xor(d, a, b) => asm.emit(Insn::Xor(POOL[d], POOL[a], POOL[b])),
                Op::Sll(d, a, s) => asm.emit(Insn::Sll(POOL[d], POOL[a], s)),
                Op::St(a, s) => asm.st(POOL[a], Reg::S1, i32::from(s) * 4),
                Op::Ld(a, s) => {
                    // Naive codegen always pads the load delay; the scheduler's
                    // job here is filling branch slots (the load-delay inserter
                    // is exercised separately by the compiler's tests).
                    asm.ld(POOL[a], Reg::S1, i32::from(s) * 4);
                    asm.nop();
                }
                Op::Mov(d, a) => asm.mov(POOL[d], POOL[a]),
            }
        }
        // conditionally skip a marker write (gives the scheduler branches to fill)
        let skip = asm.new_label();
        asm.br(Cond::Lt, POOL[bi % POOL.len()], Reg::Zero, skip);
        asm.st(POOL[(bi + 1) % POOL.len()], Reg::S1, 60);
        asm.bind(skip);
    }
    asm.emit(Insn::Addi(Reg::S0, Reg::S0, -1));
    asm.br(Cond::Gt, Reg::S0, Reg::Zero, top);
    // checksum registers + scratch memory into A0
    asm.li(Reg::T9, 0);
    for r in POOL {
        asm.emit(Insn::Xor(Reg::T9, Reg::T9, r));
        asm.emit(Insn::Sll(Reg::T9, Reg::T9, 1));
    }
    for s in 0..16 {
        asm.ld(Reg::T8, Reg::S1, s * 4);
        asm.nop();
        asm.emit(Insn::Xor(Reg::T9, Reg::T9, Reg::T8));
    }
    asm.halt(Reg::T9);
}

fn run_prog(prog: &Prog, schedule: bool) -> (i32, u64) {
    let mut asm = Asm::new();
    emit(prog, &mut asm);
    if schedule {
        sched::schedule_and_attribute(&mut asm);
    }
    let p = asm.finish().expect("assembles");
    verify::verify(&p).expect("verifies");
    let o = Cpu::new(&p, HwConfig::plain(), 1 << 16)
        .run(5_000_000)
        .expect("runs");
    (o.halt_code, o.stats.cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scheduling preserves the final machine state and never adds cycles
    /// beyond load-delay padding.
    #[test]
    fn scheduling_preserves_semantics(prog in prog_strategy()) {
        let (r0, c0) = run_prog(&prog, false);
        let (r1, c1) = run_prog(&prog, true);
        prop_assert_eq!(r0, r1, "scheduled program diverged");
        // Padding may add a cycle per load hazard; filling saves cycles. Allow
        // a generous bound in the padding direction but require the scheduler
        // never to be pathologically worse.
        prop_assert!(c1 <= c0 + 64, "scheduler made things much slower: {c0} -> {c1}");
    }
}
