//! The differential-fuzzing fleet's persistent artifacts: content-addressed
//! **witness records** and the campaign **coverage ledger**.
//!
//! A witness is a shrunk, replayable counterexample: the exact source, the
//! configuration column (scheme × checking × hw × backend), the injected
//! fault (if any), and what diverged. Witnesses live in a `witnesses/` area
//! beside the measurement records and get the same durability discipline:
//! versioned envelopes, checksums over a canonical re-encoding,
//! write-to-temp + atomic rename, and quarantine (never trust, never crash)
//! on any validation failure.
//!
//! The coverage ledger makes campaigns cumulative: it counts completed
//! program runs per `(op-mix cell | config column)` coverage cell, persisted
//! after every program, so a killed and restarted campaign (`tagctl fuzz
//! --resume`) picks up exactly where the previous one stopped instead of
//! re-fuzzing covered cells.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tagstudy::{Config, Json};

use crate::record::{config_from_json, config_to_json};
use crate::{fnv1a64, StoreKey, NAME_SEQ};

/// Version of the witness / ledger on-disk formats (independent of the
/// measurement-record [`crate::FORMAT_VERSION`] — the two kinds evolve
/// separately). Bump on any encoding change; files carrying any other
/// version are quarantined on read.
pub const FUZZ_FORMAT_VERSION: u64 = 1;

/// Extension of witness files under the witness root.
const WITNESS_EXT: &str = "wit";

/// File name of the coverage ledger under the witness root.
const LEDGER_FILE: &str = "ledger.json";

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?.as_u64(key)
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    get(obj, key)?.as_str(key)
}

// ---------------------------------------------------------------------------
// Witness records
// ---------------------------------------------------------------------------

/// A shrunk, replayable divergence found by the fuzzing fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// The generator seed that produced the original (pre-shrink) program.
    pub seed: u64,
    /// The op-mix the program was drawn from (`OpMix` display form).
    pub mix: String,
    /// The coverage cell (`profile@step`) the program was steered at.
    pub cell: String,
    /// Human-readable column label, e.g. `high5:full:maximal:classic`.
    pub column: String,
    /// The configuration of the diverging column (backend **not** included —
    /// see [`Witness::backend`]).
    pub config: Config,
    /// The simulator backend of the diverging column (`classic`/`fast`/`ref`).
    pub backend: String,
    /// The injected fault, e.g. `branch-invert:1`, or `None` for an organic
    /// divergence.
    pub fault: Option<String>,
    /// The divergence kind (`Halt`, `Output`, `Census`, `Compile`, `Sim`).
    pub kind: String,
    /// Human-readable specifics (expected vs got).
    pub detail: String,
    /// The shrunk program source — the replayable artifact.
    pub source: String,
    /// Top-level form count of the shrunk program.
    pub forms: u64,
}

impl Witness {
    /// The content address of this witness: derived from the source, the
    /// column, the fault, and the kind — so the same divergence found twice
    /// deduplicates into one record, while distinct columns or kinds of the
    /// same source are distinct witnesses.
    pub fn key(&self) -> StoreKey {
        StoreKey::of_material(&format!(
            "tagstudy-witness/v{FUZZ_FORMAT_VERSION}\0{}\0{}\0{}\0{}\0{}",
            self.source,
            config_to_json(&self.config),
            self.backend,
            self.fault.as_deref().unwrap_or("-"),
            self.kind,
        ))
    }

    /// The configuration with the recorded backend re-applied — what a
    /// replayer should execute under.
    ///
    /// # Errors
    ///
    /// An unknown backend name (a record carrying one would have been written
    /// by a future format and should not be trusted).
    pub fn config_with_backend(&self) -> Result<Config, String> {
        let backend = mipsx::Backend::from_name(&self.backend)
            .ok_or_else(|| format!("unknown backend {:?}", self.backend))?;
        Ok(self.config.with_backend(backend))
    }
}

fn witness_payload_json(w: &Witness) -> String {
    format!(
        "{{\"seed\":{},\"mix\":{},\"cell\":{},\"column\":{},\"config\":{},\"backend\":{},\
         \"fault\":{},\"kind\":{},\"detail\":{},\"source\":{},\"forms\":{}}}",
        w.seed,
        json_str(&w.mix),
        json_str(&w.cell),
        json_str(&w.column),
        config_to_json(&w.config),
        json_str(&w.backend),
        w.fault.as_deref().map_or("null".to_string(), json_str),
        json_str(&w.kind),
        json_str(&w.detail),
        json_str(&w.source),
        w.forms,
    )
}

/// The full on-disk witness record: versioned envelope, content key, payload
/// checksum, payload.
pub fn witness_to_json(w: &Witness) -> String {
    let payload = witness_payload_json(w);
    format!(
        "{{\"format_version\":{FUZZ_FORMAT_VERSION},\"key\":{},\"checksum\":\"{:016x}\",\
         \"witness\":{payload}}}\n",
        json_str(w.key().as_str()),
        fnv1a64(payload.as_bytes()),
    )
}

fn witness_payload_from_json(v: &Json) -> Result<Witness, String> {
    let obj = v.as_object("witness")?;
    let fault = match get(obj, "fault")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        other => return Err(format!("fault: expected string or null, got {other:?}")),
    };
    Ok(Witness {
        seed: get_u64(obj, "seed")?,
        mix: get_str(obj, "mix")?.to_string(),
        cell: get_str(obj, "cell")?.to_string(),
        column: get_str(obj, "column")?.to_string(),
        config: config_from_json(get(obj, "config")?)?,
        backend: get_str(obj, "backend")?.to_string(),
        fault,
        kind: get_str(obj, "kind")?.to_string(),
        detail: get_str(obj, "detail")?.to_string(),
        source: get_str(obj, "source")?.to_string(),
        forms: get_u64(obj, "forms")?,
    })
}

/// Decode and validate one witness record: envelope version, checksum over
/// the canonical re-encoding, and the content address must all check out.
///
/// # Errors
///
/// A description of why the record cannot be trusted; callers quarantine on
/// any error.
pub fn witness_from_json(text: &str) -> Result<(StoreKey, Witness), String> {
    let root = Json::parse(text)?;
    let obj = root.as_object("witness record")?;
    let version = get_u64(obj, "format_version")?;
    if version != FUZZ_FORMAT_VERSION {
        return Err(format!(
            "stale witness format version {version} (current is {FUZZ_FORMAT_VERSION})"
        ));
    }
    let key = StoreKey::from_hex(get_str(obj, "key")?)?;
    let stored_checksum = get_str(obj, "checksum")?;
    let witness = witness_payload_from_json(get(obj, "witness")?)?;
    let canonical = witness_payload_json(&witness);
    let computed = format!("{:016x}", fnv1a64(canonical.as_bytes()));
    if computed != stored_checksum {
        return Err(format!(
            "checksum mismatch: stored {stored_checksum}, computed {computed}"
        ));
    }
    if witness.key() != key {
        return Err(format!(
            "key mismatch: envelope says {key}, content addresses to {}",
            witness.key()
        ));
    }
    Ok((key, witness))
}

// ---------------------------------------------------------------------------
// Coverage ledger
// ---------------------------------------------------------------------------

/// Completed-run counts per coverage cell, with a saturation target.
///
/// A cell key is `"{mix-cell}|{column-label}"`; a cell is *saturated* once
/// its count reaches the target. The campaign identity string pins every
/// parameter that shapes the cell space (seed base, axis points, target,
/// backends), so a resumed campaign can refuse a ledger written by a
/// different campaign instead of silently mixing counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageLedger {
    campaign: String,
    target: u64,
    cells: BTreeMap<String, u64>,
}

impl CoverageLedger {
    /// An empty ledger for `campaign`, saturating each cell at `target` runs.
    pub fn new(campaign: impl Into<String>, target: u64) -> CoverageLedger {
        CoverageLedger {
            campaign: campaign.into(),
            target: target.max(1),
            cells: BTreeMap::new(),
        }
    }

    /// The campaign identity this ledger belongs to.
    pub fn campaign(&self) -> &str {
        &self.campaign
    }

    /// Runs required to saturate one cell.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Register `cell` at zero runs if it is not yet present — so the ledger
    /// enumerates the whole cell space from the first persist, and coverage
    /// percentages are meaningful immediately.
    pub fn register(&mut self, cell: &str) {
        self.cells.entry(cell.to_string()).or_insert(0);
    }

    /// Completed runs of `cell` (zero for unknown cells).
    pub fn count(&self, cell: &str) -> u64 {
        self.cells.get(cell).copied().unwrap_or(0)
    }

    /// Record one completed run of `cell`.
    pub fn bump(&mut self, cell: &str) {
        *self.cells.entry(cell.to_string()).or_insert(0) += 1;
    }

    /// Whether `cell` has reached the target.
    pub fn is_saturated(&self, cell: &str) -> bool {
        self.count(cell) >= self.target
    }

    /// Iterate over `(cell, count)` in deterministic (sorted) order.
    pub fn cells(&self) -> impl Iterator<Item = (&str, u64)> {
        self.cells.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are registered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total runs recorded, counting each cell at most at the target (the
    /// numerator of [`CoverageLedger::coverage_percent`]).
    pub fn covered_runs(&self) -> u64 {
        self.cells.values().map(|c| (*c).min(self.target)).sum()
    }

    /// Saturation of the registered cell space, in percent (100.0 when every
    /// cell has reached the target; 0.0 for an empty ledger).
    pub fn coverage_percent(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        100.0 * self.covered_runs() as f64 / (self.target * self.cells.len() as u64) as f64
    }

    /// Whether every registered cell is saturated.
    pub fn complete(&self) -> bool {
        !self.cells.is_empty() && self.cells.values().all(|c| *c >= self.target)
    }

    fn payload_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|(k, v)| format!("[{},{v}]", json_str(k)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"campaign\":{},\"target\":{},\"cells\":[{cells}]}}",
            json_str(&self.campaign),
            self.target,
        )
    }

    /// The full on-disk ledger document: versioned, checksummed.
    pub fn to_json(&self) -> String {
        let payload = self.payload_json();
        format!(
            "{{\"format_version\":{FUZZ_FORMAT_VERSION},\"checksum\":\"{:016x}\",\
             \"ledger\":{payload}}}\n",
            fnv1a64(payload.as_bytes()),
        )
    }

    /// Decode and validate a ledger document.
    ///
    /// # Errors
    ///
    /// A description of why the ledger cannot be trusted; callers quarantine
    /// on any error.
    pub fn from_json(text: &str) -> Result<CoverageLedger, String> {
        let root = Json::parse(text)?;
        let obj = root.as_object("ledger record")?;
        let version = get_u64(obj, "format_version")?;
        if version != FUZZ_FORMAT_VERSION {
            return Err(format!(
                "stale ledger format version {version} (current is {FUZZ_FORMAT_VERSION})"
            ));
        }
        let stored_checksum = get_str(obj, "checksum")?;
        let payload = get(obj, "ledger")?.as_object("ledger")?;
        let mut ledger = CoverageLedger::new(
            get_str(payload, "campaign")?,
            get_u64(payload, "target")?,
        );
        for entry in get(payload, "cells")?.as_array("cells")? {
            let pair = entry.as_array("cell entry")?;
            let [cell, count] = pair else {
                return Err(format!("cell entry: want [cell, count], got {pair:?}"));
            };
            ledger
                .cells
                .insert(cell.as_str("cell")?.to_string(), count.as_u64("count")?);
        }
        let canonical = ledger.payload_json();
        let computed = format!("{:016x}", fnv1a64(canonical.as_bytes()));
        if computed != stored_checksum {
            return Err(format!(
                "checksum mismatch: stored {stored_checksum}, computed {computed}"
            ));
        }
        Ok(ledger)
    }
}

// ---------------------------------------------------------------------------
// The on-disk store
// ---------------------------------------------------------------------------

/// The persistent witness corpus plus coverage ledger, rooted at a
/// `witnesses/`-style directory. Same discipline as [`crate::ResultStore`]:
/// atomic writes, quarantine on any validation failure, never fatal.
#[derive(Debug)]
pub struct FuzzStore {
    root: PathBuf,
    quarantined: AtomicU64,
}

impl FuzzStore {
    /// Open (creating if needed) a fuzz store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<FuzzStore> {
        let root = dir.into();
        fs::create_dir_all(root.join("quarantine"))?;
        Ok(FuzzStore {
            root,
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the coverage ledger (what CI uploads as an artifact).
    pub fn ledger_path(&self) -> PathBuf {
        self.root.join(LEDGER_FILE)
    }

    fn witness_path(&self, key: &StoreKey) -> PathBuf {
        self.root.join(format!("{key}.{WITNESS_EXT}"))
    }

    fn write_atomic(&self, dest: &Path, text: &str) -> std::io::Result<()> {
        let temp = self.root.join(format!(
            "tmp-{}-{}",
            std::process::id(),
            NAME_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&temp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&temp, dest)
    }

    /// Durably archive one witness under its content address. Re-archiving
    /// the same divergence overwrites with identical bytes, so the corpus
    /// deduplicates naturally.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn put_witness(&self, w: &Witness) -> std::io::Result<StoreKey> {
        let key = w.key();
        self.write_atomic(&self.witness_path(&key), &witness_to_json(w))?;
        Ok(key)
    }

    /// Look up a witness by key; an invalid record is quarantined and `None`.
    pub fn get_witness(&self, key: &StoreKey) -> Option<Witness> {
        let path = self.witness_path(key);
        let text = fs::read_to_string(&path).ok()?;
        match witness_from_json(&text) {
            Ok((stored_key, w)) if stored_key == *key => Some(w),
            Ok((stored_key, _)) => {
                self.quarantine(&path, &format!("key mismatch: record says {stored_key}"));
                None
            }
            Err(why) => {
                self.quarantine(&path, &why);
                None
            }
        }
    }

    /// Validate and load every witness, quarantining the invalid ones.
    /// Sorted by key for deterministic iteration.
    pub fn load_witnesses(&self) -> Vec<(StoreKey, Witness)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.root) else {
            return out;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(WITNESS_EXT) || !path.is_file() {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if stem.starts_with("tmp-") {
                continue;
            }
            let Ok(key) = StoreKey::from_hex(stem) else {
                self.quarantine(&path, "malformed witness file name");
                continue;
            };
            match fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| witness_from_json(&text))
            {
                Ok((stored_key, w)) if stored_key == key => out.push((key, w)),
                Ok((stored_key, _)) => {
                    self.quarantine(&path, &format!("key mismatch: record says {stored_key}"))
                }
                Err(why) => self.quarantine(&path, &why),
            }
        }
        out.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        out
    }

    /// Number of (untrusted, unparsed) witness files on disk.
    pub fn witness_count(&self) -> usize {
        fs::read_dir(&self.root)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| {
                        e.path().extension().and_then(|x| x.to_str()) == Some(WITNESS_EXT)
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Number of files in `quarantine/`.
    pub fn quarantine_count(&self) -> usize {
        fs::read_dir(self.root.join("quarantine"))
            .map(|entries| entries.flatten().count())
            .unwrap_or(0)
    }

    /// Durably persist the coverage ledger (atomic replace).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn store_ledger(&self, ledger: &CoverageLedger) -> std::io::Result<()> {
        self.write_atomic(&self.ledger_path(), &ledger.to_json())
    }

    /// Load the coverage ledger; a missing ledger is `None`, an invalid one
    /// is quarantined and also `None` (the campaign restarts from zero —
    /// wasteful, never wrong).
    pub fn load_ledger(&self) -> Option<CoverageLedger> {
        let path = self.ledger_path();
        let text = fs::read_to_string(&path).ok()?;
        match CoverageLedger::from_json(&text) {
            Ok(ledger) => Some(ledger),
            Err(why) => {
                self.quarantine(&path, &why);
                None
            }
        }
    }

    /// Remove the coverage ledger if present (a fresh, non-resumed campaign
    /// starts its books from zero).
    pub fn reset_ledger(&self) {
        let _ = fs::remove_file(self.ledger_path());
    }

    fn quarantine(&self, path: &Path, why: &str) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("record");
        let dest = self.root.join("quarantine").join(format!(
            "{name}.{}-{}",
            std::process::id(),
            NAME_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::rename(path, &dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            eprintln!("[fuzz-store] quarantined {name}: {why}");
        }
    }
}
