//! The on-disk record codec: deterministic JSON for a [`Measurement`] plus its
//! [`Timing`], wrapped in a versioned, checksummed envelope.
//!
//! Everything here is exact: all numeric fields are `u64`/`usize` counters or
//! `Duration` nanoseconds, map-shaped statistics are emitted as arrays sorted
//! by key, and enum variants are written by name — so encode → decode → encode
//! is byte-identical, which is what lets a checksum over the payload text
//! detect any corruption.

use std::time::Duration;

use mipsx::{
    CheckCat, HwConfig, InsnClass, ParallelCheck, Provenance, Stats, TagOpKind, ALL_CHECK_CATS,
    ALL_CLASSES, ALL_TAG_OPS,
};
use tagstudy::{CheckingMode, Config, Json, Measurement, Timing};

use crate::{fnv1a64, StoreKey, FORMAT_VERSION};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The canonical JSON encoding of a [`Config`] — every field spelled out, so
/// adding a field to `Config` changes the encoding (and therefore every store
/// key) instead of silently aliasing distinct configurations.
///
/// The one deliberate exception: an **ideal** timing model is encoded by
/// *omitting* the `timing` key entirely, so every pre-timing content address
/// (and stored record) stays byte-identical. A non-ideal model appends its
/// full structure — a different address, as it must be: the measurement
/// carries a stall breakdown the ideal one lacks.
pub fn config_to_json(c: &Config) -> String {
    let hw = c.hw;
    let timing = if c.timing.is_ideal() {
        String::new()
    } else {
        format!(",\"timing\":{}", timing_config_to_json(&c.timing))
    };
    format!(
        "{{\"scheme\":{},\"checking\":\"{:?}\",\"hw\":{{\"drop_high_address_bits\":{},\
         \"tag_branch\":{},\"parallel_check\":\"{:?}\",\"generic_arith\":{},\
         \"trap_penalty\":{},\"mul_cycles\":{},\"div_cycles\":{},\"fp_cycles\":{}}},\
         \"preshifted_pair_tag\":{},\"int_test_method\":\"{:?}\"{timing}}}",
        json_str(c.scheme.name()),
        c.checking,
        hw.drop_high_address_bits,
        hw.tag_branch,
        hw.parallel_check,
        hw.generic_arith,
        hw.trap_penalty,
        hw.mul_cycles,
        hw.div_cycles,
        hw.fp_cycles,
        c.preshifted_pair_tag,
        c.int_test_method,
    )
}

fn cache_params_to_json(p: &mipsx::CacheParams) -> String {
    format!(
        "{{\"size\":{},\"ways\":{},\"line\":{}}}",
        p.size, p.ways, p.line
    )
}

/// Canonical encoding of a non-ideal [`mipsx::TimingConfig`]: structural, not
/// by preset name, so a retuned preset in a future version cannot silently
/// alias records measured under the old numbers.
fn timing_config_to_json(t: &mipsx::TimingConfig) -> String {
    format!(
        "{{\"l1i\":{},\"l1d\":{},\"l2\":{},\"l2_latency\":{},\"mem_latency\":{},\
         \"predictor\":\"{:?}\",\"predictor_bits\":{},\"btb_bits\":{},\
         \"mispredict_penalty\":{},\"load_latency\":{}}}",
        cache_params_to_json(&t.l1i),
        cache_params_to_json(&t.l1d),
        cache_params_to_json(&t.l2),
        t.l2_latency,
        t.mem_latency,
        t.predictor,
        t.predictor_bits,
        t.btb_bits,
        t.mispredict_penalty,
        t.load_latency,
    )
}

fn stats_to_json(s: &Stats) -> String {
    // Map-shaped fields are sorted by their report-order name so the encoding
    // is deterministic regardless of HashMap iteration order.
    let mut classes: Vec<(&str, u64)> =
        s.class_counts.iter().map(|(k, v)| (k.name(), *v)).collect();
    classes.sort_unstable();
    let mut tags: Vec<(String, String, u64)> = s
        .tag_cycles
        .iter()
        .map(|((op, prov), v)| (format!("{op:?}"), format!("{prov:?}"), *v))
        .collect();
    tags.sort();
    let mut cats: Vec<(String, u64)> = s
        .check_cat_cycles
        .iter()
        .map(|(k, v)| (format!("{k:?}"), *v))
        .collect();
    cats.sort();

    let classes = classes
        .iter()
        .map(|(k, v)| format!("[{},{v}]", json_str(k)))
        .collect::<Vec<_>>()
        .join(",");
    let tags = tags
        .iter()
        .map(|(op, prov, v)| format!("[{},{},{v}]", json_str(op), json_str(prov)))
        .collect::<Vec<_>>()
        .join(",");
    let cats = cats
        .iter()
        .map(|(k, v)| format!("[{},{v}]", json_str(k)))
        .collect::<Vec<_>>()
        .join(",");
    let timing = match &s.timing {
        None => String::new(),
        Some(t) => format!(",\"timing\":{}", timing_stats_to_json(t)),
    };
    format!(
        "{{\"cycles\":{},\"committed\":{},\"squashed\":{},\"trap_cycles\":{},\"traps\":{},\
         \"class_counts\":[{classes}],\"tag_cycles\":[{tags}],\"check_cat_cycles\":[{cats}]{timing}}}",
        s.cycles, s.committed, s.squashed, s.trap_cycles, s.traps,
    )
}

fn timing_stats_to_json(t: &mipsx::TimingStats) -> String {
    format!(
        "{{\"stall_icache\":{},\"stall_dcache\":{},\"stall_mispredict\":{},\
         \"stall_load_use\":{},\"icache_accesses\":{},\"icache_misses\":{},\
         \"dcache_accesses\":{},\"dcache_misses\":{},\"l2_accesses\":{},\"l2_misses\":{},\
         \"branches\":{},\"mispredicts\":{}}}",
        t.stall_icache,
        t.stall_dcache,
        t.stall_mispredict,
        t.stall_load_use,
        t.icache_accesses,
        t.icache_misses,
        t.dcache_accesses,
        t.dcache_misses,
        t.l2_accesses,
        t.l2_misses,
        t.branches,
        t.mispredicts,
    )
}

/// The deterministic JSON encoding of a measurement *without* host timing —
/// everything in it is a simulator-determined value, so two runs of the same
/// `(program, Config)` point encode byte-identically. This is the payload the
/// daemon serves.
pub fn measurement_to_json(m: &Measurement) -> String {
    format!(
        "{{\"program\":{},\"config\":{},\"stats\":{},\"compile\":{{\"procedures\":{},\
         \"source_lines\":{},\"object_words\":{}}},\"halt_code\":{},\"output\":{}}}",
        json_str(&m.program),
        config_to_json(&m.config),
        stats_to_json(&m.stats),
        m.compile.procedures,
        m.compile.source_lines,
        m.compile.object_words,
        m.halt_code,
        json_str(&m.output),
    )
}

/// The record payload: the measurement plus the host-side wall time the
/// original computation cost (kept so a warm-started session can still report
/// a meaningful compile/simulate split).
pub fn payload_to_json(m: &Measurement, t: &Timing) -> String {
    format!(
        "{{\"measurement\":{},\"timing\":{{\"compile_ns\":{},\"simulate_ns\":{}}}}}",
        measurement_to_json(m),
        t.compile.as_nanos(),
        t.simulate.as_nanos(),
    )
}

/// A full on-disk record: versioned envelope, key, payload checksum, payload.
pub fn record_to_json(key: &StoreKey, m: &Measurement, t: &Timing) -> String {
    let payload = payload_to_json(m, t);
    format!(
        "{{\"format_version\":{FORMAT_VERSION},\"key\":{},\"checksum\":\"{:016x}\",\
         \"payload\":{payload}}}\n",
        json_str(key.as_str()),
        fnv1a64(payload.as_bytes()),
    )
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?.as_u64(key)
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    get(obj, key)?.as_str(key)
}

fn get_bool(obj: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("{key}: expected bool, got {other:?}")),
    }
}

fn parse_variant<T: Copy>(
    what: &str,
    name: &str,
    all: &[T],
    variant_name: impl Fn(&T) -> String,
) -> Result<T, String> {
    all.iter()
        .find(|v| variant_name(v) == name)
        .copied()
        .ok_or_else(|| format!("{what}: unknown variant {name:?}"))
}

/// Decode a [`Config`] from its [`config_to_json`] encoding. The backend is
/// never serialized (it is not part of a config's identity), so decoded
/// configs carry [`mipsx::Backend::default`]; callers that routed a specific
/// backend must re-apply it.
///
/// # Errors
///
/// A description of the first schema violation.
pub fn config_from_json(v: &Json) -> Result<Config, String> {
    let obj = v.as_object("config")?;
    let scheme = parse_variant(
        "scheme",
        get_str(obj, "scheme")?,
        &tagword::ALL_SCHEMES,
        |s| s.name().to_string(),
    )?;
    let checking = parse_variant(
        "checking",
        get_str(obj, "checking")?,
        &[CheckingMode::None, CheckingMode::Full],
        |c| format!("{c:?}"),
    )?;
    let hw_obj = get(obj, "hw")?.as_object("hw")?;
    let parallel_check = parse_variant(
        "parallel_check",
        get_str(hw_obj, "parallel_check")?,
        &[
            ParallelCheck::None,
            ParallelCheck::Lists,
            ParallelCheck::All,
        ],
        |p| format!("{p:?}"),
    )?;
    let as_u32 = |key: &str| -> Result<u32, String> {
        u32::try_from(get_u64(hw_obj, key)?).map_err(|_| format!("{key}: out of range"))
    };
    let hw = HwConfig {
        drop_high_address_bits: as_u32("drop_high_address_bits")?,
        tag_branch: get_bool(hw_obj, "tag_branch")?,
        parallel_check,
        generic_arith: get_bool(hw_obj, "generic_arith")?,
        trap_penalty: as_u32("trap_penalty")?,
        mul_cycles: as_u32("mul_cycles")?,
        div_cycles: as_u32("div_cycles")?,
        fp_cycles: as_u32("fp_cycles")?,
    };
    let int_test_method = parse_variant(
        "int_test_method",
        get_str(obj, "int_test_method")?,
        &[
            lisp::IntTestMethod::SignExtend,
            lisp::IntTestMethod::TagCompare,
        ],
        |m| format!("{m:?}"),
    )?;
    // An absent `timing` key is the ideal model (the encoding every
    // pre-timing record carries).
    let timing = match obj.iter().find(|(k, _)| k == "timing") {
        None => mipsx::TimingConfig::ideal(),
        Some((_, v)) => timing_config_from_json(v)?,
    };
    Ok(Config {
        scheme,
        checking,
        hw,
        preshifted_pair_tag: get_bool(obj, "preshifted_pair_tag")?,
        int_test_method,
        // The backend is not part of a config's identity (results are
        // backend-independent), so it is never serialized; loads get the
        // default.
        backend: mipsx::Backend::default(),
        timing,
    })
}

fn cache_params_from_json(v: &Json, what: &str) -> Result<mipsx::CacheParams, String> {
    let obj = v.as_object(what)?;
    let as_u32 = |key: &str| -> Result<u32, String> {
        u32::try_from(get_u64(obj, key)?).map_err(|_| format!("{what}.{key}: out of range"))
    };
    Ok(mipsx::CacheParams {
        size: as_u32("size")?,
        ways: as_u32("ways")?,
        line: as_u32("line")?,
    })
}

fn timing_config_from_json(v: &Json) -> Result<mipsx::TimingConfig, String> {
    let obj = v.as_object("timing config")?;
    let as_u32 = |key: &str| -> Result<u32, String> {
        u32::try_from(get_u64(obj, key)?).map_err(|_| format!("timing.{key}: out of range"))
    };
    let as_u8 = |key: &str| -> Result<u8, String> {
        u8::try_from(get_u64(obj, key)?).map_err(|_| format!("timing.{key}: out of range"))
    };
    let predictor = parse_variant(
        "predictor",
        get_str(obj, "predictor")?,
        &[
            mipsx::PredictorKind::NotTaken,
            mipsx::PredictorKind::Bimodal,
            mipsx::PredictorKind::Gshare,
        ],
        |p| format!("{p:?}"),
    )?;
    Ok(mipsx::TimingConfig {
        // Only non-ideal configs are ever serialized.
        enabled: true,
        l1i: cache_params_from_json(get(obj, "l1i")?, "timing.l1i")?,
        l1d: cache_params_from_json(get(obj, "l1d")?, "timing.l1d")?,
        l2: cache_params_from_json(get(obj, "l2")?, "timing.l2")?,
        l2_latency: as_u32("l2_latency")?,
        mem_latency: as_u32("mem_latency")?,
        predictor,
        predictor_bits: as_u8("predictor_bits")?,
        btb_bits: as_u8("btb_bits")?,
        mispredict_penalty: as_u32("mispredict_penalty")?,
        load_latency: as_u32("load_latency")?,
    })
}

fn timing_stats_from_json(v: &Json) -> Result<mipsx::TimingStats, String> {
    let obj = v.as_object("timing stats")?;
    Ok(mipsx::TimingStats {
        stall_icache: get_u64(obj, "stall_icache")?,
        stall_dcache: get_u64(obj, "stall_dcache")?,
        stall_mispredict: get_u64(obj, "stall_mispredict")?,
        stall_load_use: get_u64(obj, "stall_load_use")?,
        icache_accesses: get_u64(obj, "icache_accesses")?,
        icache_misses: get_u64(obj, "icache_misses")?,
        dcache_accesses: get_u64(obj, "dcache_accesses")?,
        dcache_misses: get_u64(obj, "dcache_misses")?,
        l2_accesses: get_u64(obj, "l2_accesses")?,
        l2_misses: get_u64(obj, "l2_misses")?,
        branches: get_u64(obj, "branches")?,
        mispredicts: get_u64(obj, "mispredicts")?,
    })
}

fn stats_from_json(v: &Json) -> Result<Stats, String> {
    let obj = v.as_object("stats")?;
    let mut stats = Stats {
        cycles: get_u64(obj, "cycles")?,
        committed: get_u64(obj, "committed")?,
        squashed: get_u64(obj, "squashed")?,
        trap_cycles: get_u64(obj, "trap_cycles")?,
        traps: get_u64(obj, "traps")?,
        ..Stats::default()
    };
    for entry in get(obj, "class_counts")?.as_array("class_counts")? {
        let pair = entry.as_array("class count entry")?;
        let [name, count] = pair else {
            return Err(format!(
                "class count entry: want [name, count], got {pair:?}"
            ));
        };
        let class: InsnClass = parse_variant(
            "insn class",
            name.as_str("class name")?,
            &ALL_CLASSES,
            |c| c.name().to_string(),
        )?;
        stats
            .class_counts
            .insert(class, count.as_u64("class count")?);
    }
    for entry in get(obj, "tag_cycles")?.as_array("tag_cycles")? {
        let triple = entry.as_array("tag cycle entry")?;
        let [op, prov, cycles] = triple else {
            return Err(format!(
                "tag cycle entry: want [op, prov, cycles], got {triple:?}"
            ));
        };
        let op: TagOpKind = parse_variant("tag op", op.as_str("tag op")?, &ALL_TAG_OPS, |o| {
            format!("{o:?}")
        })?;
        let prov: Provenance = parse_variant(
            "provenance",
            prov.as_str("provenance")?,
            &[Provenance::Base, Provenance::Checking],
            |p| format!("{p:?}"),
        )?;
        stats
            .tag_cycles
            .insert((op, prov), cycles.as_u64("tag cycles")?);
    }
    for entry in get(obj, "check_cat_cycles")?.as_array("check_cat_cycles")? {
        let pair = entry.as_array("check cat entry")?;
        let [name, cycles] = pair else {
            return Err(format!("check cat entry: want [cat, cycles], got {pair:?}"));
        };
        let cat: CheckCat = parse_variant(
            "check cat",
            name.as_str("check cat")?,
            &ALL_CHECK_CATS,
            |c| format!("{c:?}"),
        )?;
        stats
            .check_cat_cycles
            .insert(cat, cycles.as_u64("check cat cycles")?);
    }
    if let Some((_, v)) = obj.iter().find(|(k, _)| k == "timing") {
        stats.timing = Some(timing_stats_from_json(v)?);
    }
    Ok(stats)
}

/// Decode a measurement from the [`measurement_to_json`] encoding.
///
/// # Errors
///
/// A description of the first syntactic or schema violation.
pub fn measurement_from_json(v: &Json) -> Result<Measurement, String> {
    let obj = v.as_object("measurement")?;
    let compile_obj = get(obj, "compile")?.as_object("compile")?;
    let as_usize = |key: &str| -> Result<usize, String> {
        usize::try_from(get_u64(compile_obj, key)?).map_err(|_| format!("{key}: out of range"))
    };
    let halt_code = match get(obj, "halt_code")? {
        Json::Num(n) => n
            .parse::<i32>()
            .map_err(|_| format!("halt_code: not a 32-bit integer: {n:?}"))?,
        other => return Err(format!("halt_code: expected number, got {other:?}")),
    };
    Ok(Measurement {
        program: get_str(obj, "program")?.to_string(),
        config: config_from_json(get(obj, "config")?)?,
        stats: stats_from_json(get(obj, "stats")?)?,
        compile: lisp::CompileStats {
            procedures: as_usize("procedures")?,
            source_lines: as_usize("source_lines")?,
            object_words: as_usize("object_words")?,
        },
        halt_code,
        output: get_str(obj, "output")?.to_string(),
    })
}

fn timing_from_json(v: &Json) -> Result<Timing, String> {
    let obj = v.as_object("timing")?;
    Ok(Timing {
        compile: Duration::from_nanos(get_u64(obj, "compile_ns")?),
        simulate: Duration::from_nanos(get_u64(obj, "simulate_ns")?),
    })
}

/// Decode and *validate* one on-disk record: the envelope must parse, carry
/// the current [`FORMAT_VERSION`], and the checksum must match the payload as
/// written (the payload is re-encoded canonically and must reproduce the
/// checksummed bytes, so any tampering — even semantically neutral
/// reformatting — is rejected).
///
/// # Errors
///
/// A description of why the record cannot be trusted; callers quarantine on
/// any error.
pub fn record_from_json(text: &str) -> Result<(StoreKey, Measurement, Timing), String> {
    let root = Json::parse(text)?;
    let obj = root.as_object("record")?;
    let version = get_u64(obj, "format_version")?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "stale format version {version} (current is {FORMAT_VERSION})"
        ));
    }
    let key = StoreKey::from_hex(get_str(obj, "key")?)?;
    let stored_checksum = get_str(obj, "checksum")?;
    let payload = get(obj, "payload")?.as_object("payload")?;
    let measurement = measurement_from_json(get(payload, "measurement")?)?;
    let timing = timing_from_json(get(payload, "timing")?)?;
    // Checksum over the canonical re-encoding: exact because the codec is.
    let canonical = payload_to_json(&measurement, &timing);
    let computed = format!("{:016x}", fnv1a64(canonical.as_bytes()));
    if computed != stored_checksum {
        return Err(format!(
            "checksum mismatch: stored {stored_checksum}, computed {computed}"
        ));
    }
    Ok((key, measurement, timing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mipsx::Annot;

    fn sample_measurement() -> Measurement {
        let mut stats = Stats::default();
        stats.record(InsnClass::Alu, Annot::NONE, 1);
        stats.record(
            InsnClass::And,
            Annot::checking(TagOpKind::Check, CheckCat::List),
            2,
        );
        stats.record_squashed(Annot::checking(TagOpKind::Check, CheckCat::Vector));
        stats.record_trap(Annot::base(TagOpKind::Generic), 20);
        Measurement {
            program: "frl".to_string(),
            config: Config::baseline(CheckingMode::Full),
            stats,
            compile: lisp::CompileStats {
                procedures: 42,
                source_lines: 314,
                object_words: 2718,
            },
            halt_code: 0,
            output: "42\nt\n".to_string(),
        }
    }

    #[test]
    fn record_round_trips_exactly() {
        let m = sample_measurement();
        let t = Timing {
            compile: Duration::from_nanos(123_456_789),
            simulate: Duration::from_micros(987_654),
        };
        let key = StoreKey::compute("(source)", &m.config);
        let text = record_to_json(&key, &m, &t);
        let (k2, m2, t2) = record_from_json(&text).expect("decodes");
        assert_eq!(k2, key);
        assert_eq!(t2, t);
        assert_eq!(m2.program, m.program);
        assert_eq!(m2.config, m.config);
        assert_eq!(m2.stats, m.stats);
        assert_eq!(m2.compile.procedures, m.compile.procedures);
        // And re-encoding is byte-identical (canonical form).
        assert_eq!(record_to_json(&key, &m2, &t2), text);
    }

    /// The ideal timing model is invisible in the encoding (so every
    /// pre-timing address survives), while a non-ideal model round-trips
    /// exactly and yields a different content address.
    #[test]
    fn timing_round_trips_and_ideal_is_invisible() {
        let ideal = Config::baseline(CheckingMode::Full);
        assert!(
            !config_to_json(&ideal).contains("timing"),
            "ideal timing must not be encoded"
        );

        let timed = ideal.with_timing(mipsx::TimingConfig::modern());
        let encoded = config_to_json(&timed);
        assert!(encoded.contains("\"timing\""));
        let decoded = config_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, timed);
        assert_eq!(config_to_json(&decoded), encoded, "canonical re-encoding");
        assert_ne!(
            StoreKey::compute("(source)", &ideal),
            StoreKey::compute("(source)", &timed),
            "timing is part of the content address"
        );

        // A full record with stall stats survives the envelope too.
        let mut m = sample_measurement();
        m.config = timed;
        m.stats.timing = Some(mipsx::TimingStats {
            stall_icache: 10,
            stall_dcache: 20,
            stall_mispredict: 30,
            stall_load_use: 5,
            icache_accesses: 1000,
            icache_misses: 3,
            dcache_accesses: 200,
            dcache_misses: 2,
            l2_accesses: 5,
            l2_misses: 1,
            branches: 77,
            mispredicts: 4,
        });
        let key = StoreKey::compute("(source)", &m.config);
        let text = record_to_json(&key, &m, &Timing::default());
        let (_, m2, _) = record_from_json(&text).expect("decodes");
        assert_eq!(m2.config, m.config);
        assert_eq!(m2.stats, m.stats);
        assert_eq!(record_to_json(&key, &m2, &Timing::default()), text);
    }

    #[test]
    fn measurement_json_is_deterministic() {
        let m = sample_measurement();
        assert_eq!(measurement_to_json(&m), measurement_to_json(&m.clone()));
    }

    #[test]
    fn stale_version_and_bad_checksum_are_rejected() {
        let m = sample_measurement();
        let t = Timing::default();
        let key = StoreKey::compute("(source)", &m.config);
        let good = record_to_json(&key, &m, &t);

        let stale = good.replacen(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            &format!("\"format_version\":{}", FORMAT_VERSION + 1),
            1,
        );
        assert!(record_from_json(&stale)
            .unwrap_err()
            .contains("stale format version"));

        let flipped = good.replacen("\"cycles\":", "\"cycles\":1", 1);
        assert!(record_from_json(&flipped)
            .unwrap_err()
            .contains("checksum mismatch"));

        assert!(record_from_json(&good[..good.len() / 2]).is_err());
    }
}
