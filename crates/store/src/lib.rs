//! A persistent, content-addressed store for tagstudy measurements.
//!
//! Results are keyed by a stable 128-bit hash of `(program source, Config)`
//! ([`StoreKey::compute`]) and written as versioned, checksummed JSON records
//! under a cache directory — one file per key, created with write-to-temp +
//! atomic rename so readers and concurrent writers never observe a partial
//! record. A record that fails validation on read — syntax error, truncation,
//! bit flip, stale [`FORMAT_VERSION`] — is *quarantined*: moved into a
//! `quarantine/` subdirectory for post-mortem, counted, and treated as a miss.
//! Corruption is never served and never fatal.
//!
//! The intended wiring (what `tagstudyd` does):
//!
//! ```no_run
//! use std::sync::Arc;
//! use store::ResultStore;
//! use tagstudy::Session;
//!
//! let store = Arc::new(ResultStore::open("cache-dir")?);
//! let mut session = Session::new().with_writeback({
//!     let store = Arc::clone(&store);
//!     move |m, t| {
//!         let _ = store.put(m, t); // write-through; errors are non-fatal
//!     }
//! });
//! // Warm start: preload everything still valid for the current sources.
//! for (m, t) in store.load_current() {
//!     session.seed(m, t);
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(missing_docs)]

pub mod fuzz;
pub mod record;

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use tagstudy::trace::{SpanId, SpanRecord, TraceContext, Tracer};
use tagstudy::{Config, Measurement, Timing};

/// Version of the on-disk record format. Bump on any encoding change; records
/// carrying any other version are quarantined on read (stale, not corrupt —
/// but equally untrusted). v2 added `halt_code`/`output` to the measurement
/// encoding.
pub const FORMAT_VERSION: u64 = 2;

/// Extension of record files under the store root.
const RECORD_EXT: &str = "rec";

/// Process-wide uniquifier for temp-file and quarantine names. Global, not
/// per-handle: several `ResultStore` handles on one directory (one per daemon
/// thread, or tests) must never generate the same temp name, or a concurrent
/// writer's rename source can be snatched from under it.
pub(crate) static NAME_SEQ: AtomicU64 = AtomicU64::new(0);

/// The 64-bit FNV-1a hash — the store's checksum, and (applied twice with
/// different offset bases) its content-address hash. Self-contained so the
/// workspace stays dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a64_seeded(offset_basis: u64, bytes: &[u8]) -> u64 {
    let mut hash = offset_basis;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A content address: 32 lowercase hex digits (128 bits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey(String);

impl StoreKey {
    /// The stable key of a `(program source, Config)` point.
    ///
    /// The key material is a versioned frame of the full source text and the
    /// canonical config encoding; the address is two independently-seeded
    /// 64-bit FNV-1a hashes concatenated. Any change to the source, the
    /// configuration, or the record format yields a different address — which
    /// is exactly the invalidation the cache wants.
    pub fn compute(source: &str, config: &Config) -> StoreKey {
        StoreKey::of_material(&format!(
            "tagstudy-store/v{FORMAT_VERSION}\0{source}\0{}",
            record::config_to_json(config)
        ))
    }

    /// The content address of arbitrary key material: two independently-seeded
    /// 64-bit FNV-1a hashes concatenated. [`StoreKey::compute`] frames
    /// measurement records with this; other record kinds (the fuzzing
    /// fleet's witnesses, see [`crate::fuzz`]) frame their own material.
    pub fn of_material(material: &str) -> StoreKey {
        let lo = fnv1a64(material.as_bytes());
        let hi = fnv1a64_seeded(0x6c62_272e_07bb_0142, material.as_bytes());
        StoreKey(format!("{hi:016x}{lo:016x}"))
    }

    /// Parse a key the wire gave us.
    ///
    /// # Errors
    ///
    /// When `text` is not exactly 32 lowercase hex digits.
    pub fn from_hex(text: &str) -> Result<StoreKey, String> {
        if text.len() == 32 && text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            Ok(StoreKey(text.to_string()))
        } else {
            Err(format!(
                "bad store key {text:?} (want 32 lowercase hex digits)"
            ))
        }
    }

    /// The key as hex.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Monotonic counters describing one store's activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records written.
    pub puts: u64,
    /// Lookups performed.
    pub gets: u64,
    /// Lookups that returned a valid record.
    pub hits: u64,
    /// Records moved to `quarantine/` (corrupt, truncated, or stale-version).
    pub quarantined: u64,
}

/// The persistent result store. Cheap to share: all methods take `&self`, and
/// the file system plus atomic counters carry the state, so one instance can
/// be used from any number of threads.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    puts: AtomicU64,
    gets: AtomicU64,
    hits: AtomicU64,
    quarantined: AtomicU64,
    /// Optional flight recorder plus per-thread trace contexts (see
    /// [`ResultStore::trace_scope`]). Store methods take `&self` from many
    /// threads at once, so "which request am I serving?" is keyed by thread:
    /// the daemon registers a scope on its HTTP worker thread before calling
    /// into the session, and every store I/O on that thread spans under it.
    tracing: Mutex<TracingState>,
}

#[derive(Debug, Default)]
struct TracingState {
    tracer: Option<Tracer>,
    scopes: std::collections::HashMap<ThreadId, TraceContext>,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultStore> {
        let root = dir.into();
        fs::create_dir_all(root.join("quarantine"))?;
        Ok(ResultStore {
            root,
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            tracing: Mutex::new(TracingState::default()),
        })
    }

    /// Attach a flight recorder. Spans are only recorded on threads that hold
    /// an active [`ResultStore::trace_scope`]; without one (or without a
    /// tracer at all) every store operation behaves exactly as before.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.lock_tracing().tracer = Some(tracer);
    }

    /// Register `ctx` as the trace context for the *current thread* until the
    /// returned guard drops. While the scope is active, every [`put`], [`get`]
    /// and [`raw_record`] this thread performs records a `store.write` /
    /// `store.read` span under `ctx.parent`.
    ///
    /// [`put`]: ResultStore::put
    /// [`get`]: ResultStore::get
    /// [`raw_record`]: ResultStore::raw_record
    pub fn trace_scope(&self, ctx: TraceContext) -> TraceScope<'_> {
        let thread = std::thread::current().id();
        let prev = self.lock_tracing().scopes.insert(thread, ctx);
        TraceScope {
            store: self,
            thread,
            prev,
        }
    }

    fn lock_tracing(&self) -> std::sync::MutexGuard<'_, TracingState> {
        self.tracing.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a span for an operation that began at `started`, if a tracer is
    /// attached and the current thread is inside a [`ResultStore::trace_scope`].
    fn record_span(&self, name: &str, started: Instant, labels: &[(&str, &str)]) {
        let t = self.lock_tracing();
        let Some(tracer) = &t.tracer else { return };
        let Some(ctx) = t.scopes.get(&std::thread::current().id()) else {
            return;
        };
        let start_us = tracer.at_us(started);
        tracer.record(SpanRecord {
            trace: ctx.trace,
            id: SpanId::generate(),
            parent: Some(ctx.parent),
            name: name.to_string(),
            component: "store".to_string(),
            start_us,
            dur_us: tracer.now_us().saturating_sub(start_us),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Activity counters since open.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    fn record_path(&self, key: &StoreKey) -> PathBuf {
        self.root.join(format!("{key}.{RECORD_EXT}"))
    }

    /// The key under which `measurement` would be stored, derived from the
    /// current source of its benchmark.
    ///
    /// Returns `None` for a program name not in the registry (a measurement
    /// of an unknown program has no stable source to address by).
    pub fn key_of(measurement: &Measurement) -> Option<StoreKey> {
        let benchmark = programs::by_name(&measurement.program)?;
        Some(StoreKey::compute(benchmark.source, &measurement.config))
    }

    /// Durably store one measurement under its content address: serialize,
    /// write to a uniquely-named temp file in the store directory, then
    /// atomically rename over the final name. Concurrent writers of the same
    /// key are safe — both write the same canonical bytes, and rename is
    /// atomic, so readers always see one complete record.
    ///
    /// # Errors
    ///
    /// I/O failures (callers in a serving path should log and continue — the
    /// store is an accelerator, not a source of truth).
    pub fn put(&self, measurement: &Measurement, timing: &Timing) -> std::io::Result<StoreKey> {
        let key = Self::key_of(measurement).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown program {:?}", measurement.program),
            )
        })?;
        let started = Instant::now();
        let text = record::record_to_json(&key, measurement, timing);
        let temp = self.root.join(format!(
            "tmp-{}-{}.{RECORD_EXT}",
            std::process::id(),
            NAME_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&temp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&temp, self.record_path(&key))?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.record_span(
            "store.write",
            started,
            &[("key", key.as_str()), ("program", &measurement.program)],
        );
        Ok(key)
    }

    /// Look up a record by key. A missing record is `None`; a record that
    /// fails validation is quarantined and also `None` — corruption is
    /// indistinguishable from a miss to callers, by design.
    pub fn get(&self, key: &StoreKey) -> Option<(Measurement, Timing)> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let path = self.record_path(key);
        let text = fs::read_to_string(&path).ok();
        let result = text.as_deref().and_then(|text| {
            match record::record_from_json(text) {
                Ok((stored_key, m, t)) if stored_key == *key => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some((m, t))
                }
                Ok((stored_key, ..)) => {
                    self.quarantine(&path, &format!("key mismatch: record says {stored_key}"));
                    None
                }
                Err(why) => {
                    self.quarantine(&path, &why);
                    None
                }
            }
        });
        self.record_span(
            "store.read",
            started,
            &[("key", key.as_str()), ("hit", if result.is_some() { "true" } else { "false" })],
        );
        result
    }

    /// The raw record text for `key`, *after* validating it — what the daemon
    /// serves on `GET /v1/results/{key}`. Invalid records are quarantined and
    /// reported as missing, exactly like [`ResultStore::get`].
    pub fn raw_record(&self, key: &StoreKey) -> Option<String> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let path = self.record_path(key);
        let result = fs::read_to_string(&path).ok().and_then(|text| {
            match record::record_from_json(&text) {
                Ok((stored_key, ..)) if stored_key == *key => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(text)
                }
                Ok((stored_key, ..)) => {
                    self.quarantine(&path, &format!("key mismatch: record says {stored_key}"));
                    None
                }
                Err(why) => {
                    self.quarantine(&path, &why);
                    None
                }
            }
        });
        self.record_span(
            "store.read",
            started,
            &[("key", key.as_str()), ("hit", if result.is_some() { "true" } else { "false" })],
        );
        result
    }

    /// Validate and load every record in the store, quarantining the invalid
    /// ones. Returned entries are sorted by key so the load order (and any
    /// seeding built on it) is deterministic.
    pub fn load_all(&self) -> Vec<(StoreKey, Measurement, Timing)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.root) else {
            return out;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(RECORD_EXT) || !path.is_file() {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            // Leftover temp files from a crashed writer are not records; a
            // malformed *name* is suspicious enough to quarantine.
            if stem.starts_with("tmp-") {
                continue;
            }
            let Ok(key) = StoreKey::from_hex(stem) else {
                self.quarantine(&path, "malformed record file name");
                continue;
            };
            match fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| record::record_from_json(&text))
            {
                Ok((stored_key, m, t)) if stored_key == key => out.push((key, m, t)),
                Ok((stored_key, ..)) => {
                    self.quarantine(&path, &format!("key mismatch: record says {stored_key}"))
                }
                Err(why) => self.quarantine(&path, &why),
            }
        }
        out.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        out
    }

    /// [`ResultStore::load_all`], restricted to records whose address still
    /// matches the *current* source of their benchmark — the warm-start set.
    /// A record for a renamed benchmark or an edited source is simply skipped
    /// (it is unreachable under any current key, not corrupt).
    pub fn load_current(&self) -> Vec<(Measurement, Timing)> {
        self.load_all()
            .into_iter()
            .filter(|(key, m, _)| Self::key_of(m).as_ref() == Some(key))
            .map(|(_, m, t)| (m, t))
            .collect()
    }

    /// Number of (untrusted, unparsed) records currently on disk.
    pub fn record_count(&self) -> usize {
        fs::read_dir(&self.root)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(RECORD_EXT))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Number of files in `quarantine/`.
    pub fn quarantine_count(&self) -> usize {
        fs::read_dir(self.root.join("quarantine"))
            .map(|entries| entries.flatten().count())
            .unwrap_or(0)
    }

    /// Durability barrier: fsync the store directory so all completed renames
    /// survive power loss. Called by the daemon's graceful shutdown.
    ///
    /// # Errors
    ///
    /// I/O failures opening or syncing the directory.
    pub fn flush(&self) -> std::io::Result<()> {
        fs::File::open(&self.root)?.sync_all()
    }

    /// Move a bad record out of the addressable namespace, never failing: if
    /// the rename itself fails (e.g. the file vanished), the record is simply
    /// left to the next reader. The reason is logged to stderr — the store has
    /// no other channel — and the quarantine counter feeds `/metrics`.
    fn quarantine(&self, path: &Path, why: &str) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("record");
        let dest = self.root.join("quarantine").join(format!(
            "{name}.{}-{}",
            std::process::id(),
            NAME_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::rename(path, &dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            eprintln!("[store] quarantined {name}: {why}");
        }
    }
}

/// RAII guard for a per-thread trace context (see
/// [`ResultStore::trace_scope`]). Restores the thread's previous context (or
/// clears it) on drop, so scopes nest correctly.
#[must_use = "the scope is active only while this guard lives"]
#[derive(Debug)]
pub struct TraceScope<'a> {
    store: &'a ResultStore,
    thread: ThreadId,
    prev: Option<TraceContext>,
}

impl Drop for TraceScope<'_> {
    fn drop(&mut self) {
        let mut t = self.store.lock_tracing();
        match self.prev.take() {
            Some(prev) => {
                t.scopes.insert(self.thread, prev);
            }
            None => {
                t.scopes.remove(&self.thread);
            }
        }
    }
}
