//! Durability tests for the witness corpus and coverage ledger, mirroring the
//! measurement-record suite: round-trips, stale-version and corruption
//! quarantine, and ledger persistence across store handles (a restarted
//! campaign).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use store::fuzz::{CoverageLedger, FuzzStore, Witness, FUZZ_FORMAT_VERSION};
use tagstudy::{CheckingMode, Config};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tagstudy-fuzz-test-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn witness(seed: u64, kind: &str) -> Witness {
    Witness {
        seed,
        mix: "list=4,vector=1,arith=2,branch=2,call=1".to_string(),
        cell: "list@2".to_string(),
        column: "high5:full:maximal:classic".to_string(),
        config: Config::baseline(CheckingMode::Full),
        backend: "classic".to_string(),
        fault: Some("branch-invert:1".to_string()),
        kind: kind.to_string(),
        detail: "halt: want 0, got 3".to_string(),
        source: format!("(defun drive () {seed})\n(drive)\n"),
        forms: 2,
    }
}

/// The one witness file in `dir` (fails the test if there isn't exactly one).
fn only_witness(dir: &std::path::Path) -> PathBuf {
    let wits: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "wit"))
        .collect();
    assert_eq!(wits.len(), 1, "want exactly one witness, got {wits:?}");
    wits.into_iter().next().unwrap()
}

#[test]
fn witness_round_trip_and_content_addressing() {
    let scratch = Scratch::new("wit-roundtrip");
    let store = FuzzStore::open(&scratch.0).unwrap();
    let w = witness(7, "Halt");

    let key = store.put_witness(&w).unwrap();
    assert_eq!(key, w.key());
    assert_eq!(store.get_witness(&key).as_ref(), Some(&w));

    // Archiving the same divergence again deduplicates: same address, still
    // one file on disk.
    assert_eq!(store.put_witness(&w).unwrap(), key);
    assert_eq!(store.witness_count(), 1);

    // A different kind of divergence of the same source is a distinct record.
    let w2 = witness(7, "Output");
    let key2 = store.put_witness(&w2).unwrap();
    assert_ne!(key2, key);
    assert_eq!(store.witness_count(), 2);

    // A restarted campaign sees both, deterministically ordered by key.
    let store2 = FuzzStore::open(&scratch.0).unwrap();
    let loaded = store2.load_witnesses();
    assert_eq!(loaded.len(), 2);
    assert!(loaded.windows(2).all(|p| p[0].0.as_str() < p[1].0.as_str()));
    assert_eq!(store2.quarantine_count(), 0);
}

#[test]
fn stale_witness_format_version_is_quarantined() {
    let scratch = Scratch::new("wit-version");
    let store = FuzzStore::open(&scratch.0).unwrap();
    let key = store.put_witness(&witness(1, "Census")).unwrap();

    let path = only_witness(&scratch.0);
    let text = fs::read_to_string(&path).unwrap();
    fs::write(
        &path,
        text.replacen(
            &format!("\"format_version\":{FUZZ_FORMAT_VERSION}"),
            &format!("\"format_version\":{}", FUZZ_FORMAT_VERSION + 1),
            1,
        ),
    )
    .unwrap();

    assert!(store.get_witness(&key).is_none(), "stale version untrusted");
    assert_eq!(store.quarantine_count(), 1);
    assert_eq!(store.witness_count(), 0, "moved out of the namespace");
    // Not fatal: re-archiving heals the corpus.
    store.put_witness(&witness(1, "Census")).unwrap();
    assert!(store.get_witness(&key).is_some());
}

#[test]
fn truncated_and_bit_flipped_witnesses_are_quarantined() {
    for (tag, corrupt) in [
        (
            "truncate",
            &(|text: &str| text[..text.len() / 3].to_string()) as &dyn Fn(&str) -> String,
        ),
        ("bitflip", &|text: &str| {
            // Flip the recorded halt detail — checksum must catch it.
            text.replacen("got 3", "got 4", 1)
        }),
    ] {
        let scratch = Scratch::new(&format!("wit-{tag}"));
        let store = FuzzStore::open(&scratch.0).unwrap();
        let key = store.put_witness(&witness(9, "Halt")).unwrap();

        let path = only_witness(&scratch.0);
        let text = fs::read_to_string(&path).unwrap();
        let mangled = corrupt(&text);
        assert_ne!(mangled, text, "{tag}: corruption must change the file");
        fs::write(&path, mangled).unwrap();

        assert!(store.get_witness(&key).is_none(), "{tag}: not served");
        assert_eq!(store.quarantine_count(), 1, "{tag}");
        assert!(store.load_witnesses().is_empty(), "{tag}");
    }
}

#[test]
fn witness_filed_under_wrong_key_is_quarantined() {
    let scratch = Scratch::new("wit-misfiled");
    let store = FuzzStore::open(&scratch.0).unwrap();
    let w = witness(3, "Output");
    store.put_witness(&w).unwrap();

    // Rename the record to a different (valid-looking) address, as a buggy
    // or malicious mirror might.
    let path = only_witness(&scratch.0);
    let bogus = scratch.0.join(format!("{}.wit", "ab".repeat(16)));
    fs::rename(&path, &bogus).unwrap();

    assert!(store.load_witnesses().is_empty(), "misfiled record dropped");
    assert_eq!(store.quarantine_count(), 1);
}

#[test]
fn ledger_round_trip_and_resume_semantics() {
    let scratch = Scratch::new("ledger-roundtrip");
    let store = FuzzStore::open(&scratch.0).unwrap();
    assert!(store.load_ledger().is_none(), "fresh store has no ledger");

    let mut ledger = CoverageLedger::new("campaign-abc", 3);
    for cell in ["list@0|a", "list@0|b", "arith@1|a", "arith@1|b"] {
        ledger.register(cell);
    }
    assert_eq!(ledger.coverage_percent(), 0.0);
    assert!(!ledger.complete());

    ledger.bump("list@0|a");
    ledger.bump("list@0|a");
    ledger.bump("list@0|a");
    ledger.bump("list@0|b");
    assert!(ledger.is_saturated("list@0|a"));
    assert!(!ledger.is_saturated("list@0|b"));
    assert_eq!(ledger.covered_runs(), 4);
    store.store_ledger(&ledger).unwrap();

    // A restarted campaign (fresh handle on the same dir) resumes the books.
    let store2 = FuzzStore::open(&scratch.0).unwrap();
    let resumed = store2.load_ledger().expect("persisted ledger loads");
    assert_eq!(resumed, ledger);
    assert_eq!(resumed.campaign(), "campaign-abc");
    assert_eq!(resumed.count("list@0|a"), 3);
    assert_eq!(resumed.count("never-registered"), 0);

    // Saturate everything: coverage hits 100% and the ledger reports done.
    let mut full = resumed;
    let cells: Vec<String> = full.cells().map(|(c, _)| c.to_string()).collect();
    for cell in &cells {
        while !full.is_saturated(cell) {
            full.bump(cell);
        }
    }
    assert_eq!(full.coverage_percent(), 100.0);
    assert!(full.complete());

    // Counts past the target don't inflate coverage.
    full.bump("list@0|a");
    assert_eq!(full.coverage_percent(), 100.0);

    store.reset_ledger();
    assert!(store.load_ledger().is_none(), "reset removes the books");
}

#[test]
fn corrupt_or_stale_ledger_is_quarantined_not_trusted() {
    for (tag, corrupt) in [
        (
            "bitflip",
            &(|text: &str| text.replacen("\"list@0|a\",2", "\"list@0|a\",7", 1))
                as &dyn Fn(&str) -> String,
        ),
        ("stale", &|text: &str| {
            text.replacen(
                &format!("\"format_version\":{FUZZ_FORMAT_VERSION}"),
                &format!("\"format_version\":{}", FUZZ_FORMAT_VERSION + 1),
                1,
            )
        }),
        ("truncate", &|text: &str| text[..text.len() / 2].to_string()),
    ] {
        let scratch = Scratch::new(&format!("ledger-{tag}"));
        let store = FuzzStore::open(&scratch.0).unwrap();
        let mut ledger = CoverageLedger::new("campaign-abc", 5);
        ledger.register("list@0|a");
        ledger.bump("list@0|a");
        ledger.bump("list@0|a");
        store.store_ledger(&ledger).unwrap();

        let path = store.ledger_path();
        let text = fs::read_to_string(&path).unwrap();
        let mangled = corrupt(&text);
        assert_ne!(mangled, text, "{tag}: corruption must change the file");
        fs::write(&path, mangled).unwrap();

        // An untrusted ledger is quarantined; the campaign restarts its
        // books from zero rather than fuzzing against forged counts.
        assert!(store.load_ledger().is_none(), "{tag}: not trusted");
        assert_eq!(store.quarantine_count(), 1, "{tag}");
        assert!(!path.exists(), "{tag}: moved out of the way");
    }
}
