//! Pins the store's content addresses and canonical encodings byte for byte.
//!
//! The store's cache identity is `StoreKey::compute(source, config)` over the
//! canonical config JSON, and a record's payload embeds `stats_to_json` /
//! `config_to_json` verbatim. Any accidental change to those encodings
//! silently orphans every record on disk (the daemon would re-simulate the
//! world on restart) — so this test pins, against checked-in expected files:
//!
//! - the content address of every benchmark × scheme × checking × hw point,
//! - the canonical config JSON for a representative config set,
//! - the full stats JSON for a handful of actually-simulated cells.
//!
//! To regenerate after an *intentional* format change (which should also bump
//! `FORMAT_VERSION`):
//!
//! ```text
//! UPDATE_EXPECTED=1 cargo test -p store --test pinned_identity
//! ```

use std::fs;
use std::path::PathBuf;

use lisp::CheckingMode;
use mipsx::HwConfig;
use store::record::{config_to_json, measurement_to_json};
use store::StoreKey;
use tagstudy::Config;

fn expected_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/expected/{name}"))
}

/// Compare `got` against the checked-in `name`, honoring `UPDATE_EXPECTED`.
fn assert_pinned(name: &str, got: &str) {
    let path = expected_path(name);
    if std::env::var_os("UPDATE_EXPECTED").is_some() {
        fs::write(&path, got).expect("write the expected file");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nseed it with: UPDATE_EXPECTED=1 cargo test -p store",
            path.display()
        )
    });
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "{} drifted at line {} — stored records would be orphaned; \
             if intentional, bump FORMAT_VERSION and regenerate with UPDATE_EXPECTED=1",
            path.display(),
            i + 1
        );
    }
    assert_eq!(got, want, "{} differs in length", path.display());
}

/// The hardware points the study grid uses, with stable labels.
fn hw_points() -> Vec<(&'static str, HwConfig)> {
    vec![
        ("plain", HwConfig::plain()),
        ("tagbr", HwConfig::with_tag_branch()),
        ("max5", HwConfig::maximal(5)),
    ]
}

fn grid() -> Vec<(String, Config)> {
    let mut out = Vec::new();
    for scheme in tagword::ALL_SCHEMES {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            for (hw_name, hw) in hw_points() {
                let config = Config::new(scheme, checking).with_hw(hw);
                out.push((format!("{scheme}:{checking:?}:{hw_name}"), config));
            }
        }
    }
    out
}

/// Every benchmark × scheme × checking × hw content address, byte for byte.
#[test]
fn content_addresses_are_pinned() {
    let mut lines = String::new();
    for b in programs::all() {
        for (label, config) in grid() {
            let key = StoreKey::compute(b.source, &config);
            lines.push_str(&format!("{}:{label} {key}\n", b.name));
        }
    }
    assert_pinned("pinned_addresses.txt", &lines);
}

/// The canonical config encoding the addresses (and payloads) are built from.
#[test]
fn config_json_is_pinned() {
    let mut lines = String::new();
    for (label, config) in grid() {
        lines.push_str(&format!("{label} {}\n", config_to_json(&config)));
    }
    assert_pinned("pinned_config_json.txt", &lines);
}

/// Full measurement JSON (program, config, stats, compile shape, output) for
/// a few simulated cells: pins both the simulator's architectural results and
/// the stats encoding.
#[test]
fn measurement_json_is_pinned() {
    let cells = [
        ("inter", Config::baseline(CheckingMode::None)),
        ("inter", Config::baseline(CheckingMode::Full)),
        (
            "trav",
            Config::baseline(CheckingMode::Full).with_hw(HwConfig::maximal(5)),
        ),
        (
            "boyer",
            Config::new(tagword::TagScheme::LowTag2, CheckingMode::Full),
        ),
    ];
    let mut lines = String::new();
    for (name, config) in cells {
        let m = tagstudy::run_program(name, &config).expect("cell simulates");
        lines.push_str(&format!("{name}:{config} {}\n", measurement_to_json(&m)));
    }
    assert_pinned("pinned_measurements.txt", &lines);
}
