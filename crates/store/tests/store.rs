//! Durability tests for the persistent result store: round-trips, stale-version
//! and corruption quarantine, and concurrent writers sharing one cache dir.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use store::{ResultStore, StoreKey, FORMAT_VERSION};
use tagstudy::{CheckingMode, Config, Measurement, Timing};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tagstudy-store-test-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A synthetic measurement for a real registry program (the store derives the
/// content address from the benchmark's current source).
fn measurement(program: &str, config: Config, cycles: u64) -> Measurement {
    Measurement {
        program: program.to_string(),
        config,
        stats: mipsx::Stats {
            cycles,
            committed: cycles / 2,
            ..Default::default()
        },
        compile: lisp::CompileStats {
            procedures: 7,
            source_lines: 70,
            object_words: 700,
        },
        halt_code: 0,
        output: "ok\n".to_string(),
    }
}

fn timing(ms: u64) -> Timing {
    Timing {
        compile: Duration::from_millis(ms),
        simulate: Duration::from_millis(ms * 3),
    }
}

/// The one record file in `dir` (fails the test if there isn't exactly one).
fn only_record(dir: &std::path::Path) -> PathBuf {
    let recs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rec"))
        .collect();
    assert_eq!(recs.len(), 1, "want exactly one record, got {recs:?}");
    recs.into_iter().next().unwrap()
}

#[test]
fn put_get_round_trip_and_warm_load() {
    let scratch = Scratch::new("roundtrip");
    let store = ResultStore::open(&scratch.0).unwrap();
    let m = measurement("frl", Config::baseline(CheckingMode::Full), 1_000_000);
    let t = timing(12);

    let key = store.put(&m, &t).unwrap();
    assert_eq!(Some(&key), ResultStore::key_of(&m).as_ref());
    let (m2, t2) = store.get(&key).expect("stored record is served");
    assert_eq!(m2.stats, m.stats);
    assert_eq!(m2.config, m.config);
    assert_eq!(t2, t);

    // A second store on the same directory — a restarted daemon — sees it.
    let store2 = ResultStore::open(&scratch.0).unwrap();
    let warm = store2.load_current();
    assert_eq!(warm.len(), 1);
    assert_eq!(warm[0].0.stats, m.stats);
    assert_eq!(store2.quarantine_count(), 0);

    // Distinct configs are distinct addresses.
    let other = StoreKey::compute(
        programs::by_name("frl").unwrap().source,
        &Config::baseline(CheckingMode::None),
    );
    assert_ne!(other, key);
    assert!(store.get(&other).is_none());

    let s = store.stats();
    assert_eq!((s.puts, s.hits, s.quarantined), (1, 1, 0));
}

#[test]
fn stale_format_version_is_quarantined_not_served() {
    let scratch = Scratch::new("version");
    let store = ResultStore::open(&scratch.0).unwrap();
    let m = measurement("trav", Config::baseline(CheckingMode::None), 2_000_000);
    let key = store.put(&m, &timing(5)).unwrap();

    // Simulate a record written by a future (or ancient) format.
    let path = only_record(&scratch.0);
    let text = fs::read_to_string(&path).unwrap();
    fs::write(
        &path,
        text.replacen(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            &format!("\"format_version\":{}", FORMAT_VERSION + 1),
            1,
        ),
    )
    .unwrap();

    assert!(store.get(&key).is_none(), "stale version is never trusted");
    assert_eq!(store.quarantine_count(), 1);
    assert_eq!(store.record_count(), 0, "moved out of the namespace");
    // Not fatal: the store keeps working, and a fresh put heals the entry.
    store.put(&m, &timing(5)).unwrap();
    assert!(store.get(&key).is_some());
}

#[test]
fn truncated_and_bit_flipped_records_are_quarantined() {
    for (tag, corrupt) in [
        (
            "truncate",
            &(|text: &str| text[..text.len() / 3].to_string()) as &dyn Fn(&str) -> String,
        ),
        ("bitflip", &|text: &str| {
            text.replacen("\"cycles\":3", "\"cycles\":4", 1)
        }),
    ] {
        let scratch = Scratch::new(tag);
        let store = ResultStore::open(&scratch.0).unwrap();
        let m = measurement("frl", Config::baseline(CheckingMode::None), 3_000_000);
        let key = store.put(&m, &timing(9)).unwrap();

        let path = only_record(&scratch.0);
        let text = fs::read_to_string(&path).unwrap();
        let mangled = corrupt(&text);
        assert_ne!(mangled, text, "{tag}: corruption must change the file");
        fs::write(&path, mangled).unwrap();

        assert!(
            store.get(&key).is_none(),
            "{tag}: corrupt record not served"
        );
        assert_eq!(store.quarantine_count(), 1, "{tag}");
        assert!(store.load_all().is_empty(), "{tag}");
        assert_eq!(store.stats().quarantined, 1, "{tag}");
    }
}

#[test]
fn concurrent_writers_on_one_cache_dir() {
    let scratch = Scratch::new("concurrent");
    let configs = [
        Config::baseline(CheckingMode::None),
        Config::baseline(CheckingMode::Full),
        Config::new(tagword::TagScheme::LowTag2, CheckingMode::Full),
        Config::new(tagword::TagScheme::HighTag6, CheckingMode::None),
    ];

    // 8 writers × 8 rounds, all racing on the same directory through
    // *independent* store handles (as separate daemon processes would), with
    // heavy key contention: every writer writes every config.
    std::thread::scope(|scope| {
        for w in 0..8 {
            let dir = scratch.0.clone();
            let configs = &configs;
            scope.spawn(move || {
                let store = ResultStore::open(&dir).unwrap();
                for round in 0..8 {
                    for config in configs {
                        let m = measurement("frl", *config, 5_000_000);
                        store.put(&m, &timing(w * 10 + round)).unwrap();
                    }
                }
            });
        }
    });

    let store = ResultStore::open(&scratch.0).unwrap();
    let loaded = store.load_all();
    assert_eq!(loaded.len(), configs.len(), "one record per distinct point");
    assert_eq!(store.record_count(), configs.len());
    assert_eq!(store.quarantine_count(), 0, "no torn writes");
    for (key, m, _) in &loaded {
        // Every surviving record is complete and correctly addressed.
        assert_eq!(ResultStore::key_of(m).as_ref(), Some(key));
        assert_eq!(m.stats.cycles, 5_000_000);
    }
    // No temp files left behind.
    let leftovers: Vec<_> = fs::read_dir(&scratch.0)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("tmp-"))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
}

/// Store I/O spans are recorded only on threads inside a `trace_scope`, carry
/// the request's trace id, and label reads with hit/miss.
#[test]
fn trace_scope_records_store_spans_per_thread() {
    use tagstudy::trace::{TraceContext, Tracer};

    let scratch = Scratch::new("trace");
    let store = ResultStore::open(&scratch.0).unwrap();
    let cfg = Config::baseline(CheckingMode::None);
    let m = measurement("frl", cfg, 1234);

    // No tracer, no scope: everything works, nothing recorded anywhere.
    let key = store.put(&m, &timing(1)).unwrap();
    assert!(store.get(&key).is_some());

    let tracer = Tracer::new(8, Duration::from_secs(3600));
    store.set_tracer(tracer.clone());

    // Tracer attached but no scope on this thread: still nothing recorded.
    assert!(store.get(&key).is_some());
    let ctx = TraceContext::fresh();
    {
        let _scope = store.trace_scope(ctx);
        store.put(&m, &timing(1)).unwrap();
        assert!(store.get(&key).is_some());
        assert!(store.get(&StoreKey::compute("(no such src)", &cfg)).is_none());
    }
    // Scope dropped: subsequent I/O is unrecorded again.
    assert!(store.get(&key).is_some());

    tracer.finish(ctx.trace, ctx.parent).expect("spans recorded");
    let rec = tracer.lookup(ctx.trace).unwrap();
    let names: Vec<&str> = rec.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["store.write", "store.read", "store.read"]);
    assert!(rec.spans.iter().all(|s| s.trace == ctx.trace));
    assert!(rec.spans.iter().all(|s| s.parent == Some(ctx.parent)));
    let hit_labels: Vec<&str> = rec
        .spans
        .iter()
        .filter(|s| s.name == "store.read")
        .map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == "hit")
                .map(|(_, v)| v.as_str())
                .unwrap()
        })
        .collect();
    assert_eq!(hit_labels, ["true", "false"]);
}
