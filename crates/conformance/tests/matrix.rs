//! The full conformance matrix: every benchmark workload under every
//! `TagScheme × CheckingMode`, on both executors, in lockstep.
//!
//! One `#[test]` per scheme so a failure names the scheme and progress is
//! visible; each test covers all ten programs under both checking modes.
//! Run with `cargo test -p conformance --release` — the matrix simulates a
//! few billion instructions in total.

use lisp::CheckingMode;
use mipsx::Backend;
use tagstudy::{Config, Session};
use tagword::TagScheme;

/// Check every benchmark under both checking modes for one scheme, plus the
/// harness invariants the summary exposes.
fn check_scheme(scheme: TagScheme) {
    let session = Session::serial();
    for b in programs::all() {
        for checking in [CheckingMode::None, CheckingMode::Full] {
            let config = Config::new(scheme, checking);
            let compiled = session
                .compile_program(b.name, config)
                .unwrap_or_else(|e| panic!("{}/{config}: compile failed: {e}", b.name));
            let c = conformance::check_compiled(Backend::Classic, &compiled, programs::FUEL, None)
                .unwrap_or_else(|e| panic!("{}/{config}: {e}", b.name));
            assert!(c.retired > 0, "{}/{config}: empty trace", b.name);
            assert!(
                c.cycles >= c.retired + c.squashed,
                "{}/{config}: cycles ({}) < retired ({}) + squashed ({})",
                b.name,
                c.cycles,
                c.retired,
                c.squashed
            );
            assert_eq!(
                c.traps, 0,
                "{}/{config}: plain hardware cannot trap",
                b.name
            );
        }
    }
}

#[test]
fn matrix_high5_conforms() {
    check_scheme(TagScheme::HighTag5);
}

#[test]
fn matrix_high6_conforms() {
    check_scheme(TagScheme::HighTag6);
}

#[test]
fn matrix_low2_conforms() {
    check_scheme(TagScheme::LowTag2);
}

#[test]
fn matrix_low3_conforms() {
    check_scheme(TagScheme::LowTag3);
}

/// The tag-hardware configurations exercise the instructions the plain matrix
/// cannot: tag branches, checked loads/stores, and generic arithmetic.
#[test]
fn tag_hardware_conforms() {
    use mipsx::HwConfig;
    let session = Session::serial();
    let hws = [
        ("maximal", HwConfig::maximal(5)),
        ("spur", HwConfig::spur(5)),
        ("tagbr", HwConfig::with_tag_branch()),
        ("generic", HwConfig::with_generic_arith()),
    ];
    for name in ["inter", "trav"] {
        for (hw_name, hw) in hws {
            for checking in [CheckingMode::None, CheckingMode::Full] {
                let config = Config::baseline(checking).with_hw(hw);
                let compiled = session
                    .compile_program(name, config)
                    .unwrap_or_else(|e| panic!("{name}/{hw_name}/{checking:?}: compile: {e}"));
                for backend in [Backend::Classic, Backend::Fast] {
                    conformance::check_compiled(backend, &compiled, programs::FUEL, None)
                        .unwrap_or_else(|e| panic!("{name}/{hw_name}/{checking:?}/{backend}: {e}"));
                }
            }
        }
    }
}

/// An injected semantics bug in the reference executor must surface as a
/// divergence on a real workload — proof the matrix would notice a real bug.
#[test]
fn injected_bug_is_caught_on_a_workload() {
    let session = Session::serial();
    let config = Config::baseline(CheckingMode::None);
    let compiled = session.compile_program("trav", config).expect("compiles");
    let err = conformance::check_compiled(
        Backend::Classic,
        &compiled,
        programs::FUEL,
        Some(mipsx::Fault::AddOffByOne { nth: 500 }),
    )
    .expect_err("a corrupted add must diverge");
    let report = err.to_string();
    assert!(report.contains("divergence"), "unexpected report: {report}");
}

/// `Session::run_observed` exposes the trace layer through the experiment
/// engine: the observer sees exactly as many retirements as the measurement
/// commits, and the measurement still validates output.
#[test]
fn session_exposes_observed_runs() {
    use mipsx::trace::{Observer, Retirement};
    use mipsx::Annot;
    use std::ops::ControlFlow;

    #[derive(Default)]
    struct Count {
        retired: u64,
        squashed: u64,
    }
    impl Observer for Count {
        fn retire(&mut self, _: &Retirement, _: Annot, _: u64) -> ControlFlow<()> {
            self.retired += 1;
            ControlFlow::Continue(())
        }
        fn squash(&mut self, _: usize, _: Annot, _: u64) {
            self.squashed += 1;
        }
    }

    let session = Session::serial();
    let config = Config::baseline(CheckingMode::None);
    let mut count = Count::default();
    let m = session
        .run_observed("trav", config, programs::FUEL, &mut count)
        .expect("observed run succeeds");
    assert_eq!(count.retired, m.stats.committed, "one event per commit");
    assert_eq!(count.squashed, m.stats.squashed);
}
