//! Backend equivalence: the predecoded `FastCpu` must be *byte-identical* to
//! the classic `Cpu` — same `Outcome`, same `Stats`, same retirement stream.
//!
//! Two workloads:
//!
//! - **200 fixed-seed synth oracle programs** (the generator the cross-scheme
//!   oracle sweeps), each under a rotating cell of the 24-point
//!   scheme × checking × hardware matrix. These are small, so the comparison
//!   is a full [`TraceBuffer`] equality — every `Retirement`, annotation,
//!   cycle stamp, and squashed slot, in order.
//! - **All ten benchmarks** under the full 24-config oracle matrix. These
//!   retire hundreds of millions of instructions, so the streams are compared
//!   through the constant-memory [`StreamHash`] observer instead.
//!
//! Debug builds (plain `cargo test`) run a deterministic subset of both
//! sweeps; `--release` runs everything. One `#[test]` per slice so failures
//! name their cell and the slices run in parallel.

use mipsx::trace::{StreamHash, TraceBuffer};
use mipsx::{Backend, Outcome};
use synth::{generate, oracle_configs, render, OpMix};
use tagstudy::{Config, Session};

/// Assert every field of two outcomes matches, including the full `Stats`.
fn assert_outcomes_identical(label: &str, classic: &Outcome, fast: &Outcome) {
    assert_eq!(classic.halt_code, fast.halt_code, "{label}: halt code");
    assert_eq!(classic.output, fast.output, "{label}: output stream");
    assert_eq!(classic.stats, fast.stats, "{label}: statistics");
}

/// Run `compiled` on classic and fast, comparing outcomes and the *complete*
/// recorded trace (small programs only).
fn assert_full_trace_equal(label: &str, compiled: &lisp::CompiledProgram, fuel: u64) {
    let mut classic_buf = TraceBuffer::new();
    let classic = lisp::run_observed_with(compiled, Backend::Classic, fuel, &mut classic_buf)
        .unwrap_or_else(|e| panic!("{label}: classic failed: {e}"));
    let mut fast_buf = TraceBuffer::new();
    let fast = lisp::run_observed_with(compiled, Backend::Fast, fuel, &mut fast_buf)
        .unwrap_or_else(|e| panic!("{label}: fast failed: {e}"));
    assert_outcomes_identical(label, &classic, &fast);
    assert_eq!(
        classic_buf.records, fast_buf.records,
        "{label}: retirement records"
    );
    assert_eq!(
        classic_buf.annotations, fast_buf.annotations,
        "{label}: annotation/cycle sidecar"
    );
    assert_eq!(
        classic_buf.squashes, fast_buf.squashes,
        "{label}: squashed slots"
    );
}

/// Run `compiled` on classic and fast, comparing outcomes and the stream
/// digest (constant memory; for the big benchmark workloads).
fn assert_stream_hash_equal(label: &str, compiled: &lisp::CompiledProgram, fuel: u64) {
    let mut classic_hash = StreamHash::new();
    let classic = lisp::run_observed_with(compiled, Backend::Classic, fuel, &mut classic_hash)
        .unwrap_or_else(|e| panic!("{label}: classic failed: {e}"));
    let mut fast_hash = StreamHash::new();
    let fast = lisp::run_observed_with(compiled, Backend::Fast, fuel, &mut fast_hash)
        .unwrap_or_else(|e| panic!("{label}: fast failed: {e}"));
    assert_outcomes_identical(label, &classic, &fast);
    assert_eq!(classic_hash, fast_hash, "{label}: retirement stream digest");
    assert!(classic_hash.retired > 0, "{label}: empty trace");
}

/// The number of fixed synth seeds the release suite sweeps.
const SYNTH_SEEDS: u64 = 200;

/// Sweep one quarter of the synth seeds (seeds ≡ `lane` mod 4). Each seed gets
/// a rotating generator mix and a rotating cell of the 24-config matrix, so
/// the 200 seeds cover every cell more than eight times.
fn synth_slice(lane: u64) {
    let mixes = [
        OpMix::balanced(),
        OpMix::list_heavy(),
        OpMix::vector_heavy(),
        OpMix::arith_heavy(),
    ];
    let configs = oracle_configs();
    // Debug builds take every eighth seed of the lane; release takes them all.
    let step: u64 = if cfg!(debug_assertions) { 32 } else { 4 };
    let mut seed = lane;
    while seed < SYNTH_SEEDS {
        let mix = &mixes[(seed as usize / 4) % mixes.len()];
        let config = &configs[seed as usize % configs.len()];
        let source = render(&generate(seed, mix));
        let label = format!("synth seed {seed} under {config}");
        let compiled = lisp::compile(&source, &config.to_options())
            .unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
        assert_full_trace_equal(&label, &compiled, synth::oracle::SIM_FUEL);
        seed += step;
    }
}

#[test]
fn synth_seeds_lane0_identical_across_backends() {
    synth_slice(0);
}

#[test]
fn synth_seeds_lane1_identical_across_backends() {
    synth_slice(1);
}

#[test]
fn synth_seeds_lane2_identical_across_backends() {
    synth_slice(2);
}

#[test]
fn synth_seeds_lane3_identical_across_backends() {
    synth_slice(3);
}

/// Sweep every benchmark under the six cells of the oracle matrix belonging
/// to `scheme` (2 checking modes × 3 hardware levels).
fn benchmark_slice(scheme: tagword::TagScheme) {
    let session = Session::serial();
    let configs: Vec<Config> = oracle_configs()
        .into_iter()
        .filter(|c| c.scheme == scheme)
        .collect();
    assert_eq!(configs.len(), 6);
    // Debug builds cover two benchmarks on the plain-hardware cells; release
    // covers all ten benchmarks on all six cells.
    let debug = cfg!(debug_assertions);
    for b in programs::all() {
        if debug && !matches!(b.name, "trav" | "inter") {
            continue;
        }
        for config in &configs {
            if debug && config.hw != mipsx::HwConfig::plain() {
                continue;
            }
            let label = format!("{} under {config}", b.name);
            let compiled = session
                .compile_program(b.name, *config)
                .unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
            assert_stream_hash_equal(&label, &compiled, programs::FUEL);
        }
    }
}

#[test]
fn benchmarks_high5_identical_across_backends() {
    benchmark_slice(tagword::TagScheme::HighTag5);
}

#[test]
fn benchmarks_high6_identical_across_backends() {
    benchmark_slice(tagword::TagScheme::HighTag6);
}

#[test]
fn benchmarks_low2_identical_across_backends() {
    benchmark_slice(tagword::TagScheme::LowTag2);
}

#[test]
fn benchmarks_low3_identical_across_backends() {
    benchmark_slice(tagword::TagScheme::LowTag3);
}
