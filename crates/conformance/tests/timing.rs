//! Timing-model determinism: the stall breakdown is a pure function of the
//! retirement stream and the `TimingConfig`, so it must be identical across
//! executor backends and across repeated runs — the microarchitectural
//! counterpart of the backend-equivalence sweep in `backends.rs`.
//!
//! 64 fixed-seed synth oracle programs, each under a rotating cell of the
//! 24-point scheme × checking × hardware matrix and both non-ideal presets.
//! Debug builds (plain `cargo test`) run a deterministic subset; `--release`
//! runs everything. The sweep also re-proves, per seed, that attaching the
//! model never perturbs the architectural outcome.

use mipsx::{Backend, Outcome, TimingConfig, TimingModel, ALL_STALL_CAUSES};
use synth::{generate, oracle_configs, render, OpMix};

/// The number of fixed synth seeds the release suite sweeps.
const SYNTH_SEEDS: u64 = 64;

/// Run `compiled` with a fresh timing model attached; returns the
/// architectural outcome and the stall breakdown.
fn timed_run(
    label: &str,
    compiled: &lisp::CompiledProgram,
    backend: Backend,
    timing: TimingConfig,
) -> (Outcome, mipsx::TimingStats) {
    let mut model = TimingModel::new(timing);
    let outcome = lisp::run_observed_with(compiled, backend, synth::oracle::SIM_FUEL, &mut model)
        .unwrap_or_else(|e| panic!("{label}: {backend} failed: {e}"));
    (outcome, model.finish())
}

/// Sweep half of the synth seeds (seeds ≡ `lane` mod 2): every seed gets a
/// rotating generator mix and matrix cell, and both presets must produce one
/// breakdown — the same one — on every backend and every repeat.
fn timing_slice(lane: u64) {
    let mixes = [
        OpMix::balanced(),
        OpMix::list_heavy(),
        OpMix::vector_heavy(),
        OpMix::arith_heavy(),
    ];
    let configs = oracle_configs();
    // Debug builds take every eighth seed of the lane; release takes them all.
    let step: u64 = if cfg!(debug_assertions) { 16 } else { 2 };
    let mut seed = lane;
    while seed < SYNTH_SEEDS {
        let mix = &mixes[(seed as usize / 2) % mixes.len()];
        let config = &configs[seed as usize % configs.len()];
        let source = render(&generate(seed, mix));
        let compiled = lisp::compile(&source, &config.to_options())
            .unwrap_or_else(|e| panic!("synth seed {seed} under {config}: compile failed: {e}"));
        let baseline = lisp::run_with(&compiled, Backend::Classic, synth::oracle::SIM_FUEL)
            .unwrap_or_else(|e| panic!("synth seed {seed} under {config}: run failed: {e}"));
        for timing in [TimingConfig::classic5(), TimingConfig::modern()] {
            let label = format!("synth seed {seed} under {config}, timing={timing}");
            let (classic, classic_stats) =
                timed_run(&label, &compiled, Backend::Classic, timing);
            let (fast, fast_stats) = timed_run(&label, &compiled, Backend::Fast, timing);

            // Determinism across backends: breakdown and architectural
            // outcome both match field for field.
            assert_eq!(classic_stats, fast_stats, "{label}: stall breakdown");
            assert_eq!(classic.halt_code, fast.halt_code, "{label}: halt code");
            assert_eq!(classic.output, fast.output, "{label}: output");
            assert_eq!(classic.stats, fast.stats, "{label}: statistics");

            // Determinism across runs: a second fresh model on the same
            // backend reproduces the breakdown exactly.
            let (_, again) = timed_run(&label, &compiled, Backend::Classic, timing);
            assert_eq!(classic_stats, again, "{label}: repeat run");

            // Observation is free: the architectural outcome matches the
            // unobserved baseline byte for byte.
            assert_eq!(classic.stats, baseline.stats, "{label}: observer effect");
            assert_eq!(classic.output, baseline.output, "{label}: observer effect");

            // And the books balance: timed = architectural + the four causes.
            let total: u64 = ALL_STALL_CAUSES
                .iter()
                .map(|&c| classic_stats.stall(c))
                .sum();
            assert_eq!(
                classic_stats.timed_cycles(classic.stats.cycles),
                classic.stats.cycles + total,
                "{label}: stall breakdown reconciles"
            );
        }
        seed += step;
    }
}

#[test]
fn timing_lane0_deterministic_across_backends_and_runs() {
    timing_slice(0);
}

#[test]
fn timing_lane1_deterministic_across_backends_and_runs() {
    timing_slice(1);
}
