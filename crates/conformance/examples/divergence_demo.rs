//! Run one benchmark through the trace oracle, then show what a divergence
//! report looks like by injecting a deliberate bug into the reference
//! executor.
//!
//! ```sh
//! cargo run --release -p conformance --example divergence_demo
//! ```

use lisp::CheckingMode;
use mipsx::{Backend, Fault};
use tagstudy::{Config, Session};

fn main() {
    let session = Session::serial();
    let config = Config::baseline(CheckingMode::Full);
    let compiled = session
        .compile_program("trav", config)
        .expect("trav compiles");

    let c = conformance::check_compiled(Backend::Fast, &compiled, programs::FUEL, None)
        .expect("clean run conforms");
    println!(
        "trav/{config}: {} retirements, {} squashed slots, {} cycles — executors agree\n",
        c.retired, c.squashed, c.cycles
    );

    for fault in [
        Fault::AddOffByOne { nth: 500 },
        Fault::BranchInvert { nth: 40 },
    ] {
        let err =
            conformance::check_compiled(Backend::Fast, &compiled, programs::FUEL, Some(fault))
                .expect_err("an injected bug must diverge");
        println!("injected {fault:?}:\n{err}");
    }
}
