//! The trace-oracle differential harness.
//!
//! Every cycle count the study reports comes out of a pipelined simulator
//! backend ([`mipsx::Cpu`] or [`mipsx::FastCpu`], selected by a
//! [`mipsx::Backend`]); this crate checks the subject backend against a second,
//! deliberately naive implementation of the same ISA ([`mipsx::RefCpu`]). The
//! two executors run the same program **in lockstep**: the subject backend's
//! retired-instruction trace (see [`mipsx::trace`]) drives one [`RefCpu::step`]
//! per retirement, and the two [`Retirement`] records are compared on the spot.
//! Comparison is O(1) in memory — the benchmark workloads retire hundreds of
//! millions of instructions, so traces are never stored, only the last few
//! records for divergence context.
//!
//! After a clean run the harness also checks:
//!
//! - **final architectural state**: halt code, output stream, register file
//!   and every word of data memory agree;
//! - **statistics reconciliation**: a [`Stats`] rebuilt from the trace (using
//!   cumulative-cycle deltas) is *equal* to the simulator's own accounting —
//!   tying `committed`/`squashed`/`traps`/`class_counts`/`tag_cycles`/
//!   `check_cat_cycles` to the instruction stream they claim to summarize.
//!
//! A divergence aborts the run immediately ([`SimError::Stopped`]) and is
//! reported as a [`Divergence`] whose `Display` form shows both records plus
//! the last few retirements both executors agreed on.
//!
//! The crate's integration tests sweep every benchmark in
//! [`programs`] under every `TagScheme × CheckingMode` point, plus the
//! tag-hardware configurations, and prove (via [`mipsx::Fault`] injection)
//! that the harness actually notices a semantics bug.

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::ops::ControlFlow;

use mipsx::trace::{Observer, Retirement};
use mipsx::{
    Annot, Backend, Executor, Fault, HwConfig, InsnClass, Program, RefCpu, Reg, SimError, Stats,
};

/// How many agreed retirements to keep for divergence context.
const CONTEXT: usize = 8;

/// Summary of one clean conformance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conformance {
    /// Retirements both executors agreed on.
    pub retired: u64,
    /// Squashed delay slots observed.
    pub squashed: u64,
    /// Traps taken.
    pub traps: u64,
    /// Total cycles of the pipelined run.
    pub cycles: u64,
}

/// A point where the two executors disagreed.
#[derive(Debug, Clone)]
pub enum Divergence {
    /// Retirement `index` differs between the executors.
    Record {
        /// Zero-based index into the retirement stream.
        index: u64,
        /// What the pipelined simulator retired.
        cpu: Retirement,
        /// What the reference executor retired.
        reference: Retirement,
        /// The most recent retirements both agreed on, oldest first.
        context: Vec<Retirement>,
    },
    /// The reference executor raised an error where the pipeline retired.
    RefError {
        /// Zero-based index into the retirement stream.
        index: u64,
        /// What the pipelined simulator retired.
        cpu: Retirement,
        /// The reference executor's error.
        error: SimError,
    },
    /// The reference executor halted while the pipeline kept retiring.
    RefHalted {
        /// Zero-based index into the retirement stream.
        index: u64,
        /// The retirement the reference executor had no answer for.
        cpu: Retirement,
    },
    /// The pipeline halted but the reference executor had not.
    RefNotHalted {
        /// Retirements agreed on before the pipeline halted.
        retired: u64,
    },
    /// Both halted, with different exit codes.
    HaltCode {
        /// Pipelined exit code.
        cpu: i32,
        /// Reference exit code.
        reference: i32,
    },
    /// Both halted, with different output streams.
    Output {
        /// Pipelined output.
        cpu: String,
        /// Reference output.
        reference: String,
    },
    /// Final register files differ.
    Register {
        /// The differing register.
        reg: Reg,
        /// Pipelined value.
        cpu: u32,
        /// Reference value.
        reference: u32,
    },
    /// Final data memories differ.
    Memory {
        /// Differing word's byte address.
        addr: u32,
        /// Pipelined value.
        cpu: u32,
        /// Reference value.
        reference: u32,
    },
    /// The [`Stats`] rebuilt from the trace do not equal the simulator's.
    Stats {
        /// What the simulator accounted.
        simulator: Box<Stats>,
        /// What the trace adds up to.
        rebuilt: Box<Stats>,
    },
}

fn fmt_record(f: &mut fmt::Formatter<'_>, r: &Retirement) -> fmt::Result {
    write!(f, "pc {:>6}  `{}`", r.pc, r.insn)?;
    if let Some((reg, v)) = r.write {
        write!(f, "  {reg} <- {v:#010x}")?;
    }
    if let Some(m) = r.mem {
        let arrow = if m.store { "<-" } else { "->" };
        write!(f, "  mem[{:#x}] {} {:#010x}", m.addr, arrow, m.value)?;
    }
    if let Some(t) = r.trap {
        write!(f, "  TRAP -> pc {t}")?;
    }
    Ok(())
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Record {
                index,
                cpu,
                reference,
                context,
            } => {
                writeln!(f, "trace divergence at retirement #{index}:")?;
                write!(f, "  pipelined: ")?;
                fmt_record(f, cpu)?;
                writeln!(f)?;
                write!(f, "  reference: ")?;
                fmt_record(f, reference)?;
                writeln!(f)?;
                writeln!(f, "  last {} agreed retirements:", context.len())?;
                for (i, r) in context.iter().enumerate() {
                    write!(f, "    #{:>6}  ", index - context.len() as u64 + i as u64)?;
                    fmt_record(f, r)?;
                    writeln!(f)?;
                }
                Ok(())
            }
            Divergence::RefError { index, cpu, error } => {
                writeln!(f, "reference executor failed at retirement #{index}: {error}")?;
                write!(f, "  pipelined retired: ")?;
                fmt_record(f, cpu)
            }
            Divergence::RefHalted { index, cpu } => {
                writeln!(f, "reference executor halted early, at retirement #{index}:")?;
                write!(f, "  pipelined retired: ")?;
                fmt_record(f, cpu)
            }
            Divergence::RefNotHalted { retired } => write!(
                f,
                "pipeline halted after {retired} retirements; reference executor had not"
            ),
            Divergence::HaltCode { cpu, reference } => {
                write!(f, "halt codes differ: pipelined {cpu}, reference {reference}")
            }
            Divergence::Output { cpu, reference } => write!(
                f,
                "output streams differ: pipelined {cpu:?}, reference {reference:?}"
            ),
            Divergence::Register {
                reg,
                cpu,
                reference,
            } => write!(
                f,
                "final {reg} differs: pipelined {cpu:#010x}, reference {reference:#010x}"
            ),
            Divergence::Memory {
                addr,
                cpu,
                reference,
            } => write!(
                f,
                "final mem[{addr:#x}] differs: pipelined {cpu:#010x}, reference {reference:#010x}"
            ),
            Divergence::Stats { simulator, rebuilt } => write!(
                f,
                "statistics do not reconcile with the trace:\n  simulator: {simulator:?}\n  rebuilt:   {rebuilt:?}"
            ),
        }
    }
}

/// A conformance-check failure: either an ordinary simulation error (both
/// executors are allowed to fail, e.g. out of fuel) or a divergence.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// The pipelined simulator failed outright (not observer-stopped).
    Sim(SimError),
    /// The executors disagreed.
    Diverged(Box<Divergence>),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Sim(e) => write!(f, "simulation failed: {e}"),
            CheckError::Diverged(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// The lockstep observer: drives the reference executor one step per pipelined
/// retirement and rebuilds the statistics from the trace as it goes.
struct Lockstep<'p> {
    reference: RefCpu<'p>,
    index: u64,
    context: VecDeque<Retirement>,
    divergence: Option<Divergence>,
    rebuilt: Stats,
    last_cycle: u64,
    squashed: u64,
    traps: u64,
}

impl<'p> Lockstep<'p> {
    fn new(reference: RefCpu<'p>) -> Self {
        Lockstep {
            reference,
            index: 0,
            context: VecDeque::with_capacity(CONTEXT + 1),
            divergence: None,
            rebuilt: Stats::default(),
            last_cycle: 0,
            squashed: 0,
            traps: 0,
        }
    }
}

impl Observer for Lockstep<'_> {
    fn retire(&mut self, ev: &Retirement, annot: Annot, cycle: u64) -> ControlFlow<()> {
        // Rebuild the statistics exactly as the simulator accounts them: the
        // cumulative-cycle delta is this retirement's cost.
        let delta = cycle - self.last_cycle;
        self.last_cycle = cycle;
        if ev.trap.is_some() {
            self.traps += 1;
            self.rebuilt.record_trap(annot, delta);
        } else {
            self.rebuilt.record(InsnClass::of(ev.insn), annot, delta);
        }

        let step = self.reference.step();
        match step {
            Ok(Some(r)) if r == *ev => {
                self.index += 1;
                self.context.push_back(*ev);
                if self.context.len() > CONTEXT {
                    self.context.pop_front();
                }
                ControlFlow::Continue(())
            }
            Ok(Some(r)) => {
                self.divergence = Some(Divergence::Record {
                    index: self.index,
                    cpu: *ev,
                    reference: r,
                    context: self.context.iter().copied().collect(),
                });
                ControlFlow::Break(())
            }
            Ok(None) => {
                self.divergence = Some(Divergence::RefHalted {
                    index: self.index,
                    cpu: *ev,
                });
                ControlFlow::Break(())
            }
            Err(error) => {
                self.divergence = Some(Divergence::RefError {
                    index: self.index,
                    cpu: *ev,
                    error,
                });
                ControlFlow::Break(())
            }
        }
    }

    fn squash(&mut self, _pc: usize, branch_annot: Annot, cycle: u64) {
        // A squashed slot costs exactly one cycle; any accounting drift shows
        // up as a Stats divergence at the end of the run.
        self.last_cycle = cycle;
        self.squashed += 1;
        self.rebuilt.record_squashed(branch_annot);
    }
}

/// Check one program: run it on the subject `backend` and the reference
/// executor in lockstep and verify trace, final state, and statistics
/// agreement. `fault`, if given, is injected into the *reference* executor —
/// used by self-tests to prove the harness notices a semantics bug.
///
/// Checking [`Backend::Ref`] against itself is legal but vacuous; the
/// interesting subjects are [`Backend::Classic`] and [`Backend::Fast`].
///
/// # Errors
///
/// [`CheckError::Diverged`] when the executors disagree, [`CheckError::Sim`]
/// when the subject simulator itself fails (e.g. out of fuel).
pub fn check_program(
    backend: Backend,
    prog: &Program,
    hw: HwConfig,
    mem_bytes: usize,
    fuel: u64,
    fault: Option<Fault>,
) -> Result<Conformance, CheckError> {
    let mut reference = RefCpu::new(prog, hw, mem_bytes);
    if let Some(fault) = fault {
        reference.inject_fault(fault);
    }
    let mut lockstep = Lockstep::new(reference);
    let mut cpu = backend
        .executor(prog, hw, mem_bytes)
        .map_err(CheckError::Sim)?;

    let outcome = match cpu.run_observed(fuel, &mut lockstep) {
        Ok(outcome) => outcome,
        Err(SimError::Stopped { .. }) => {
            let d = lockstep
                .divergence
                .expect("a stopped run always stores its divergence");
            return Err(CheckError::Diverged(Box::new(d)));
        }
        Err(e) => return Err(CheckError::Sim(e)),
    };

    let reference = &mut lockstep.reference;
    let diverged = |d: Divergence| Err(CheckError::Diverged(Box::new(d)));

    // The pipeline has halted; the reference executor's very next step must
    // report that it has halted too.
    match reference.step() {
        Ok(None) => {}
        _ => {
            return diverged(Divergence::RefNotHalted {
                retired: lockstep.index,
            })
        }
    }
    let ref_code = reference.halt_code().expect("halted");
    if ref_code != outcome.halt_code {
        return diverged(Divergence::HaltCode {
            cpu: outcome.halt_code,
            reference: ref_code,
        });
    }
    if reference.output() != outcome.output {
        return diverged(Divergence::Output {
            cpu: outcome.output.clone(),
            reference: reference.output().to_string(),
        });
    }
    for i in 0..32 {
        let (c, r) = (cpu.regs()[i], reference.regs()[i]);
        if c != r {
            return diverged(Divergence::Register {
                reg: Reg::from_index(i),
                cpu: c,
                reference: r,
            });
        }
    }
    for (w, (&c, &r)) in cpu
        .mem()
        .words()
        .iter()
        .zip(reference.mem().words())
        .enumerate()
    {
        if c != r {
            return diverged(Divergence::Memory {
                addr: (w * 4) as u32,
                cpu: c,
                reference: r,
            });
        }
    }
    if lockstep.rebuilt != outcome.stats {
        return diverged(Divergence::Stats {
            simulator: Box::new(outcome.stats),
            rebuilt: Box::new(lockstep.rebuilt),
        });
    }

    Ok(Conformance {
        retired: lockstep.index,
        squashed: lockstep.squashed,
        traps: lockstep.traps,
        cycles: outcome.stats.cycles,
    })
}

/// [`check_program`] for a compiled Lisp program, under its compiled-for
/// hardware.
///
/// # Errors
///
/// As [`check_program`].
pub fn check_compiled(
    backend: Backend,
    compiled: &lisp::CompiledProgram,
    fuel: u64,
    fault: Option<Fault>,
) -> Result<Conformance, CheckError> {
    check_program(
        backend,
        &compiled.program,
        compiled.hw,
        compiled.mem_bytes,
        fuel,
        fault,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mipsx::{Asm, Cond, Insn};

    fn tiny_program() -> Program {
        let mut asm = Asm::new();
        let e = asm.here("entry");
        asm.set_entry(e);
        let loop_top = asm.new_label();
        asm.li(Reg::A0, 0);
        asm.li(Reg::A1, 10);
        asm.bind(loop_top);
        asm.emit(Insn::Add(Reg::A0, Reg::A0, Reg::TrueR));
        asm.emit(Insn::Addi(Reg::A1, Reg::A1, -1));
        asm.br_raw(Cond::Gt, Reg::A1, Reg::Zero, loop_top, true);
        asm.nop();
        asm.nop();
        asm.halt(Reg::A1);
        asm.finish().expect("assembles")
    }

    #[test]
    fn clean_program_conforms() {
        let prog = tiny_program();
        for backend in [Backend::Classic, Backend::Fast] {
            let c =
                check_program(backend, &prog, HwConfig::plain(), 1 << 12, 10_000, None).unwrap();
            assert!(c.retired > 10);
            assert_eq!(c.traps, 0);
            assert!(c.cycles >= c.retired, "every retirement costs >= 1 cycle");
        }
    }

    #[test]
    fn injected_fault_is_reported_with_context() {
        let prog = tiny_program();
        let err = check_program(
            Backend::Classic,
            &prog,
            HwConfig::plain(),
            1 << 12,
            10_000,
            Some(Fault::AddOffByOne { nth: 3 }),
        )
        .unwrap_err();
        let CheckError::Diverged(d) = err else {
            panic!("expected divergence, got {err}");
        };
        let report = d.to_string();
        assert!(report.contains("trace divergence"), "{report}");
        assert!(report.contains("pipelined:"), "{report}");
        assert!(report.contains("reference:"), "{report}");
        assert!(report.contains("agreed retirements"), "{report}");
        match *d {
            Divergence::Record { cpu, reference, .. } => {
                assert_eq!(cpu.pc, reference.pc, "same instruction, different result");
                assert_ne!(cpu.write, reference.write);
            }
            other => panic!("expected a record divergence, got {other}"),
        }
    }

    #[test]
    fn injected_branch_fault_is_caught() {
        let prog = tiny_program();
        for backend in [Backend::Classic, Backend::Fast] {
            let err = check_program(
                backend,
                &prog,
                HwConfig::plain(),
                1 << 12,
                10_000,
                Some(Fault::BranchInvert { nth: 10 }),
            )
            .unwrap_err();
            assert!(matches!(err, CheckError::Diverged(_)), "got {err}");
        }
    }

    #[test]
    fn out_of_fuel_is_a_sim_error_not_a_divergence() {
        let prog = tiny_program();
        for backend in [Backend::Classic, Backend::Fast] {
            let err =
                check_program(backend, &prog, HwConfig::plain(), 1 << 12, 5, None).unwrap_err();
            assert!(matches!(err, CheckError::Sim(SimError::OutOfFuel { .. })));
        }
    }
}
