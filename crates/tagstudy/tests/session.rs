//! Session engine integration tests: memoization across table regenerations,
//! and determinism of the parallel worker pool.

use std::num::NonZeroUsize;

use tagstudy::{tables, CheckingMode, Config, Session};

/// Regenerating Table 1 on a warm session must do zero new compiles or
/// simulations — every request is a cache hit.
#[test]
fn warm_session_regenerates_table1_without_compiling() {
    let names = ["frl", "trav", "boyer"];
    let mut session = Session::new();

    let first = tables::table1_for(&mut session, &names).unwrap();
    let cold = session.stats();
    assert_eq!(cold.misses, 6, "3 programs x 2 checking modes");
    assert_eq!(cold.hits, 0);

    let second = tables::table1_for(&mut session, &names).unwrap();
    let warm = session.stats();
    assert_eq!(warm.misses, cold.misses, "warm run compiles nothing");
    assert_eq!(warm.hits, 6, "every warm request is a hit");
    assert_eq!(
        warm.work_time(),
        cold.work_time(),
        "no new wall time attributed"
    );

    for (a, b) in first.rows.iter().zip(&second.rows) {
        assert_eq!(a.program, b.program);
        assert_eq!(a.total, b.total, "{}: cached rows identical", a.program);
    }
}

/// The worker pool must not perturb results: a parallel session and a strictly
/// serial one produce identical `Stats` for every program.
#[test]
fn parallel_and_serial_sessions_agree() {
    let names = tables::default_programs();
    let config = Config::baseline(CheckingMode::None);

    let mut parallel = Session::new().with_parallelism(NonZeroUsize::new(8).unwrap());
    let mut serial = Session::serial();
    let par = parallel.measure_set(&names, config).unwrap();
    let ser = serial.measure_set(&names, config).unwrap();

    assert_eq!(par.len(), names.len());
    for ((p, s), name) in par.iter().zip(&ser).zip(&names) {
        assert_eq!(p.program, *name, "request order preserved");
        assert_eq!(s.program, *name);
        assert_eq!(p.stats, s.stats, "{name}: parallel == serial");
        assert_eq!(p.compile.object_words, s.compile.object_words, "{name}");
    }
    assert_eq!(parallel.stats().misses, names.len() as u64);
    assert_eq!(serial.stats().misses, names.len() as u64);
}
