//! Shape assertions on a small program subset: the orderings the paper's
//! conclusions rest on must hold for any representative workload mix.

use mipsx::{HwConfig, ParallelCheck};
use tagstudy::tables;
use tagstudy::{run_program, CheckingMode, Config};

const SET: &[&str] = &["deduce", "trav", "boyer"];

#[test]
fn support_levels_never_hurt_and_max_wins() {
    let base: u64 = SET
        .iter()
        .map(|n| {
            run_program(n, &Config::baseline(CheckingMode::Full))
                .unwrap()
                .stats
                .cycles
        })
        .sum();
    let mut cycles = Vec::new();
    for hw in [
        HwConfig::with_address_drop(5),
        HwConfig::with_tag_branch(),
        HwConfig::with_generic_arith(),
        HwConfig::with_parallel_check(ParallelCheck::Lists),
        HwConfig::with_parallel_check(ParallelCheck::All),
        HwConfig::maximal(5),
    ] {
        let c: u64 = SET
            .iter()
            .map(|n| {
                run_program(n, &Config::baseline(CheckingMode::Full).with_hw(hw))
                    .unwrap()
                    .stats
                    .cycles
            })
            .sum();
        assert!(c <= base, "{hw:?} must not slow programs down");
        cycles.push(c);
    }
    let maximal = *cycles.last().unwrap();
    assert!(
        cycles.iter().all(|&c| maximal <= c),
        "row 7 dominates every other row"
    );
    // parallel All beats parallel Lists, which beats tag-branch alone
    assert!(cycles[4] <= cycles[3]);
    assert!(cycles[3] < cycles[1]);
}

#[test]
fn figure2_shape_on_subset() {
    let f = tables::figure2_for(SET).expect("measures");
    assert!(f.and_ > 0.5, "masking ands removed");
    assert!(
        f.total > 0.0 && f.total <= f.and_ + 0.5,
        "net win bounded by and reduction"
    );
}

#[test]
fn checking_is_never_free() {
    for name in SET {
        let none = run_program(name, &Config::baseline(CheckingMode::None)).unwrap();
        let full = run_program(name, &Config::baseline(CheckingMode::Full)).unwrap();
        let pct = 100.0 * (full.stats.cycles - none.stats.cycles) as f64 / none.stats.cycles as f64;
        assert!(
            (5.0..150.0).contains(&pct),
            "{name}: slowdown {pct:.1}% out of plausible range"
        );
    }
}

#[test]
fn low_tags_beat_high_tags_without_hardware() {
    // The paper's software conclusion on this subset.
    for checking in [CheckingMode::None, CheckingMode::Full] {
        let high: u64 = SET
            .iter()
            .map(|n| {
                run_program(n, &Config::new(tagword::TagScheme::HighTag5, checking))
                    .unwrap()
                    .stats
                    .cycles
            })
            .sum();
        let low: u64 = SET
            .iter()
            .map(|n| {
                run_program(n, &Config::new(tagword::TagScheme::LowTag3, checking))
                    .unwrap()
                    .stats
                    .cycles
            })
            .sum();
        assert!(
            low < high,
            "{checking:?}: low tags must win ({low} vs {high})"
        );
    }
}
