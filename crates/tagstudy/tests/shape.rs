//! Shape assertions on a small program subset: the orderings the paper's
//! conclusions rest on must hold for any representative workload mix.

use mipsx::{HwConfig, ParallelCheck};
use tagstudy::tables;
use tagstudy::{CheckingMode, Config, Session};

const SET: &[&str] = &["deduce", "trav", "boyer"];

fn total_cycles(session: &mut Session, config: Config) -> u64 {
    session
        .measure_set(SET, config)
        .unwrap()
        .iter()
        .map(|m| m.stats.cycles)
        .sum()
}

#[test]
fn support_levels_never_hurt_and_max_wins() {
    let mut session = Session::new();
    let base = total_cycles(&mut session, Config::baseline(CheckingMode::Full));
    let mut cycles = Vec::new();
    for hw in [
        HwConfig::with_address_drop(5),
        HwConfig::with_tag_branch(),
        HwConfig::with_generic_arith(),
        HwConfig::with_parallel_check(ParallelCheck::Lists),
        HwConfig::with_parallel_check(ParallelCheck::All),
        HwConfig::maximal(5),
    ] {
        let c = total_cycles(
            &mut session,
            Config::baseline(CheckingMode::Full).with_hw(hw),
        );
        assert!(c <= base, "{hw:?} must not slow programs down");
        cycles.push(c);
    }
    let maximal = *cycles.last().unwrap();
    assert!(
        cycles.iter().all(|&c| maximal <= c),
        "row 7 dominates every other row"
    );
    // parallel All beats parallel Lists, which beats tag-branch alone
    assert!(cycles[4] <= cycles[3]);
    assert!(cycles[3] < cycles[1]);
}

#[test]
fn figure2_shape_on_subset() {
    let f = tables::figure2_for(&mut Session::new(), SET).expect("measures");
    assert!(f.and_ > 0.5, "masking ands removed");
    assert!(
        f.total > 0.0 && f.total <= f.and_ + 0.5,
        "net win bounded by and reduction"
    );
}

#[test]
fn checking_is_never_free() {
    let mut session = Session::new();
    for name in SET {
        let none = session
            .measure(name, Config::baseline(CheckingMode::None))
            .unwrap();
        let full = session
            .measure(name, Config::baseline(CheckingMode::Full))
            .unwrap();
        let pct = 100.0 * (full.stats.cycles - none.stats.cycles) as f64 / none.stats.cycles as f64;
        assert!(
            (5.0..150.0).contains(&pct),
            "{name}: slowdown {pct:.1}% out of plausible range"
        );
    }
}

#[test]
fn low_tags_beat_high_tags_without_hardware() {
    // The paper's software conclusion on this subset.
    let mut session = Session::new();
    for checking in [CheckingMode::None, CheckingMode::Full] {
        let high = total_cycles(
            &mut session,
            Config::new(tagword::TagScheme::HighTag5, checking),
        );
        let low = total_cycles(
            &mut session,
            Config::new(tagword::TagScheme::LowTag3, checking),
        );
        assert!(
            low < high,
            "{checking:?}: low tags must win ({low} vs {high})"
        );
    }
}
