//! Integration tests for the Session metrics/event layer: a live session's
//! JSON export round-trips exactly, the schema holds the shape CI relies on,
//! and the Prometheus rendering exposes the same counters.

use tagstudy::{CheckingMode, Config, Json, MetricsRegistry, Session};

fn warmed_session() -> Session {
    let mut s = Session::serial();
    let none = Config::baseline(CheckingMode::None);
    let full = Config::baseline(CheckingMode::Full);
    s.measure_many(&[("frl", none), ("frl", none), ("frl", full)])
        .expect("frl measures");
    s.measure("frl", none).expect("warm hit");
    s
}

/// JSON export → parse → equal registry, against real session data.
#[test]
fn session_metrics_round_trip_exactly() {
    let s = warmed_session();
    let snapshot = s.metrics();
    let json = s.metrics_json();
    let parsed = MetricsRegistry::from_json(&json).expect("export parses");
    assert_eq!(parsed, snapshot, "JSON round-trip must be lossless");
    assert_eq!(parsed.to_json(), json, "canonical re-serialization");
}

/// The schema sanity check CI runs: required sections, required metrics, and
/// internally consistent histograms.
#[test]
fn session_metrics_schema_is_sane() {
    use tagstudy::metrics::names;

    let s = warmed_session();
    let json = s.metrics_json();
    let root = Json::parse(&json).expect("valid JSON");
    let obj = root.as_object("top level").unwrap();
    for section in ["counters", "gauges", "histograms", "events"] {
        assert!(
            obj.iter().any(|(k, _)| k == section),
            "missing section {section:?}"
        );
    }

    let m = s.metrics();
    // 2 misses (frl/None, frl/Full), 2 hits (in-batch dup + warm re-request).
    assert_eq!(m.counter(names::CACHE_MISSES), 2);
    assert_eq!(m.counter(names::CACHE_HITS), 2);
    assert_eq!(m.counter(names::REQUESTS), 4);
    assert_eq!(m.counter(names::FAILURES), 0);
    assert_eq!(m.gauge(names::WORKERS_CONFIGURED), Some(1.0));
    assert_eq!(m.gauge(names::CACHED_MEASUREMENTS), Some(2.0));
    assert_eq!(m.gauge(names::POOL_PEAK_OCCUPANCY), Some(1.0));

    for name in [names::COMPILE_SECONDS, names::SIMULATE_SECONDS] {
        let h = m
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(h.count, 2, "{name}: one observation per measurement");
        assert_eq!(h.counts.len(), h.buckets.len() + 1, "{name}");
        assert_eq!(h.counts.iter().sum::<u64>(), h.count, "{name}");
        assert!(h.sum > 0.0, "{name}: wall time was spent");
        assert!(
            h.buckets.windows(2).all(|w| w[0] < w[1]),
            "{name}: bucket bounds ascend"
        );
    }

    // The event log tells the same story, in order: every request produced
    // exactly one lifecycle event plus one finish per actual measurement.
    let events = m.events();
    assert_eq!(
        events
            .iter()
            .filter(|e| e.name == "measure_started")
            .count(),
        2
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.name == "measure_finished")
            .count(),
        2
    );
    assert_eq!(events.iter().filter(|e| e.name == "cache_hit").count(), 2);
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "seq numbers are contiguous");
        assert!(
            e.labels.iter().any(|(k, _)| k == "program"),
            "{}: every lifecycle event names its program",
            e.name
        );
    }
}

/// A failing measurement is visible in the registry: failure counter, a
/// `measure_failed` event carrying the error text.
#[test]
fn failures_are_recorded() {
    let mut s = Session::serial();
    let cfg = Config::baseline(CheckingMode::None);
    s.measure_many(&[("no-such-benchmark", cfg), ("frl", cfg)])
        .expect_err("unknown benchmark fails the batch");
    let m = s.metrics();
    assert_eq!(m.counter("session_failures_total"), 1);
    let failed: Vec<_> = m
        .events()
        .iter()
        .filter(|e| e.name == "measure_failed")
        .collect();
    assert_eq!(failed.len(), 1);
    assert!(
        failed[0]
            .labels
            .iter()
            .any(|(k, v)| k == "error" && v.contains("no-such-benchmark")),
        "the event carries the error: {:?}",
        failed[0]
    );
    // Registries with failure events still round-trip.
    let parsed = MetricsRegistry::from_json(&s.metrics_json()).expect("parses");
    assert_eq!(parsed, m);
}

/// Prometheus text exposes the same counters the JSON does.
#[test]
fn prometheus_matches_json_counters() {
    let s = warmed_session();
    let prom = s.metrics_prometheus();
    let m = s.metrics();
    for name in [
        "session_requests_total",
        "session_cache_hits_total",
        "session_cache_misses_total",
    ] {
        let line = format!("{name} {}", m.counter(name));
        assert!(prom.contains(&line), "{line:?} not in:\n{prom}");
    }
    assert!(prom.contains("# TYPE session_compile_seconds histogram"));
    assert!(prom.contains("session_compile_seconds_bucket{le=\"+Inf\"} 2"));
}
