//! Plain-text rendering of the study results, paper values alongside.

use std::fmt::Write as _;

use crate::paper;
use crate::tables::{
    Figure1, Figure2, GenericArithStudy, IntTestStudy, PreshiftStudy, SchemeComparison, Table1,
    Table2, Table3Row,
};

fn hr(out: &mut String, width: usize) {
    let _ = writeln!(out, "{}", "-".repeat(width));
}

/// Render Table 1 with the paper's numbers for comparison.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: % increase in execution time when run-time checking is added"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>7} {:>7} {:>7}   | paper: {:>6} {:>6} {:>6} {:>7}",
        "program", "arith", "vector", "list", "total", "arith", "vect", "list", "total"
    );
    hr(&mut out, 86);
    for r in &t.rows {
        let p = paper::TABLE1.iter().find(|(n, ..)| *n == r.program);
        let _ = write!(
            out,
            "{:<8} {:>7.2} {:>7.2} {:>7.2} {:>7.2}   |",
            r.program, r.arith, r.vector, r.list, r.total
        );
        if let Some((_, a, v, l, tt)) = p {
            let _ = writeln!(out, "        {a:>6.2} {v:>6.2} {l:>6.2} {tt:>7.2}");
        } else {
            let _ = writeln!(out);
        }
    }
    hr(&mut out, 86);
    let a = &t.average;
    let (pa, pv, pl, pt) = paper::TABLE1_AVG;
    let _ = writeln!(
        out,
        "{:<8} {:>7.2} {:>7.2} {:>7.2} {:>7.2}   |        {pa:>6.2} {pv:>6.2} {pl:>6.2} {pt:>7.2}",
        "average", a.arith, a.vector, a.list, a.total
    );
    out
}

/// Render Figure 1.
pub fn render_figure1(f: &Figure1) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1: % of time spent on tag handling operations");
    let _ = writeln!(
        out,
        "{:<11} {:>9} {:>10} {:>10} {:>10}   | paper: {:>8} {:>8}",
        "operation", "w/o chk", "base part", "added", "with chk", "w/o", "with"
    );
    hr(&mut out, 90);
    for e in &f.entries {
        let name = format!("{:?}", e.op).to_lowercase();
        let p = paper::FIGURE1
            .iter()
            .find(|(n, ..)| name.starts_with(&n[..4.min(n.len())]));
        let _ = write!(
            out,
            "{:<11} {:>9.2} {:>10.2} {:>10.2} {:>10.2}   |",
            name,
            e.without,
            e.with_base,
            e.with_added,
            e.with_total()
        );
        if let Some((_, w, c)) = p {
            let _ = writeln!(out, "         {w:>8.1} {c:>8.1}");
        } else {
            let _ = writeln!(out);
        }
    }
    hr(&mut out, 90);
    let _ = writeln!(
        out,
        "{:<11} {:>9.2} {:>31.2}   |  paper total range: {:.0}%..{:.0}%",
        "total",
        f.total_without,
        f.total_with,
        paper::FIGURE1_TOTAL_RANGE.0,
        paper::FIGURE1_TOTAL_RANGE.1
    );
    out
}

/// Render Figure 2.
pub fn render_figure2(f: &Figure2) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: reduction in instruction frequencies when tag masking is eliminated"
    );
    let _ = writeln!(
        out,
        "(positive = instructions removed; negative = new waste)"
    );
    let rows = [
        ("and", f.and_, Some(8.0)),
        ("move", f.mov, Some(-1.0)),
        ("noop", f.noop, None),
        ("squash", f.squash, None),
        ("total", f.total, Some(paper::FIGURE2_TOTAL)),
    ];
    for (name, v, p) in rows {
        match p {
            Some(p) => {
                let _ = writeln!(out, "  {name:<8} {v:>7.2}%   (paper ~{p:>5.1}%)");
            }
            None => {
                let _ = writeln!(out, "  {name:<8} {v:>7.2}%");
            }
        }
    }
    out
}

/// Render Table 2.
pub fn render_table2(t: &Table2) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: % of cycles eliminated by each support level");
    let _ = writeln!(
        out,
        "{:<36} {:>9} {:>9}   | paper: {:>6} {:>6}",
        "support", "no chk", "full chk", "none", "full"
    );
    hr(&mut out, 84);
    for (i, r) in t.rows.iter().enumerate() {
        let p = paper::TABLE2.get(i);
        let _ = write!(
            out,
            "{:<36} {:>8.2}% {:>8.2}%   |",
            r.label, r.none_pct, r.full_pct
        );
        if let Some((_, pn, pf)) = p {
            let _ = writeln!(out, "        {pn:>5.1}% {pf:>5.1}%");
        } else {
            let _ = writeln!(out);
        }
        if let Some((cn, cf, mn, mf)) = r.split {
            let _ = writeln!(
                out,
                "{:<36} {cn:>8.2}% {cf:>8.2}%   |  (paper: check 0/{:.1})",
                "    · checking cycles removed",
                if i == 4 { 12.1 } else { 13.6 }
            );
            let _ = writeln!(
                out,
                "{:<36} {mn:>8.2}% {mf:>8.2}%   |  (paper: mask  0/{:.1})",
                "    · masking cycles removed",
                if i == 4 { 4.2 } else { 4.6 }
            );
        }
    }
    hr(&mut out, 84);
    let _ = writeln!(
        out,
        "{:<36} {:>8.2}% {:>8.2}%   |  paper range {:.0}–{:.0}%",
        t.spur.label,
        t.spur.none_pct,
        t.spur.full_pct,
        paper::SPUR_RANGE.0,
        paper::SPUR_RANGE.1
    );
    let _ = writeln!(
        out,
        "{:<36} {:>8.2}% {:>8.2}%   |  paper range {:.0}–{:.0}%",
        t.spur_over_software.label,
        t.spur_over_software.none_pct,
        t.spur_over_software.full_pct,
        paper::SPUR_OVER_SOFTWARE_RANGE.0,
        paper::SPUR_OVER_SOFTWARE_RANGE.1
    );
    out
}

/// Render Table 3.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: program statistics");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>8} {:>10}   | paper: {:>6} {:>6} {:>7}",
        "program", "procs", "lines", "obj words", "procs", "lines", "words"
    );
    hr(&mut out, 78);
    for r in rows {
        let p = paper::TABLE3.iter().find(|(n, ..)| *n == r.program);
        let _ = write!(
            out,
            "{:<8} {:>10} {:>8} {:>10}   |",
            r.program, r.procedures, r.source_lines, r.object_words
        );
        if let Some((_, pp, pl, pw)) = p {
            let _ = writeln!(out, "        {pp:>6} {pl:>6} {pw:>7}");
        } else {
            let _ = writeln!(out);
        }
    }
    out
}

/// Render the §3.1 ablation.
pub fn render_preshift(p: &PreshiftStudy) -> String {
    format!(
        "§3.1 tag insertion: {:.2}% of time (paper ~{:.1}%); preshifted pair tag saves {:.2}% (paper ~{:.1}%)\n",
        p.insertion_pct,
        paper::INSERTION_PCT,
        p.speedup_pct,
        paper::PRESHIFT_GAIN_PCT
    )
}

/// Render the generic-arithmetic study.
pub fn render_generic(g: &GenericArithStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§4.2/§6.2.2 generic arithmetic (share of checked-run time)"
    );
    let _ = writeln!(
        out,
        "  integer-biased software (high5): avg {:>5.2}%  rat {:>5.2}%   (paper: {:.1}% / {:.1}%)",
        g.sw_avg,
        g.sw_rat,
        paper::GENERIC_SW_AVG,
        paper::GENERIC_SW_RAT
    );
    let _ = writeln!(
        out,
        "  arithmetic-safe encoding (high6): avg {:>5.2}%  rat {:>5.2}%   (paper avg: {:.1}%)",
        g.safe_avg,
        g.safe_rat,
        paper::GENERIC_SAFE_AVG
    );
    let _ = writeln!(
        out,
        "  trap hardware:                    avg {:>5.2}%             (paper avg: {:.1}%)",
        g.hw_avg,
        paper::GENERIC_HW_AVG
    );
    let _ = writeln!(
        out,
        "  wrong-bias float sweep: software dispatch {:.1}% of time; trap hardware {:.1}%",
        g.wrong_bias_sw, g.wrong_bias_hw
    );
    let _ = writeln!(
        out,
        "  trap hardware / software total-cycle ratio: {:.2}x  (paper §6.2.2: traps should lose — measured {})",
        g.wrong_bias_hw_over_sw,
        if g.wrong_bias_hw_over_sw > 1.0 { "yes" } else { "no" }
    );
    out
}

/// Render the §4.1 integer-test comparison.
pub fn render_int_test(s: &IntTestStudy) -> String {
    format!(
        "\u{a7}4.1 integer-test methods: tag-compare (method 1) vs sign-extend (method 2): \
         {:+.2}% cycles (positive favours method 1; the paper: 'it depends on the sign')\n",
        s.tag_compare_saves
    )
}

/// Render the scheme head-to-head (extension).
pub fn render_schemes(s: &SchemeComparison) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scheme comparison: % cycles saved vs HighTag5 baseline"
    );
    for (scheme, none, full) in &s.rows {
        let _ = writeln!(
            out,
            "  {scheme:<7} no-check {none:>6.2}%   full-check {full:>6.2}%"
        );
    }
    out
}

/// Render every experiment of the study as one report — the exact stdout of
/// the `all_experiments` binary, which prints this string verbatim. The
/// golden-snapshot test pins it against a checked-in expected file, so any
/// formatting or measurement drift shows up as a diff.
///
/// # Errors
///
/// Any [`StudyError`](crate::StudyError) a table regeneration raises.
pub fn full_report(
    session: &mut crate::Session,
    names: &[&str],
) -> Result<String, crate::StudyError> {
    use crate::tables;
    let mut out = String::new();
    let section = |out: &mut String, title: &str, body: String| {
        let _ = writeln!(out, "== {title} ==");
        let _ = write!(out, "{body}");
    };

    section(
        &mut out,
        "Table 3",
        render_table3(&tables::table3_for(session, names)?),
    );
    let _ = writeln!(out);
    section(
        &mut out,
        "Table 1",
        render_table1(&tables::table1_for(session, names)?),
    );
    let _ = writeln!(out);
    section(
        &mut out,
        "Figure 1",
        render_figure1(&tables::figure1_for(session, names)?),
    );
    let _ = write!(
        out,
        "{}",
        render_preshift(&tables::preshift_study_for(session, names)?)
    );
    let _ = writeln!(out);
    section(
        &mut out,
        "Figure 2",
        render_figure2(&tables::figure2_for(session, names)?),
    );
    let _ = writeln!(out);
    section(
        &mut out,
        "Table 2",
        render_table2(&tables::table2_for(session, names)?),
    );
    let _ = writeln!(out);
    section(
        &mut out,
        "Integer-test methods (§4.1)",
        render_int_test(&tables::int_test_study_for(session, names)?),
    );
    let _ = writeln!(out);
    section(
        &mut out,
        "Generic arithmetic (§4.2 / §6.2.2)",
        render_generic(&tables::generic_arith_study_for(session, names)?),
    );
    let _ = writeln!(out);
    section(
        &mut out,
        "Scheme comparison (extension)",
        render_schemes(&tables::scheme_comparison_for(session, names)?),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{Table1, Table1Row};

    #[test]
    fn table1_renders_with_paper_columns() {
        let row = Table1Row {
            program: "trav".into(),
            arith: 1.0,
            vector: 50.0,
            list: 10.0,
            total: 61.0,
        };
        let t = Table1 {
            rows: vec![row.clone()],
            average: row,
        };
        let s = render_table1(&t);
        assert!(s.contains("trav"));
        assert!(s.contains("71.96"), "paper value shown");
        assert!(s.contains("average"));
    }
}
