//! Computation of every table and figure in the paper's evaluation.
//!
//! Each `*_for` function is a pure projection over a [`Session`]: it asks the
//! session for the measurements it needs and folds them into a table struct.
//! Because many tables share configurations (Table 1, Figure 1 and Table 3 all
//! want the HighTag5 baseline; Table 2 revisits several hardware levels), one
//! session regenerating everything compiles and simulates each
//! `(program, Config)` point exactly once.

use lisp::CheckingMode;
use mipsx::{CheckCat, HwConfig, InsnClass, ParallelCheck, Provenance, TagOpKind};
use tagword::TagScheme;

use crate::config::Config;
use crate::measure::{Measurement, StudyError};
use crate::session::Session;

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn pct_delta(base: u64, variant: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (base as f64 - variant as f64) / base as f64
    }
}

/// The default program set: all ten benchmarks.
pub fn default_programs() -> Vec<&'static str> {
    programs::all().iter().map(|b| b.name).collect()
}

// ===========================================================================
// Table 1
// ===========================================================================

/// One row of Table 1: % increase in execution time when full run-time checking
/// is added, by category.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name (or "average").
    pub program: String,
    /// Increase attributed to arithmetic checking.
    pub arith: f64,
    /// Increase attributed to vector checking.
    pub vector: f64,
    /// Increase attributed to list/symbol checking.
    pub list: f64,
    /// Total increase, `(T_checked - T_unchecked) / T_unchecked`.
    pub total: f64,
}

/// Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Per-program rows.
    pub rows: Vec<Table1Row>,
    /// Unweighted average.
    pub average: Table1Row,
}

/// Compute Table 1 over `names`.
///
/// # Errors
///
/// Any measurement failure.
pub fn table1_for(session: &mut Session, names: &[&str]) -> Result<Table1, StudyError> {
    let base = session.measure_set(names, Config::baseline(CheckingMode::None))?;
    let full = session.measure_set(names, Config::baseline(CheckingMode::Full))?;
    let mut rows = Vec::new();
    for (b, f) in base.iter().zip(&full) {
        let t0 = b.stats.cycles;
        rows.push(Table1Row {
            program: b.program.clone(),
            arith: pct(f.stats.checking_cycles(CheckCat::Arith), t0),
            vector: pct(f.stats.checking_cycles(CheckCat::Vector), t0),
            list: pct(f.stats.checking_cycles(CheckCat::List), t0),
            total: pct(f.stats.cycles.saturating_sub(t0), t0),
        });
    }
    let n = rows.len() as f64;
    let average = Table1Row {
        program: "average".into(),
        arith: rows.iter().map(|r| r.arith).sum::<f64>() / n,
        vector: rows.iter().map(|r| r.vector).sum::<f64>() / n,
        list: rows.iter().map(|r| r.list).sum::<f64>() / n,
        total: rows.iter().map(|r| r.total).sum::<f64>() / n,
    };
    Ok(Table1 { rows, average })
}

// ===========================================================================
// Figure 1
// ===========================================================================

/// One tag operation's share of execution time (Figure 1's bar groups).
#[derive(Debug, Clone)]
pub struct Figure1Entry {
    /// The operation.
    pub op: TagOpKind,
    /// % of time in the run *without* checking.
    pub without: f64,
    /// % of checked-run time that was already present without checking (the
    /// black part of the paper's bars).
    pub with_base: f64,
    /// % of checked-run time added by checking (the dark grey part).
    pub with_added: f64,
}

impl Figure1Entry {
    /// Total % of checked-run time.
    pub fn with_total(&self) -> f64 {
        self.with_base + self.with_added
    }
}

/// Figure 1: averaged over the program set.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// Insertion, removal, extraction, checking, generic (in that order).
    pub entries: Vec<Figure1Entry>,
    /// Total tag-handling share without checking.
    pub total_without: f64,
    /// Total tag-handling share with checking.
    pub total_with: f64,
}

/// Compute Figure 1 over `names`.
///
/// # Errors
///
/// Any measurement failure.
pub fn figure1_for(session: &mut Session, names: &[&str]) -> Result<Figure1, StudyError> {
    let base = session.measure_set(names, Config::baseline(CheckingMode::None))?;
    let full = session.measure_set(names, Config::baseline(CheckingMode::Full))?;
    let ops = [
        TagOpKind::Insert,
        TagOpKind::Remove,
        TagOpKind::Extract,
        TagOpKind::Check,
        TagOpKind::Generic,
    ];
    let n = names.len() as f64;
    let mut entries = Vec::new();
    for op in ops {
        let mut without = 0.0;
        let mut with_base = 0.0;
        let mut with_added = 0.0;
        for (b, f) in base.iter().zip(&full) {
            without += pct(b.stats.tag_op_cycles(op), b.stats.cycles);
            with_base += pct(
                f.stats.tag_op_cycles_by(op, Provenance::Base),
                f.stats.cycles,
            );
            with_added += pct(
                f.stats.tag_op_cycles_by(op, Provenance::Checking),
                f.stats.cycles,
            );
        }
        entries.push(Figure1Entry {
            op,
            without: without / n,
            with_base: with_base / n,
            with_added: with_added / n,
        });
    }
    let total_without = entries.iter().map(|e| e.without).sum();
    let total_with = entries.iter().map(|e| e.with_total()).sum();
    Ok(Figure1 {
        entries,
        total_without,
        total_with,
    })
}

// ===========================================================================
// Figure 2
// ===========================================================================

/// Figure 2: change in instruction frequencies when tag masking for addresses
/// is eliminated (no-checking runs; positive = fewer, negative = more).
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// Reduction in `and` (masking) instructions, % of base execution time.
    pub and_: f64,
    /// Reduction in register moves.
    pub mov: f64,
    /// Reduction in executed no-ops (negative: scheduler loses filler).
    pub noop: f64,
    /// Reduction in squashed delay slots (negative: more waste).
    pub squash: f64,
    /// Net cycle reduction.
    pub total: f64,
}

/// Compute Figure 2 over `names`: the baseline versus address-tag-dropping
/// hardware (equivalently, a low-tag software scheme; paper §5.1–5.2).
///
/// # Errors
///
/// Any measurement failure.
pub fn figure2_for(session: &mut Session, names: &[&str]) -> Result<Figure2, StudyError> {
    let base = session.measure_set(names, Config::baseline(CheckingMode::None))?;
    let nomask = session.measure_set(
        names,
        Config::baseline(CheckingMode::None).with_hw(HwConfig::with_address_drop(5)),
    )?;
    let n = names.len() as f64;
    let (mut and_, mut mov, mut noop, mut squash, mut total) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (b, v) in base.iter().zip(&nomask) {
        let t0 = b.stats.cycles;
        let d = |c: InsnClass| {
            100.0 * (b.stats.class_count(c) as f64 - v.stats.class_count(c) as f64) / t0 as f64
        };
        and_ += d(InsnClass::And);
        mov += d(InsnClass::Move);
        noop += d(InsnClass::Nop);
        squash += 100.0 * (b.stats.squashed as f64 - v.stats.squashed as f64) / t0 as f64;
        total += pct_delta(t0, v.stats.cycles);
    }
    Ok(Figure2 {
        and_: and_ / n,
        mov: mov / n,
        noop: noop / n,
        squash: squash / n,
        total: total / n,
    })
}

// ===========================================================================
// Table 2
// ===========================================================================

/// A Table 2 row: % of cycles eliminated by one support level.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Row label (matches the paper's).
    pub label: String,
    /// % eliminated with no run-time checking.
    pub none_pct: f64,
    /// % eliminated with full run-time checking.
    pub full_pct: f64,
    /// For rows 5/6: the checking-cycle and masking-cycle components
    /// `(check_none, check_full, mask_none, mask_full)`.
    pub split: Option<(f64, f64, f64, f64)>,
}

/// Table 2, plus the §7 SPUR comparison.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The seven support-level rows.
    pub rows: Vec<Table2Row>,
    /// SPUR-like configuration (row 7 with list-only checked access).
    pub spur: Table2Row,
    /// SPUR's gain measured against a machine already using row-1 software
    /// tagging (paper: drops to 4–16%).
    pub spur_over_software: Table2Row,
}

fn row_hw() -> Vec<(&'static str, HwConfig)> {
    vec![
        (
            "1 avoid tag masking (software)",
            HwConfig::with_address_drop(5),
        ),
        ("2 avoid tag extraction", HwConfig::with_tag_branch()),
        (
            "3 avoid masking and extraction",
            HwConfig {
                tag_branch: true,
                ..HwConfig::with_address_drop(5)
            },
        ),
        (
            "4 support generic arithmetic",
            HwConfig::with_generic_arith(),
        ),
        (
            "5 avoid tag checking on list ops",
            HwConfig::with_parallel_check(ParallelCheck::Lists),
        ),
        (
            "6 avoid all error tag checking",
            HwConfig::with_parallel_check(ParallelCheck::All),
        ),
        ("7 maximal MIPS-X support", HwConfig::maximal(5)),
    ]
}

struct ModeResults {
    base: Vec<Measurement>,
    variants: Vec<Vec<Measurement>>, // per row
    spur: Vec<Measurement>,
}

fn run_mode(
    session: &mut Session,
    names: &[&str],
    checking: CheckingMode,
) -> Result<ModeResults, StudyError> {
    let base = session.measure_set(names, Config::baseline(checking))?;
    let mut variants = Vec::new();
    for (_, hw) in row_hw() {
        variants.push(session.measure_set(names, Config::baseline(checking).with_hw(hw))?);
    }
    let spur = session.measure_set(names, Config::baseline(checking).with_hw(HwConfig::spur(5)))?;
    Ok(ModeResults {
        base,
        variants,
        spur,
    })
}

fn avg_speedup(base: &[Measurement], variant: &[Measurement]) -> f64 {
    let n = base.len() as f64;
    base.iter()
        .zip(variant)
        .map(|(b, v)| pct_delta(b.stats.cycles, v.stats.cycles))
        .sum::<f64>()
        / n
}

/// Average reduction in cycles of a particular accounting bucket, as % of base
/// total cycles.
fn avg_bucket_reduction(
    base: &[Measurement],
    variant: &[Measurement],
    bucket: impl Fn(&Measurement) -> u64,
) -> f64 {
    let n = base.len() as f64;
    base.iter()
        .zip(variant)
        .map(|(b, v)| 100.0 * (bucket(b) as f64 - bucket(v) as f64) / b.stats.cycles as f64)
        .sum::<f64>()
        / n
}

/// Compute Table 2 over `names`.
///
/// # Errors
///
/// Any measurement failure.
pub fn table2_for(session: &mut Session, names: &[&str]) -> Result<Table2, StudyError> {
    let none = run_mode(session, names, CheckingMode::None)?;
    let full = run_mode(session, names, CheckingMode::Full)?;
    let mut rows = Vec::new();
    for (i, (label, _)) in row_hw().into_iter().enumerate() {
        let none_pct = avg_speedup(&none.base, &none.variants[i]);
        let full_pct = avg_speedup(&full.base, &full.variants[i]);
        // Rows 5 and 6 get the check/mask split the paper prints.
        let split = if i == 4 || i == 5 {
            let checkb = |m: &Measurement| {
                m.stats.checking_cycles(CheckCat::List)
                    + m.stats.checking_cycles(CheckCat::Vector)
                    + m.stats.checking_cycles(CheckCat::Arith)
            };
            let maskb = |m: &Measurement| m.stats.tag_op_cycles(TagOpKind::Remove);
            Some((
                avg_bucket_reduction(&none.base, &none.variants[i], checkb),
                avg_bucket_reduction(&full.base, &full.variants[i], checkb),
                avg_bucket_reduction(&none.base, &none.variants[i], maskb),
                avg_bucket_reduction(&full.base, &full.variants[i], maskb),
            ))
        } else {
            None
        };
        rows.push(Table2Row {
            label: label.to_string(),
            none_pct,
            full_pct,
            split,
        });
    }
    let spur = Table2Row {
        label: "SPUR-like (row 7, lists only)".into(),
        none_pct: avg_speedup(&none.base, &none.spur),
        full_pct: avg_speedup(&full.base, &full.spur),
        split: None,
    };
    // SPUR against a row-1 software baseline.
    let spur_over_software = Table2Row {
        label: "SPUR-like vs row-1 software".into(),
        none_pct: avg_speedup(&none.variants[0], &none.spur),
        full_pct: avg_speedup(&full.variants[0], &full.spur),
        split: None,
    };
    Ok(Table2 {
        rows,
        spur,
        spur_over_software,
    })
}

// ===========================================================================
// Table 3
// ===========================================================================

/// A Table 3 row: static program statistics.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub program: String,
    /// Procedures compiled (user program plus linked system modules).
    pub procedures: usize,
    /// Source lines without comments.
    pub source_lines: usize,
    /// Words of object code.
    pub object_words: usize,
}

/// Compute Table 3 over `names`: static statistics, projected from the
/// unchecked-baseline measurements (which Table 1 and Figure 1 share, so in a
/// combined run this row costs nothing extra).
///
/// # Errors
///
/// Any measurement failure.
pub fn table3_for(session: &mut Session, names: &[&str]) -> Result<Vec<Table3Row>, StudyError> {
    let base = session.measure_set(names, Config::baseline(CheckingMode::None))?;
    Ok(base
        .iter()
        .map(|m| Table3Row {
            program: m.program.clone(),
            procedures: m.compile.procedures,
            source_lines: m.compile.source_lines,
            object_words: m.compile.object_words,
        })
        .collect())
}

// ===========================================================================
// §3.1 / §4.2 / §6.2.2 studies
// ===========================================================================

/// §3.1: the preshifted-pair-tag ablation.
#[derive(Debug, Clone)]
pub struct PreshiftStudy {
    /// Average % of time on tag insertion, straightforward encoding.
    pub insertion_pct: f64,
    /// Average speedup from keeping a preshifted pair tag in a register.
    pub speedup_pct: f64,
}

/// Compute the §3.1 ablation over `names` (no-checking runs, as in the paper).
///
/// # Errors
///
/// Any measurement failure.
pub fn preshift_study_for(
    session: &mut Session,
    names: &[&str],
) -> Result<PreshiftStudy, StudyError> {
    let base = session.measure_set(names, Config::baseline(CheckingMode::None))?;
    let pre = session.measure_set(
        names,
        Config {
            preshifted_pair_tag: true,
            ..Config::baseline(CheckingMode::None)
        },
    )?;
    let n = names.len() as f64;
    let insertion_pct = base
        .iter()
        .map(|m| pct(m.stats.tag_op_cycles(TagOpKind::Insert), m.stats.cycles))
        .sum::<f64>()
        / n;
    Ok(PreshiftStudy {
        insertion_pct,
        speedup_pct: avg_speedup(&base, &pre),
    })
}

/// A float-heavy microworkload: with integer-biased checking, *every* addition
/// and multiplication dispatches — the paper's §6.2.2 "wrong bias" case.
const FSWEEP: &str = r#"
(defvar half 0.5)
(defvar one 1.0)
(defvar quarter 0.25)
(defun fsweep (n)
  (let ((x one) (s one) (i 0))
    (while (lessp i n)
      (setq x (plus (times x half) one))
      (setq s (plus s (times x quarter)))
      (setq i (add1 i)))
    s))
(fsweep 4000)
(print 1)
"#;

/// §4.2 and §6.2.2: generic arithmetic under the plain encoding, the
/// arithmetic-safe encoding, and trap hardware; plus the wrong-bias sweep.
#[derive(Debug, Clone)]
pub struct GenericArithStudy {
    /// Average % of (checked) time spent on generic arithmetic, HighTag5.
    pub sw_avg: f64,
    /// Same, for the arithmetic-intensive `rat`.
    pub sw_rat: f64,
    /// Average with the §4.2 arithmetic-safe 6-bit encoding.
    pub safe_avg: f64,
    /// `rat` with the arithmetic-safe encoding.
    pub safe_rat: f64,
    /// Average with §6.2.2 trap hardware.
    pub hw_avg: f64,
    /// Wrong-bias float sweep: % of time in dispatch, software integer-biased.
    pub wrong_bias_sw: f64,
    /// Wrong-bias float sweep: % of time in dispatch with trap hardware (the
    /// paper predicts this is *worse* than software, as on SPUR).
    pub wrong_bias_hw: f64,
    /// Wrong-bias float sweep: total-cycle ratio, trap hardware over software
    /// (> 1 means the trap path loses, the paper's SPUR observation).
    pub wrong_bias_hw_over_sw: f64,
}

fn arith_share(m: &Measurement) -> f64 {
    pct(m.stats.checking_cycles(CheckCat::Arith), m.stats.cycles)
}

/// Run the generic-arithmetic study over `names`.
///
/// # Errors
///
/// Any measurement failure.
pub fn generic_arith_study_for(
    session: &mut Session,
    names: &[&str],
) -> Result<GenericArithStudy, StudyError> {
    let avg = |ms: &[Measurement]| ms.iter().map(arith_share).sum::<f64>() / ms.len() as f64;
    let rat_of = |ms: &[Measurement]| {
        ms.iter()
            .find(|m| m.program == "rat")
            .map(arith_share)
            .unwrap_or(0.0)
    };

    let sw = session.measure_set(names, Config::baseline(CheckingMode::Full))?;
    let safe = session.measure_set(names, Config::new(TagScheme::HighTag6, CheckingMode::Full))?;
    let hw = session.measure_set(
        names,
        Config::baseline(CheckingMode::Full).with_hw(HwConfig::with_generic_arith()),
    )?;

    // The wrong-bias sweep is not one of the ten benchmarks, so it is not a
    // cacheable (program, Config) point; compile it inline.
    let sweep = |hw: HwConfig| -> Result<(f64, u64), StudyError> {
        let opts = lisp::Options {
            hw,
            checking: CheckingMode::Full,
            ..lisp::Options::default()
        };
        let c = lisp::compile(FSWEEP, &opts).map_err(|e| StudyError::Compile {
            program: "fsweep".into(),
            message: e.to_string(),
        })?;
        let o = lisp::run(&c, 500_000_000).map_err(|e| StudyError::Sim {
            program: "fsweep".into(),
            message: e.to_string(),
        })?;
        Ok((
            pct(o.stats.checking_cycles(CheckCat::Arith), o.stats.cycles),
            o.stats.cycles,
        ))
    };
    let (wb_sw, sw_cycles) = sweep(HwConfig::plain())?;
    let (wb_hw, hw_cycles) = sweep(HwConfig::with_generic_arith())?;

    Ok(GenericArithStudy {
        sw_avg: avg(&sw),
        sw_rat: rat_of(&sw),
        safe_avg: avg(&safe),
        safe_rat: rat_of(&safe),
        hw_avg: avg(&hw),
        wrong_bias_sw: wb_sw,
        wrong_bias_hw: wb_hw,
        wrong_bias_hw_over_sw: hw_cycles as f64 / sw_cycles as f64,
    })
}

/// §4.1: integer-test method comparison — sign-extend (always 3 cycles) vs
/// tag-compare (2 for positive operands, 3 for negative).
#[derive(Debug, Clone)]
pub struct IntTestStudy {
    /// Average % cycles saved by method 1 over method 2, full checking.
    pub tag_compare_saves: f64,
}

/// Run the §4.1 comparison over `names` (checked runs, where integer tests are
/// frequent). The winner depends on the sign mix of the workload's numbers —
/// exactly the paper's remark.
///
/// # Errors
///
/// Any measurement failure.
pub fn int_test_study_for(
    session: &mut Session,
    names: &[&str],
) -> Result<IntTestStudy, StudyError> {
    let base = session.measure_set(names, Config::baseline(CheckingMode::Full))?;
    let m1 = session.measure_set(
        names,
        Config {
            int_test_method: lisp::IntTestMethod::TagCompare,
            ..Config::baseline(CheckingMode::Full)
        },
    )?;
    Ok(IntTestStudy {
        tag_compare_saves: avg_speedup(&base, &m1),
    })
}

// ===========================================================================
// Scheme comparison (extension: all four schemes head-to-head)
// ===========================================================================

/// Relative cycles of every tag scheme against the HighTag5 baseline.
#[derive(Debug, Clone)]
pub struct SchemeComparison {
    /// `(scheme, avg % cycles saved vs HighTag5 — None mode, Full mode)`.
    pub rows: Vec<(TagScheme, f64, f64)>,
}

/// Compare all four schemes on stock hardware.
///
/// # Errors
///
/// Any measurement failure.
pub fn scheme_comparison_for(
    session: &mut Session,
    names: &[&str],
) -> Result<SchemeComparison, StudyError> {
    let base_n = session.measure_set(names, Config::baseline(CheckingMode::None))?;
    let base_f = session.measure_set(names, Config::baseline(CheckingMode::Full))?;
    let mut rows = Vec::new();
    for scheme in tagword::ALL_SCHEMES {
        let n = session.measure_set(names, Config::new(scheme, CheckingMode::None))?;
        let f = session.measure_set(names, Config::new(scheme, CheckingMode::Full))?;
        rows.push((scheme, avg_speedup(&base_n, &n), avg_speedup(&base_f, &f)));
    }
    Ok(SchemeComparison { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast subset for unit tests; full-set runs live in the bench
    /// binaries and integration tests.
    const SMALL: &[&str] = &["frl", "trav"];

    #[test]
    fn table1_small_subset() {
        let mut s = Session::new();
        let t = table1_for(&mut s, SMALL).unwrap();
        assert_eq!(t.rows.len(), 2);
        for r in &t.rows {
            assert!(r.total > 0.0, "{}: checking must cost time", r.program);
            assert!(
                r.arith + r.vector + r.list <= r.total + 3.0,
                "{}: categories roughly bounded by total",
                r.program
            );
        }
        // trav is the vector-heavy program.
        let trav = t.rows.iter().find(|r| r.program == "trav").unwrap();
        let frl = t.rows.iter().find(|r| r.program == "frl").unwrap();
        assert!(trav.vector > frl.vector, "trav leads the vector column");
        assert_eq!(s.stats().misses, 4, "2 programs x 2 configs");
    }

    #[test]
    fn figure1_small_subset() {
        let f = figure1_for(&mut Session::new(), SMALL).unwrap();
        assert_eq!(f.entries.len(), 5);
        let check = f.entries.iter().find(|e| e.op == TagOpKind::Check).unwrap();
        assert!(check.with_added > 0.0, "checking adds check cycles");
        assert!(
            f.total_with > f.total_without,
            "checking raises the tag share"
        );
        assert!(f.total_without > 5.0, "tag handling is a significant share");
    }

    #[test]
    fn figure2_small_subset() {
        let f = figure2_for(&mut Session::new(), SMALL).unwrap();
        assert!(f.and_ > 0.0, "masking ands disappear");
        assert!(f.total > 0.0, "eliminating masking is a net win");
        assert!(
            f.total <= f.and_ + f.mov.max(0.0) + 1.0,
            "waste claws part back"
        );
    }

    #[test]
    fn preshift_small_subset() {
        let p = preshift_study_for(&mut Session::new(), &["frl"]).unwrap();
        assert!(p.insertion_pct > 0.0);
        assert!(p.speedup_pct >= 0.0);
        assert!(
            p.speedup_pct < p.insertion_pct,
            "saves at most the insert share"
        );
    }

    #[test]
    fn table3_matches_compile_stats() {
        let t = table3_for(&mut Session::new(), &default_programs()).unwrap();
        assert_eq!(t.len(), 10);
        for r in &t {
            assert!(r.procedures >= 20, "{}", r.program);
            assert!(r.object_words > 500, "{}", r.program);
        }
        // deduce and dedgc share sources, so identical static stats.
        let d = t.iter().find(|r| r.program == "deduce").unwrap();
        let g = t.iter().find(|r| r.program == "dedgc").unwrap();
        assert_eq!(d.object_words, g.object_words);
    }

    #[test]
    fn tables_share_a_session_cache() {
        let mut s = Session::new();
        table1_for(&mut s, SMALL).unwrap();
        let misses_after_t1 = s.stats().misses;
        // Figure 1 wants exactly Table 1's two configurations.
        figure1_for(&mut s, SMALL).unwrap();
        assert_eq!(s.stats().misses, misses_after_t1, "figure1 fully cached");
        assert!(s.stats().hits >= 4);
        // Table 3 projects static stats out of the same baseline runs.
        table3_for(&mut s, SMALL).unwrap();
        assert_eq!(s.stats().misses, misses_after_t1, "table3 fully cached");
    }
}
