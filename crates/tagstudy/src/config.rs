//! One point in the study's design space.

use std::fmt;
use std::hash::{Hash, Hasher};

use lisp::{CheckingMode, IntTestMethod, Options};
use mipsx::{Backend, HwConfig, TimingConfig};
use tagword::TagScheme;

/// A tag-implementation configuration: scheme × checking mode × hardware (plus
/// the §3.1 preshifted-tag ablation).
///
/// `Config` is `Hash + Eq` so that a `(program, Config)` pair can key the
/// [`Session`](crate::Session) measurement cache. The execution [`Backend`]
/// rides along for run routing but is **excluded** from `Eq`/`Hash` (and from
/// the persistent store's content addresses): all backends produce identical
/// measurements by construction, so the backend must never split the cache.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// The tag scheme.
    pub scheme: TagScheme,
    /// The checking mode.
    pub checking: CheckingMode,
    /// Hardware support.
    pub hw: HwConfig,
    /// §3.1 ablation: preshifted pair tag kept in a register.
    pub preshifted_pair_tag: bool,
    /// §4.1: the integer-test sequence high-tag schemes emit.
    pub int_test_method: IntTestMethod,
    /// Which simulator backend executes the measurement (not part of the
    /// config's identity — results are backend-independent).
    pub backend: Backend,
    /// The microarchitectural timing model. Unlike `backend`, timing **is**
    /// part of a config's identity: a non-ideal model adds a stall breakdown
    /// to the measured `Stats`, so two timing configs are two experiments.
    pub timing: TimingConfig,
}

impl PartialEq for Config {
    fn eq(&self, other: &Self) -> bool {
        // `backend` deliberately omitted: see the type docs.
        self.scheme == other.scheme
            && self.checking == other.checking
            && self.hw == other.hw
            && self.preshifted_pair_tag == other.preshifted_pair_tag
            && self.int_test_method == other.int_test_method
            && self.timing == other.timing
    }
}

impl Eq for Config {}

impl Hash for Config {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // `backend` deliberately omitted, mirroring `PartialEq`.
        self.scheme.hash(state);
        self.checking.hash(state);
        self.hw.hash(state);
        self.preshifted_pair_tag.hash(state);
        self.int_test_method.hash(state);
        self.timing.hash(state);
    }
}

impl Config {
    /// A plain-hardware configuration.
    pub fn new(scheme: TagScheme, checking: CheckingMode) -> Config {
        Config {
            scheme,
            checking,
            hw: HwConfig::plain(),
            preshifted_pair_tag: false,
            int_test_method: IntTestMethod::default(),
            backend: Backend::default(),
            timing: TimingConfig::ideal(),
        }
    }

    /// The paper's baseline: HighTag5 on stock hardware.
    pub fn baseline(checking: CheckingMode) -> Config {
        Config::new(TagScheme::HighTag5, checking)
    }

    /// Replace the hardware.
    pub fn with_hw(self, hw: HwConfig) -> Config {
        Config { hw, ..self }
    }

    /// Replace the execution backend (does not change the config's identity).
    pub fn with_backend(self, backend: Backend) -> Config {
        Config { backend, ..self }
    }

    /// Replace the timing model (changes the config's identity unless both
    /// are ideal).
    pub fn with_timing(self, timing: TimingConfig) -> Config {
        Config { timing, ..self }
    }

    /// Convert to compiler options (heap size comes from the benchmark).
    pub fn to_options(self) -> Options {
        Options {
            scheme: self.scheme,
            hw: self.hw,
            checking: self.checking,
            preshifted_pair_tag: self.preshifted_pair_tag,
            int_test_method: self.int_test_method,
            ..Options::default()
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{:?}", self.scheme, self.checking)?;
        if self.hw != HwConfig::plain() {
            write!(f, "/hw")?;
        }
        if self.preshifted_pair_tag {
            write!(f, "/preshift")?;
        }
        if !self.timing.is_ideal() {
            write!(f, "/timing={}", self.timing)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_options() {
        let c = Config::baseline(CheckingMode::Full);
        assert_eq!(c.to_string(), "high5/Full");
        let o = c.to_options();
        assert_eq!(o.scheme, TagScheme::HighTag5);
        assert_eq!(o.checking, CheckingMode::Full);
        let c = c.with_hw(HwConfig::with_tag_branch());
        assert!(c.to_string().ends_with("/hw"));
    }

    /// Every distinct point of the design space must round-trip through a hash
    /// map — the property the session cache key rests on.
    #[test]
    fn config_round_trips_as_hash_key() {
        use lisp::IntTestMethod;
        use std::collections::HashMap;

        let mut points = Vec::new();
        for scheme in tagword::ALL_SCHEMES {
            for checking in [CheckingMode::None, CheckingMode::Full] {
                points.push(Config::new(scheme, checking));
                points.push(Config::new(scheme, checking).with_hw(HwConfig::maximal(5)));
            }
        }
        points.push(Config {
            preshifted_pair_tag: true,
            ..Config::baseline(CheckingMode::None)
        });
        points.push(Config {
            int_test_method: IntTestMethod::TagCompare,
            ..Config::baseline(CheckingMode::Full)
        });
        points.push(Config::baseline(CheckingMode::Full).with_timing(TimingConfig::classic5()));
        points.push(Config::baseline(CheckingMode::Full).with_timing(TimingConfig::modern()));

        let map: HashMap<Config, usize> = points.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        assert_eq!(map.len(), points.len(), "all points are distinct keys");
        for (i, c) in points.iter().enumerate() {
            assert_eq!(map.get(c), Some(&i), "{c} must round-trip");
        }
    }

    /// The backend never splits the cache: two configs differing only in
    /// backend are the same key, hash, and display string.
    #[test]
    fn backend_is_excluded_from_identity() {
        let base = Config::baseline(CheckingMode::Full);
        for backend in mipsx::ALL_BACKENDS {
            let c = base.with_backend(backend);
            assert_eq!(base, c, "{backend}");
            assert_eq!(base.to_string(), c.to_string(), "{backend}");
            let mut set = std::collections::HashSet::new();
            set.insert(base);
            assert!(set.contains(&c), "{backend} must hit the same cache slot");
        }
    }

    /// Timing, unlike backend, *is* identity: a non-ideal model yields a
    /// different key (and says so in the display string), while the ideal
    /// model is indistinguishable from never mentioning timing at all.
    #[test]
    fn timing_is_part_of_identity() {
        let base = Config::baseline(CheckingMode::Full);
        assert_eq!(base, base.with_timing(TimingConfig::ideal()));
        assert_eq!(base.to_string(), "high5/Full");

        let classic = base.with_timing(TimingConfig::classic5());
        assert_ne!(base, classic);
        assert_eq!(classic.to_string(), "high5/Full/timing=classic5");

        let modern = base.with_timing(TimingConfig::modern());
        assert_ne!(classic, modern);
        let mut set = std::collections::HashSet::new();
        set.insert(base);
        assert!(!set.contains(&classic), "timing must split the cache");
    }
}
