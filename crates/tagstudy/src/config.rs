//! One point in the study's design space.

use std::fmt;

use lisp::{CheckingMode, IntTestMethod, Options};
use mipsx::HwConfig;
use tagword::TagScheme;

/// A tag-implementation configuration: scheme × checking mode × hardware (plus
/// the §3.1 preshifted-tag ablation).
///
/// `Config` is `Hash + Eq` so that a `(program, Config)` pair can key the
/// [`Session`](crate::Session) measurement cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    /// The tag scheme.
    pub scheme: TagScheme,
    /// The checking mode.
    pub checking: CheckingMode,
    /// Hardware support.
    pub hw: HwConfig,
    /// §3.1 ablation: preshifted pair tag kept in a register.
    pub preshifted_pair_tag: bool,
    /// §4.1: the integer-test sequence high-tag schemes emit.
    pub int_test_method: IntTestMethod,
}

impl Config {
    /// A plain-hardware configuration.
    pub fn new(scheme: TagScheme, checking: CheckingMode) -> Config {
        Config {
            scheme,
            checking,
            hw: HwConfig::plain(),
            preshifted_pair_tag: false,
            int_test_method: IntTestMethod::default(),
        }
    }

    /// The paper's baseline: HighTag5 on stock hardware.
    pub fn baseline(checking: CheckingMode) -> Config {
        Config::new(TagScheme::HighTag5, checking)
    }

    /// Replace the hardware.
    pub fn with_hw(self, hw: HwConfig) -> Config {
        Config { hw, ..self }
    }

    /// Convert to compiler options (heap size comes from the benchmark).
    pub fn to_options(self) -> Options {
        Options {
            scheme: self.scheme,
            hw: self.hw,
            checking: self.checking,
            preshifted_pair_tag: self.preshifted_pair_tag,
            int_test_method: self.int_test_method,
            ..Options::default()
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{:?}", self.scheme, self.checking)?;
        if self.hw != HwConfig::plain() {
            write!(f, "/hw")?;
        }
        if self.preshifted_pair_tag {
            write!(f, "/preshift")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_options() {
        let c = Config::baseline(CheckingMode::Full);
        assert_eq!(c.to_string(), "high5/Full");
        let o = c.to_options();
        assert_eq!(o.scheme, TagScheme::HighTag5);
        assert_eq!(o.checking, CheckingMode::Full);
        let c = c.with_hw(HwConfig::with_tag_branch());
        assert!(c.to_string().ends_with("/hw"));
    }

    /// Every distinct point of the design space must round-trip through a hash
    /// map — the property the session cache key rests on.
    #[test]
    fn config_round_trips_as_hash_key() {
        use lisp::IntTestMethod;
        use std::collections::HashMap;

        let mut points = Vec::new();
        for scheme in tagword::ALL_SCHEMES {
            for checking in [CheckingMode::None, CheckingMode::Full] {
                points.push(Config::new(scheme, checking));
                points.push(Config::new(scheme, checking).with_hw(HwConfig::maximal(5)));
            }
        }
        points.push(Config {
            preshifted_pair_tag: true,
            ..Config::baseline(CheckingMode::None)
        });
        points.push(Config {
            int_test_method: IntTestMethod::TagCompare,
            ..Config::baseline(CheckingMode::Full)
        });

        let map: HashMap<Config, usize> =
            points.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        assert_eq!(map.len(), points.len(), "all points are distinct keys");
        for (i, c) in points.iter().enumerate() {
            assert_eq!(map.get(c), Some(&i), "{c} must round-trip");
        }
    }
}
